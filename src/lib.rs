//! # imli-repro — facade crate
//!
//! Reproduction of *"The Inner Most Loop Iteration counter: a new dimension
//! in branch history"* (Seznec, San Miguel, Albericio; MICRO 2015).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`trace`] — branch trace model and serialization,
//! * [`history`] — global/folded/path/local history substrates,
//! * [`components`] — predictor building blocks and the
//!   [`components::ConditionalPredictor`] trait,
//! * [`imli`] — the paper's contribution: IMLI counter, IMLI-SIC, IMLI-OH,
//! * [`tage`] — TAGE + statistical corrector hosts (TAGE-GSC, TAGE-SC-L),
//! * [`gehl`] — GEHL and FTL hosts,
//! * [`wormhole`] — the wormhole side predictor the paper compares against,
//! * [`perceptron`] — a hashed-perceptron host demonstrating the "any
//!   neural-inspired predictor" claim,
//! * [`workloads`] — synthetic CBP-like benchmark suites,
//! * [`sim`] — the trace-driven simulator, predictor registry,
//!   experiment harnesses, and the attributed reporting layer behind
//!   `bp report`,
//! * [`cache`] — the content-addressed on-disk result cache behind
//!   `--cache` and `bp cache` (hand-rolled 128-bit content hash,
//!   verify-then-trust envelopes),
//! * [`mod@bench`] — experiment harness helpers and the trace-I/O
//!   throughput benchmark behind `bp bench`,
//! * [`lint`] — the workspace invariant lint engine behind `bp lint`:
//!   static enforcement of the unsafe-audit, artifact-determinism,
//!   hot-path-allocation, and panic-surface contracts.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate
//! dependency graph and the trace → stream → engine → analysis →
//! report data flow.
//!
//! ## Quickstart
//!
//! ```
//! use imli_repro::sim::{simulate, Mpki};
//! use imli_repro::tage::TageGscImli;
//! use imli_repro::workloads::quick_benchmark;
//!
//! let trace = quick_benchmark("demo", 0xC0FFEE, 200_000);
//! let mut predictor = TageGscImli::default_config();
//! let result = simulate(&mut predictor, &trace);
//! println!("{}: {:.3} MPKI", trace.name(), Mpki::of(&result).value());
//! ```

#![warn(missing_docs)]

pub use bp_bench as bench;
pub use bp_cache as cache;
pub use bp_components as components;
pub use bp_gehl as gehl;
pub use bp_history as history;
pub use bp_lint as lint;
pub use bp_perceptron as perceptron;
pub use bp_sim as sim;
pub use bp_tage as tage;
pub use bp_trace as trace;
pub use bp_workloads as workloads;
pub use bp_wormhole as wormhole;
pub use imli;
