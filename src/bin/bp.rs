//! `bp` — command-line front end for the IMLI reproduction.
//!
//! ```text
//! bp list benchmarks            list the 80 synthetic benchmarks
//! bp list predictors            list the registered configurations
//! bp generate <bench> <instr> <file>
//!                               generate a benchmark trace to disk
//! bp simulate <config> <bench-or-file> [instr]
//!                               run one predictor over a benchmark name
//!                               or a serialized trace file
//! bp profile <config> <bench> [instr] [top]
//!                               per-static-branch misprediction profile
//! bp compare <bench> [instr]    all registered predictors on one benchmark
//! ```

use imli_repro::sim::{make_predictor, registry, simulate, MispredictionProfile, TextTable};
use imli_repro::trace::{read_trace, write_trace, Trace};
use imli_repro::workloads::{cbp3_suite, cbp4_suite, find_benchmark, generate};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bp list (benchmarks|predictors)\n  bp generate <bench> <instr> <file>\n  \
         bp simulate <config> <bench-or-file> [instr]\n  bp profile <config> <bench> [instr] [top]\n  \
         bp compare <bench> [instr]"
    );
    ExitCode::FAILURE
}

fn load_trace(source: &str, instructions: u64) -> Result<Trace, String> {
    if let Some(spec) = find_benchmark(source) {
        return Ok(generate(&spec, instructions));
    }
    let file = File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("cannot parse {source}: {e}"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad {what}: {s}"))
}

fn run(args: &[String]) -> Result<Option<()>, String> {
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["list", "benchmarks"] => {
            for (suite, specs) in [("CBP4", cbp4_suite()), ("CBP3", cbp3_suite())] {
                for spec in specs {
                    println!("{suite}/{}", spec.name);
                }
            }
            Ok(())
        }
        ["list", "predictors"] => {
            let mut table = TextTable::new(vec!["name", "configuration", "Kbit"]);
            for (name, factory) in registry() {
                let p = factory();
                table.row(vec![
                    name.to_owned(),
                    p.name().to_owned(),
                    format!("{:.0}", p.storage_bits() as f64 / 1024.0),
                ]);
            }
            println!("{table}");
            Ok(())
        }
        ["generate", bench, instr, path] => {
            parse_u64(instr, "instruction count").and_then(|instructions| {
                let spec = find_benchmark(bench).ok_or_else(|| {
                    format!("unknown benchmark {bench} (try `bp list benchmarks`)")
                })?;
                let trace = generate(&spec, instructions);
                let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
                write_trace(BufWriter::new(file), &trace)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("wrote {trace}");
                Ok(())
            })
        }
        ["simulate", config, source] | ["simulate", config, source, _] => {
            let instructions = args
                .get(3)
                .map(|s| parse_u64(s, "instruction count"))
                .transpose()?
                .unwrap_or(1_000_000);
            let trace = load_trace(source, instructions)?;
            let mut p = make_predictor(config)
                .ok_or_else(|| format!("unknown predictor {config} (try `bp list predictors`)"))?;
            let result = simulate(p.as_mut(), &trace);
            println!("{result}");
            Ok(())
        }
        ["profile", config, bench] | ["profile", config, bench, ..] => {
            let instructions = args
                .get(3)
                .map(|s| parse_u64(s, "instruction count"))
                .transpose()?
                .unwrap_or(1_000_000);
            let top = args
                .get(4)
                .map(|s| parse_u64(s, "top count"))
                .transpose()?
                .unwrap_or(10) as usize;
            let trace = load_trace(bench, instructions)?;
            let mut p =
                make_predictor(config).ok_or_else(|| format!("unknown predictor {config}"))?;
            let profile = MispredictionProfile::collect(p.as_mut(), &trace);
            println!(
                "{config} on {}: {:.3} MPKI; top-{top} branches cause {:.0} % of mispredictions",
                trace.name(),
                profile.mpki(),
                profile.concentration(top) * 100.0
            );
            let mut table = TextTable::new(vec!["pc", "occurrences", "mispredicted", "rate"]);
            for b in profile.top(top) {
                table.row(vec![
                    format!("{:#x}{}", b.pc, if b.backward { " (bwd)" } else { "" }),
                    b.occurrences.to_string(),
                    b.mispredictions.to_string(),
                    format!("{:.1} %", b.misprediction_rate() * 100.0),
                ]);
            }
            println!("{table}");
            Ok(())
        }
        ["compare", bench] | ["compare", bench, _] => {
            let instructions = args
                .get(2)
                .map(|s| parse_u64(s, "instruction count"))
                .transpose()?
                .unwrap_or(1_000_000);
            let trace = load_trace(bench, instructions)?;
            let mut rows: Vec<(String, f64)> = registry()
                .into_iter()
                .map(|(name, factory)| {
                    let mut p = factory();
                    (name.to_owned(), simulate(p.as_mut(), &trace).mpki())
                })
                .collect();
            rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let mut table = TextTable::new(vec!["config", "MPKI"]);
            for (name, mpki) in rows {
                table.row(vec![name, format!("{mpki:.3}")]);
            }
            println!("{} ({} instructions)\n{table}", trace.name(), instructions);
            Ok(())
        }
        _ => return Ok(None),
    }
    .map(Some)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Some(())) => ExitCode::SUCCESS,
        Ok(None) => usage(),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
