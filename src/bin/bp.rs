//! `bp` — command-line front end for the IMLI reproduction.
//!
//! ```text
//! bp list                       list the registered predictor
//!                               configurations (name, family, paper
//!                               reference, exact storage)
//! bp list benchmarks            list the 80 synthetic benchmarks
//! bp list predictors            same as `bp list`
//! bp generate <bench> <instr> <file> [--v1]
//!                               generate a benchmark trace to disk
//!                               (format v2 streamed in O(1) memory by
//!                               default; --v1 writes the legacy format)
//! bp simulate <config> <bench-or-file> [instr]
//!                               run one predictor over a benchmark name
//!                               or a serialized trace file (v1 or v2)
//! bp profile <config> <bench> [instr] [top]
//!                               per-static-branch misprediction profile
//! bp compare <bench> [instr]    all registered predictors on one benchmark
//! bp grid <suite> [--jobs N] [--json] [--instr N]
//!         [--family F] [--predictors a,b,c]
//!         [--drive-mode scalar|pipelined]
//!                               the full (predictor × benchmark) grid on
//!                               the parallel engine (pipelined drive by
//!                               default; --drive-mode scalar is the
//!                               reference escape hatch)
//! bp report <suite> [--jobs N] [--instr N] [--warmup N] [--json]
//!           [--family F] [--predictors a,b,c] [--config FILE]
//!           [--out-dir D]
//!                               attributed grid run emitting the
//!                               deterministic paper-style report to
//!                               REPORT_<suite>.md / REPORT_<suite>.json
//!                               (suites: cbp4, cbp3, paper)
//! bp scenario <name-or-file> [--jobs N] [--instr N] [--json]
//!             [--family F] [--predictors a,b,c] [--config FILE]
//!             [--out-dir D]
//!                               shared-predictor scenario: N tenant
//!                               streams interleaved into one fetch
//!                               stream (per-tenant PC regions),
//!                               optional periodic context-switch
//!                               flushes, per-tenant MPKI and component
//!                               attribution; emits the deterministic
//!                               SCENARIO_<name>.md / SCENARIO_<name>.json
//!                               artifacts (built-ins: paper_mix,
//!                               paper_switch, hostile_mix)
//! bp sweep <suite> [--budgets 8,16,...] [--families a,b,c]
//!          [--config FILE] [--jobs N] [--instr N] [--json]
//!          [--out-dir D] [--quick]
//!                               storage-budget sweep: solve each
//!                               family for each Kbit budget (within
//!                               2% exact storage), run the fused
//!                               (config × benchmark) grid, and emit
//!                               the deterministic SWEEP_<suite>.md /
//!                               SWEEP_<suite>.json artifacts
//! bp bench [--quick] [--instr N] [--out FILE]
//!                               trace-I/O throughput benchmark (v1 vs v2
//!                               write/read/simulate); emits
//!                               BENCH_trace_io.json
//! bp bench --sim [--quick] [--instr N] [--out FILE] [--baseline FILE]
//!                               simulator throughput benchmark
//!                               (predict/update records/sec per
//!                               predictor family; per-cell vs fused
//!                               grid wall time); emits BENCH_sim.json
//! bp lint [--json] [--fix-audit]
//!                               workspace invariant lint gate:
//!                               unsafe-audit, determinism,
//!                               hot-path-alloc, and panic-surface
//!                               rules over every workspace source
//!                               file; --fix-audit regenerates
//!                               UNSAFE_AUDIT.md
//! bp cache stats|gc|clear [DIR]
//!                               inspect or maintain a result cache
//!                               directory (default .bp-cache):
//!                               deterministic entry/byte counts, gc of
//!                               invalid files, full clear
//! ```
//!
//! `bp grid|report|sweep|scenario` additionally take `--cache [DIR]`
//! (default `.bp-cache`) and `--cache-mode rw|ro|refresh`: cells whose
//! content-addressed key (config text × workload × budgets) is already
//! in the cache are spliced in without simulating, and only the misses
//! run. Artifacts are byte-identical with the cache off, cold, or warm.

use imli_repro::bench::sim_bench::{
    parse_predictor_throughputs, run_sim_bench, throughput_regressions, DEFAULT_REPS,
};
use imli_repro::bench::trace_bench::{json_string, run_trace_io_bench};
use imli_repro::lint::{find_workspace_root, lint_workspace};
use imli_repro::sim::{
    family_members, lookup, make_predictor, paper_report_predictors, parse_predictor_file,
    parse_scenario_file, parse_sweep_file, registry, run_report_with_cache,
    run_scenario_with_cache, run_sweep_with_cache, scenario_by_name, scenario_report_predictors,
    simulate, simulate_stream, CachePolicy, CacheStore, DriveMode, Engine, GridStrategy,
    MispredictionProfile, PredictorFamily, PredictorSpec, SimCache, TextTable, SCENARIO_NAMES,
    STANDARD_BUDGETS_KBIT, SWEEP_FAMILIES,
};
use imli_repro::trace::{read_trace, write_trace, Trace, TraceReader};
use imli_repro::workloads::{
    cache_benchmark, cbp3_suite, cbp4_suite, find_benchmark, generate, suite_by_name,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bp list [benchmarks|predictors]\n  bp generate <bench> <instr> <file> [--v1]\n  \
         bp simulate <config> <bench-or-file> [instr]\n  bp profile <config> <bench> [instr] [top]\n  \
         bp compare <bench> [instr]\n  \
         bp grid <suite> [--jobs N] [--json] [--instr N] [--family F] [--predictors a,b,c] \
         [--config FILE] [--strategy auto|cell|fused] [--drive-mode scalar|pipelined] \
         [--cache [DIR]] [--cache-mode M]\n  \
         bp report <suite> [--jobs N] [--instr N] [--warmup N] [--json] [--family F] \
         [--predictors a,b,c] [--config FILE] [--out-dir D] [--cache [DIR]] [--cache-mode M]\n  \
         bp scenario <name-or-file> [--jobs N] [--instr N] [--json] [--family F] \
         [--predictors a,b,c] [--config FILE] [--out-dir D] [--cache [DIR]] [--cache-mode M]\n  \
         bp sweep <suite> [--budgets 8,16,...] [--families a,b,c] [--config FILE] [--jobs N] \
         [--instr N] [--json] [--out-dir D] [--quick] [--cache [DIR]] [--cache-mode M]\n  \
         bp bench [--quick] [--instr N] [--out FILE]\n  \
         bp bench --sim [--quick] [--instr N] [--out FILE] [--baseline FILE] [--cache [DIR]]\n  \
         bp lint [--json] [--fix-audit]\n  \
         bp cache <stats|gc|clear> [DIR]"
    );
    ExitCode::FAILURE
}

fn load_trace(source: &str, instructions: u64) -> Result<Trace, String> {
    if let Some(spec) = find_benchmark(source) {
        return Ok(generate(&spec, instructions));
    }
    let file = File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("cannot parse {source}: {e}"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad {what}: {s}"))
}

fn run(args: &[String]) -> Result<Option<()>, String> {
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["list", "benchmarks"] => {
            for (suite, specs) in [("CBP4", cbp4_suite()), ("CBP3", cbp3_suite())] {
                for spec in specs {
                    println!("{suite}/{}", spec.name);
                }
            }
            Ok(())
        }
        // `bp list` and `bp list predictors` are the discoverability
        // command: every registry name with its family, exact storage
        // (the config-level accounting, equal to the built itemization),
        // and paper reference.
        ["list"] | ["list", "predictors"] => {
            let mut table = TextTable::new(vec![
                "name",
                "family",
                "configuration",
                "Kbit",
                "bits",
                "paper",
            ]);
            for spec in registry() {
                let p = spec.make();
                table.row(vec![
                    spec.name.clone(),
                    spec.family.to_string(),
                    p.name().to_owned(),
                    format!("{:.2}", spec.storage_kbit()),
                    spec.storage_bits().to_string(),
                    spec.paper_ref.clone(),
                ]);
            }
            println!("{table}");
            Ok(())
        }
        ["generate", bench, instr, path] | ["generate", bench, instr, path, "--v1"] => {
            if path == "--v1" {
                // `bp generate <bench> <instr> --v1` with the output
                // path forgotten would otherwise write a file literally
                // named "--v1".
                return Err("generate needs an output file path before --v1".to_owned());
            }
            let legacy_v1 = args.last().is_some_and(|a| a == "--v1");
            parse_u64(instr, "instruction count").and_then(|instructions| {
                let spec = find_benchmark(bench).ok_or_else(|| {
                    format!("unknown benchmark {bench} (try `bp list benchmarks`)")
                })?;
                let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
                if legacy_v1 {
                    let trace = generate(&spec, instructions);
                    write_trace(BufWriter::new(file), &trace)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("wrote {trace} (format v1)");
                } else {
                    // v2 streams straight to disk: no materialized trace.
                    let records = cache_benchmark(&spec, instructions, BufWriter::new(file))
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("wrote {} ({records} records, format v2)", spec.name);
                }
                Ok(())
            })
        }
        ["simulate", config, source] | ["simulate", config, source, _] => {
            let instructions = args
                .get(3)
                .map(|s| parse_u64(s, "instruction count"))
                .transpose()?
                .unwrap_or(1_000_000);
            let mut p = make_predictor(config)
                .ok_or_else(|| format!("unknown predictor {config} (try `bp list predictors`)"))?;
            // Both benchmark names and trace files (v1 or v2) simulate
            // through the streaming path in O(1) memory.
            let result = if let Some(spec) = find_benchmark(source) {
                simulate_stream(p.as_mut(), spec.stream(instructions))
            } else {
                let file = File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
                let mut reader = TraceReader::new(BufReader::new(file))
                    .map_err(|e| format!("cannot parse {source}: {e}"))?;
                let result = simulate_stream(p.as_mut(), &mut reader);
                if let Some(e) = reader.error() {
                    return Err(format!("error while streaming {source}: {e}"));
                }
                result
            };
            println!("{result}");
            Ok(())
        }
        ["profile", config, bench] | ["profile", config, bench, ..] => {
            let instructions = args
                .get(3)
                .map(|s| parse_u64(s, "instruction count"))
                .transpose()?
                .unwrap_or(1_000_000);
            let top = args
                .get(4)
                .map(|s| parse_u64(s, "top count"))
                .transpose()?
                .unwrap_or(10) as usize;
            let trace = load_trace(bench, instructions)?;
            let mut p =
                make_predictor(config).ok_or_else(|| format!("unknown predictor {config}"))?;
            let profile = MispredictionProfile::collect(p.as_mut(), &trace);
            println!(
                "{config} on {}: {:.3} MPKI; top-{top} branches cause {:.0} % of mispredictions",
                trace.name(),
                profile.mpki(),
                profile.concentration(top) * 100.0
            );
            let mut table = TextTable::new(vec!["pc", "occurrences", "mispredicted", "rate"]);
            for b in profile.top(top) {
                table.row(vec![
                    format!("{:#x}{}", b.pc, if b.backward { " (bwd)" } else { "" }),
                    b.occurrences.to_string(),
                    b.mispredictions.to_string(),
                    format!("{:.1} %", b.misprediction_rate() * 100.0),
                ]);
            }
            println!("{table}");
            Ok(())
        }
        ["grid", suite, ..] => run_grid(suite, &args[2..]),
        ["report", suite, ..] => run_report_cmd(suite, &args[2..]),
        ["scenario", spec, ..] => run_scenario_cmd(spec, &args[2..]),
        ["sweep", suite, ..] => run_sweep_cmd(suite, &args[2..]),
        ["bench", ..] => run_bench(&args[1..]),
        ["lint", ..] => run_lint(&args[1..]),
        ["cache", ..] => run_cache_cmd(&args[1..]),
        ["compare", bench] | ["compare", bench, _] => {
            let instructions = args
                .get(2)
                .map(|s| parse_u64(s, "instruction count"))
                .transpose()?
                .unwrap_or(1_000_000);
            let trace = load_trace(bench, instructions)?;
            let mut rows: Vec<(String, f64)> = registry()
                .into_iter()
                .map(|spec| {
                    let mut p = spec.make();
                    (spec.name.to_owned(), simulate(p.as_mut(), &trace).mpki())
                })
                .collect();
            rows.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut table = TextTable::new(vec!["config", "MPKI"]);
            for (name, mpki) in rows {
                table.row(vec![name, format!("{mpki:.3}")]);
            }
            println!("{} ({} instructions)\n{table}", trace.name(), instructions);
            Ok(())
        }
        _ => return Ok(None),
    }
    .map(Some)
}

/// The default on-disk location of the result cache when `--cache` is
/// given without a directory.
const DEFAULT_CACHE_DIR: &str = ".bp-cache";

/// Parses `--cache`'s optional directory operand: consumed only when
/// the next token does not look like another flag.
fn take_cache_dir(it: &mut std::slice::Iter<'_, String>) -> String {
    match it.clone().next() {
        Some(v) if !v.starts_with('-') => {
            it.next();
            v.clone()
        }
        _ => DEFAULT_CACHE_DIR.to_owned(),
    }
}

/// Parses a `--cache-mode` operand.
fn parse_cache_mode(v: &str) -> Result<CachePolicy, String> {
    match v.to_ascii_lowercase().as_str() {
        "rw" | "read-write" => Ok(CachePolicy::ReadWrite),
        "ro" | "read-only" => Ok(CachePolicy::ReadOnly),
        "refresh" => Ok(CachePolicy::Refresh),
        other => Err(format!("unknown cache mode {other} (rw, ro, refresh)")),
    }
}

/// Builds the [`SimCache`] from parsed `--cache` / `--cache-mode`
/// flags; a mode without `--cache` is rejected instead of silently
/// ignored.
fn build_cache(dir: Option<String>, mode: Option<CachePolicy>) -> Result<Option<SimCache>, String> {
    match (dir, mode) {
        (Some(dir), mode) => Ok(Some(SimCache::new(dir, mode.unwrap_or_default()))),
        (None, Some(_)) => Err("--cache-mode needs --cache".to_owned()),
        (None, None) => Ok(None),
    }
}

/// Prints the cache tally line (to stderr: the deterministic artifact
/// and `--json` streams stay byte-identical with the cache on or off).
fn report_cache_outcome(cache: Option<&SimCache>, cells: usize) {
    if let Some(cache) = cache {
        eprintln!(
            "cache: {}/{} cells hit, {} stored ({})",
            cache.hits(),
            cells,
            cache.stores(),
            cache.store().root().display()
        );
    }
}

/// Flags shared by the `bp grid` and `bp report` sweep commands, plus
/// the report-only extras (`--warmup`, `--out-dir`), which `grid`
/// rejects as unknown.
struct SweepFlags {
    jobs: Option<usize>,
    json: bool,
    instructions: u64,
    predictors: Vec<PredictorSpec>,
    warmup: Option<u64>,
    out_dir: String,
    strategy: GridStrategy,
    drive_mode: DriveMode,
    cache: Option<SimCache>,
}

/// Parses the shared sweep flags (`--jobs`, `--instr`, `--json`,
/// `--family`, `--predictors`, `--cache [DIR]`, `--cache-mode M`).
/// `command` names the subcommand for error messages; `report_flags`
/// additionally enables `--warmup` and `--out-dir`, while `grid` alone
/// takes `--strategy` and `--drive-mode`.
fn parse_sweep_flags(
    command: &str,
    flags: &[String],
    default_instructions: u64,
    initial_predictors: Vec<PredictorSpec>,
    report_flags: bool,
) -> Result<SweepFlags, String> {
    let mut parsed = SweepFlags {
        jobs: None,
        json: false,
        instructions: default_instructions,
        predictors: initial_predictors,
        warmup: None,
        out_dir: ".".to_owned(),
        strategy: GridStrategy::Auto,
        drive_mode: DriveMode::default(),
        cache: None,
    };
    let mut cache_dir: Option<String> = None;
    let mut cache_mode: Option<CachePolicy> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        if flag == "--cache" {
            cache_dir = Some(take_cache_dir(&mut it));
            continue;
        }
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--cache-mode" => cache_mode = Some(parse_cache_mode(value("cache mode")?)?),
            "--jobs" => {
                let v = value("worker count")?;
                parsed.jobs = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad worker count: {v}"))?,
                );
            }
            "--instr" => {
                parsed.instructions = parse_u64(value("instruction count")?, "instruction count")?;
            }
            "--json" => parsed.json = true,
            "--family" => {
                let v = value("family name")?;
                let family = PredictorFamily::ALL
                    .into_iter()
                    .find(|f| f.to_string() == v.to_ascii_lowercase())
                    .ok_or_else(|| {
                        format!("unknown family {v} (tage, gehl, perceptron, baseline)")
                    })?;
                parsed.predictors = family_members(family);
            }
            "--predictors" => {
                let v = value("comma-separated list")?;
                parsed.predictors = v
                    .split(',')
                    .map(|name| {
                        lookup(name.trim()).ok_or_else(|| {
                            format!(
                                "unknown predictor {} (try `bp list predictors`)",
                                name.trim()
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--config" => {
                // A config file *replaces* the predictor set with
                // custom configurations (same precedence as --family /
                // --predictors: last flag wins).
                let path = value("config file path")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parsed.predictors =
                    parse_predictor_file(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--strategy" if !report_flags => {
                let v = value("strategy name")?;
                parsed.strategy = match v.to_ascii_lowercase().as_str() {
                    "auto" => GridStrategy::Auto,
                    "cell" | "per-cell" => GridStrategy::PerCell,
                    "fused" | "fused-columns" => GridStrategy::FusedColumns,
                    other => return Err(format!("unknown strategy {other} (auto, cell, fused)")),
                };
            }
            "--drive-mode" if !report_flags => {
                let v = value("drive mode")?;
                parsed.drive_mode = DriveMode::parse(v)
                    .ok_or_else(|| format!("unknown drive mode {v} (scalar, pipelined)"))?;
            }
            "--warmup" if report_flags => {
                parsed.warmup = Some(parse_u64(value("instruction count")?, "instruction count")?);
            }
            "--out-dir" if report_flags => {
                parsed.out_dir = value("directory")?.to_owned();
            }
            other => return Err(format!("unknown {command} flag {other}")),
        }
    }
    parsed.cache = build_cache(cache_dir, cache_mode)?;
    Ok(parsed)
}

/// Parses and runs `bp grid <suite> [--jobs N] [--json] [--instr N]
/// [--family F] [--predictors a,b,c]`.
fn run_grid(suite_name: &str, flags: &[String]) -> Result<(), String> {
    let benchmarks = suite_by_name(suite_name)
        .ok_or_else(|| format!("unknown suite {suite_name} (try cbp4, cbp3, or paper)"))?;
    let SweepFlags {
        jobs,
        json,
        instructions,
        predictors,
        strategy,
        drive_mode,
        cache,
        ..
    } = parse_sweep_flags("grid", flags, 1_000_000, registry(), false)?;

    let engine = jobs
        .map_or_else(Engine::new, Engine::with_jobs)
        .with_strategy(strategy)
        .with_drive_mode(drive_mode)
        .with_cache(cache);
    let started = std::time::Instant::now();
    let show_progress = !json;
    let grid = engine.run_grid_with_progress(&predictors, &benchmarks, instructions, &|update| {
        if show_progress {
            eprint!(
                "\r[{}/{}] {} on {} ({:.3} MPKI)          ",
                update.completed, update.total, update.predictor, update.benchmark, update.mpki
            );
            let _ = std::io::stderr().flush();
        }
    });
    let elapsed = started.elapsed();
    if show_progress {
        eprintln!();
    }
    report_cache_outcome(engine.cache(), predictors.len() * benchmarks.len());

    if json {
        println!(
            "{}",
            grid_to_json(suite_name, instructions, engine.jobs(), &grid)
        );
    } else {
        let mut table = TextTable::new(vec!["config", "mean MPKI", "Kbit", "Mrec/s"]);
        let mut means: Vec<(usize, &str, f64)> = grid
            .mean_mpki_rows()
            .into_iter()
            .enumerate()
            .map(|(p, (name, mean))| (p, name, mean))
            .collect();
        means.sort_by(|a, b| a.2.total_cmp(&b.2));
        for (p, name, mean) in means {
            // Resolve storage from the specs actually run (a --config
            // file's custom names are not in the global registry).
            let kbit = predictors
                .iter()
                .find(|s| s.name == name)
                .map_or(0.0, PredictorSpec::storage_kbit);
            table.row(vec![
                name.to_owned(),
                format!("{mean:.3}"),
                format!("{kbit:.0}"),
                format!("{:.2}", grid.row_records_per_sec(p) / 1e6),
            ]);
        }
        println!(
            "{} grid: {} predictors x {} benchmarks at {} instructions, {} jobs, {:.2}s\n{table}",
            suite_name,
            grid.predictors.len(),
            grid.benchmarks.len(),
            instructions,
            engine.jobs(),
            elapsed.as_secs_f64(),
        );
    }
    Ok(())
}

/// Parses and runs `bp report <suite> [--jobs N] [--instr N]
/// [--warmup N] [--json] [--family F] [--predictors a,b,c]
/// [--out-dir D]`: the attributed (predictor × benchmark) grid, folded
/// into the deterministic paper-style report and written to
/// `REPORT_<suite>.md` / `REPORT_<suite>.json`.
///
/// The `paper` suite is the quick path: the eight benchmarks the paper
/// analyzes per-name, against the Table 1/2 configuration ladder. The
/// report depends only on its inputs — two runs with the same flags
/// produce byte-identical files.
fn run_report_cmd(suite_name: &str, flags: &[String]) -> Result<(), String> {
    let benchmarks = suite_by_name(suite_name)
        .ok_or_else(|| format!("unknown suite {suite_name} (try cbp4, cbp3, or paper)"))?;
    let default_predictors: Vec<PredictorSpec> = if suite_name.eq_ignore_ascii_case("paper") {
        paper_report_predictors()
    } else {
        registry()
    };
    let SweepFlags {
        jobs,
        json,
        instructions,
        predictors,
        warmup,
        out_dir,
        strategy: _,
        drive_mode: _,
        cache,
    } = parse_sweep_flags("report", flags, 500_000, default_predictors, true)?;
    // Default warmup: the first fifth of each benchmark.
    let warmup = warmup.unwrap_or(instructions / 5);
    if warmup >= instructions {
        return Err(format!(
            "warmup ({warmup}) must be smaller than the instruction budget ({instructions})"
        ));
    }

    let engine = jobs.map_or_else(Engine::new, Engine::with_jobs);
    let show_progress = !json;
    let report = run_report_with_cache(
        &suite_name.to_ascii_lowercase(),
        &predictors,
        &benchmarks,
        instructions,
        warmup,
        engine.jobs(),
        cache.as_ref(),
        &|update| {
            if show_progress {
                eprint!(
                    "\r[{}/{}] {} on {} ({:.3} MPKI)          ",
                    update.completed, update.total, update.predictor, update.benchmark, update.mpki
                );
                let _ = std::io::stderr().flush();
            }
        },
    );
    if show_progress {
        eprintln!();
    }
    report_cache_outcome(cache.as_ref(), predictors.len() * benchmarks.len());

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let stem = format!("REPORT_{}", suite_name.to_ascii_lowercase());
    let md_path = std::path::Path::new(&out_dir).join(format!("{stem}.md"));
    let json_path = std::path::Path::new(&out_dir).join(format!("{stem}.json"));
    let markdown = report.to_markdown();
    let json_doc = report.to_json();
    std::fs::write(&md_path, &markdown)
        .map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    std::fs::write(&json_path, &json_doc)
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    if json {
        print!("{json_doc}");
    } else {
        // The Mrec/s column is live telemetry from the engine's
        // per-cell timings; it goes to stdout only — the written
        // report files stay byte-deterministic.
        let mut table =
            TextTable::new(vec!["config", "mean MPKI", "steady MPKI", "Kbit", "Mrec/s"]);
        for (p, row) in report.rows.iter().enumerate() {
            table.row(vec![
                row.name.clone(),
                format!("{:.3}", row.mean_mpki()),
                format!("{:.3}", row.steady_mpki()),
                format!("{:.0}", row.storage_kbit()),
                format!("{:.2}", report.row_records_per_sec(p) / 1e6),
            ]);
        }
        println!(
            "{} report: {} predictors x {} benchmarks at {} instructions (warmup {})\n{table}\
             wrote {} and {}",
            suite_name,
            report.rows.len(),
            report.benchmarks.len(),
            instructions,
            warmup,
            md_path.display(),
            json_path.display(),
        );
    }
    Ok(())
}

/// Parses and runs `bp scenario <name-or-file> [--jobs N] [--instr N]
/// [--json] [--family F] [--predictors a,b,c] [--config FILE]
/// [--out-dir D]`: the shared-predictor scenario runner.
///
/// The scenario is a built-in name (`paper_mix`, `paper_switch`,
/// `hostile_mix`) or a path to a scenario file (see
/// [`parse_scenario_file`]): N tenant streams interleaved into one
/// fetch stream with per-tenant PC regions, optional periodic
/// context-switch flushes, and per-tenant MPKI/attribution reporting.
/// `--instr` overrides the per-tenant instruction budget; `--config`
/// replaces the predictor set with custom configurations, as in
/// `bp report`. Artifacts `SCENARIO_<name>.md` / `SCENARIO_<name>.json`
/// are byte-deterministic: same inputs, same bytes, any `--jobs`.
fn run_scenario_cmd(spec_arg: &str, flags: &[String]) -> Result<(), String> {
    let mut scenario = match scenario_by_name(spec_arg) {
        Some(s) => s,
        None => {
            let text = std::fs::read_to_string(spec_arg).map_err(|e| {
                format!(
                    "unknown scenario {spec_arg} (try {}) and cannot read it as a file: {e}",
                    SCENARIO_NAMES.join(", ")
                )
            })?;
            parse_scenario_file(&text).map_err(|e| format!("{spec_arg}: {e}"))?
        }
    };
    let mut predictors = scenario_report_predictors();
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut out_dir = ".".to_owned();
    let mut cache_dir: Option<String> = None;
    let mut cache_mode: Option<CachePolicy> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        if flag == "--cache" {
            cache_dir = Some(take_cache_dir(&mut it));
            continue;
        }
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--cache-mode" => cache_mode = Some(parse_cache_mode(value("cache mode")?)?),
            "--jobs" => {
                let v = value("worker count")?;
                jobs = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad worker count: {v}"))?,
                );
            }
            "--instr" => {
                scenario.instructions =
                    parse_u64(value("instruction count")?, "instruction count")?;
            }
            "--json" => json = true,
            "--family" => {
                let v = value("family name")?;
                let family = PredictorFamily::ALL
                    .into_iter()
                    .find(|f| f.to_string() == v.to_ascii_lowercase())
                    .ok_or_else(|| {
                        format!("unknown family {v} (tage, gehl, perceptron, baseline)")
                    })?;
                predictors = family_members(family);
            }
            "--predictors" => {
                let v = value("comma-separated list")?;
                predictors = v
                    .split(',')
                    .map(|name| {
                        lookup(name.trim()).ok_or_else(|| {
                            format!(
                                "unknown predictor {} (try `bp list predictors`)",
                                name.trim()
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--config" => {
                let path = value("config file path")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                predictors = parse_predictor_file(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--out-dir" => {
                out_dir = value("directory")?.to_owned();
            }
            other => return Err(format!("unknown scenario flag {other}")),
        }
    }
    let cache = build_cache(cache_dir, cache_mode)?;

    let engine = jobs.map_or_else(Engine::new, Engine::with_jobs);
    let show_progress = !json;
    let report = run_scenario_with_cache(
        &scenario,
        &predictors,
        engine.jobs(),
        cache.as_ref(),
        &|update| {
            if show_progress {
                eprint!(
                    "\r[{}/{}] {} on {} ({:.3} MPKI)          ",
                    update.completed, update.total, update.predictor, update.benchmark, update.mpki
                );
                let _ = std::io::stderr().flush();
            }
        },
    )?;
    if show_progress {
        eprintln!();
    }
    report_cache_outcome(cache.as_ref(), predictors.len());

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let stem = format!("SCENARIO_{}", report.scenario);
    let md_path = std::path::Path::new(&out_dir).join(format!("{stem}.md"));
    let json_path = std::path::Path::new(&out_dir).join(format!("{stem}.json"));
    let markdown = report.to_markdown();
    let json_doc = report.to_json();
    std::fs::write(&md_path, &markdown)
        .map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    std::fs::write(&json_path, &json_doc)
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    if json {
        print!("{json_doc}");
    } else {
        let mut table = TextTable::new(vec!["config", "family", "combined MPKI", "flushes"]);
        for row in &report.rows {
            table.row(vec![
                row.name.clone(),
                row.family.clone(),
                format!("{:.3}", row.run.mpki()),
                row.run.flushes.to_string(),
            ]);
        }
        println!(
            "scenario {}: {} tenants x {} instructions, schedule {}, flush {}\n{table}\
             wrote {} and {}",
            report.scenario,
            report.tenants.len(),
            report.instructions,
            report.schedule,
            report.flush,
            md_path.display(),
            json_path.display(),
        );
    }
    Ok(())
}

/// Parses and runs `bp sweep <suite> [--budgets 8,16,...]
/// [--families a,b,c] [--config FILE] [--jobs N] [--instr N] [--json]
/// [--out-dir D] [--quick]`: the storage-budget sweep.
///
/// For every (budget, family) pair the solver produces a configuration
/// whose **exact** `storage_items()` total lands within 2% of the
/// target; the solved configurations run as one fused grid (each
/// benchmark stream decoded once for all of them) and the results are
/// written as the byte-deterministic `SWEEP_<suite>.md` /
/// `SWEEP_<suite>.json` artifacts. `--quick` is the CI smoke setting
/// (the paper's 64/256-Kbit points at a small instruction budget).
fn run_sweep_cmd(suite_name: &str, flags: &[String]) -> Result<(), String> {
    let benchmarks = suite_by_name(suite_name)
        .ok_or_else(|| format!("unknown suite {suite_name} (try cbp4, cbp3, or paper)"))?;
    let mut budgets: Vec<u64> = STANDARD_BUDGETS_KBIT.to_vec();
    let mut budgets_explicit = false;
    let mut families: Vec<String> = SWEEP_FAMILIES.iter().map(|&f| f.to_owned()).collect();
    let mut jobs: Option<usize> = None;
    let mut instructions: Option<u64> = None;
    let mut json = false;
    let mut quick = false;
    let mut out_dir = ".".to_owned();
    let mut cache_dir: Option<String> = None;
    let mut cache_mode: Option<CachePolicy> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        if flag == "--cache" {
            cache_dir = Some(take_cache_dir(&mut it));
            continue;
        }
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--cache-mode" => cache_mode = Some(parse_cache_mode(value("cache mode")?)?),
            "--budgets" => {
                budgets = value("comma-separated Kbit list")?
                    .split(',')
                    .map(|b| parse_u64(b.trim(), "budget (Kbit)"))
                    .collect::<Result<_, _>>()?;
                budgets_explicit = true;
            }
            "--families" => {
                families = value("comma-separated family list")?
                    .split(',')
                    .map(|f| f.trim().to_owned())
                    .collect();
            }
            "--config" => {
                let path = value("config file path")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let parsed = parse_sweep_file(&text).map_err(|e| format!("{path}: {e}"))?;
                if let Some(b) = parsed.budgets_kbit {
                    budgets = b;
                    budgets_explicit = true;
                }
                if let Some(f) = parsed.families {
                    families = f;
                }
            }
            "--jobs" => {
                let v = value("worker count")?;
                jobs = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad worker count: {v}"))?,
                );
            }
            "--instr" => {
                instructions = Some(parse_u64(value("instruction count")?, "instruction count")?);
            }
            "--json" => json = true,
            "--quick" => quick = true,
            "--out-dir" => out_dir = value("directory")?.to_owned(),
            other => return Err(format!("unknown sweep flag {other}")),
        }
    }
    if quick {
        // The CI smoke shape: the paper's two headline budgets at a
        // small instruction budget. Budgets set explicitly (via
        // --budgets or a --config file) and explicit --instr win.
        if !budgets_explicit {
            budgets = vec![64, 256];
        }
        if instructions.is_none() {
            instructions = Some(50_000);
        }
    }
    let instructions = instructions.unwrap_or(500_000);
    if budgets.is_empty() || families.is_empty() {
        return Err("sweep needs at least one budget and one family".to_owned());
    }

    let cache = build_cache(cache_dir, cache_mode)?;
    let engine_jobs = jobs.unwrap_or_else(|| Engine::new().jobs());
    let show_progress = !json;
    let started = std::time::Instant::now();
    let report = run_sweep_with_cache(
        &suite_name.to_ascii_lowercase(),
        &benchmarks,
        &budgets,
        &families,
        instructions,
        engine_jobs,
        cache.as_ref(),
        &|update| {
            if show_progress {
                eprint!(
                    "\r[{}/{}] {} on {} ({:.3} MPKI)          ",
                    update.completed, update.total, update.predictor, update.benchmark, update.mpki
                );
                let _ = std::io::stderr().flush();
            }
        },
    )
    .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    if show_progress {
        eprintln!();
    }
    report_cache_outcome(
        cache.as_ref(),
        budgets.len() * families.len() * benchmarks.len(),
    );

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let stem = format!("SWEEP_{}", suite_name.to_ascii_lowercase());
    let md_path = std::path::Path::new(&out_dir).join(format!("{stem}.md"));
    let json_path = std::path::Path::new(&out_dir).join(format!("{stem}.json"));
    let markdown = report.to_markdown();
    let json_doc = report.to_json();
    std::fs::write(&md_path, &markdown)
        .map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    std::fs::write(&json_path, &json_doc)
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    if json {
        print!("{json_doc}");
    } else {
        let mut table = TextTable::new(vec![
            "config",
            "target Kbit",
            "actual Kbit",
            "err %",
            "mean MPKI",
        ]);
        for row in &report.rows {
            table.row(vec![
                format!("{}@{}", row.family, row.budget_kbit),
                row.budget_kbit.to_string(),
                format!("{:.2}", row.storage_bits as f64 / 1024.0),
                format!("{:+.2}", row.budget_error() * 100.0),
                format!("{:.3}", row.mean_mpki()),
            ]);
        }
        println!(
            "{} sweep: {} budgets x {} families x {} benchmarks at {} instructions, {} jobs, \
             {:.2}s\n{table}wrote {} and {}",
            suite_name,
            report.budgets_kbit.len(),
            report.families.len(),
            report.benchmarks.len(),
            instructions,
            engine_jobs,
            elapsed.as_secs_f64(),
            md_path.display(),
            json_path.display(),
        );
    }
    Ok(())
}

/// Parses and runs `bp cache <stats|gc|clear> [DIR]`: result-cache
/// maintenance. Output is deterministic for a given cache state — the
/// store walks its directories in sorted order and prints plain
/// counts, no timestamps or wall-clock.
fn run_cache_cmd(args: &[String]) -> Result<(), String> {
    let (action, dir) = match args {
        [action] => (action.as_str(), DEFAULT_CACHE_DIR),
        [action, dir] => (action.as_str(), dir.as_str()),
        _ => return Err("usage: bp cache <stats|gc|clear> [DIR]".to_owned()),
    };
    let store = CacheStore::new(dir);
    match action {
        "stats" => {
            let stats = store.stats();
            println!(
                "{dir}: {} entries, {} bytes, {} invalid files",
                stats.entries, stats.bytes, stats.invalid
            );
        }
        "gc" => {
            let outcome = store.gc();
            println!(
                "{dir}: kept {} entries, removed {} invalid files",
                outcome.kept, outcome.removed
            );
        }
        "clear" => {
            let removed = store.clear();
            println!("{dir}: removed {removed} entries");
        }
        other => return Err(format!("unknown cache action {other} (stats, gc, clear)")),
    }
    Ok(())
}

/// Parses and runs `bp bench [--quick] [--instr N] [--out FILE]`: the
/// `bp lint [--json] [--fix-audit]`: the workspace invariant lint gate.
///
/// Scans every workspace `.rs` file (excluding `vendor/` and `target/`)
/// with the four rule families (unsafe-audit, determinism,
/// hot-path-alloc, panic-surface), prints `file:line: rule: message`
/// diagnostics, and checks that the committed `UNSAFE_AUDIT.md`
/// matches the regenerated inventory (`--fix-audit` rewrites it
/// instead). Exits nonzero on any violation, so CI can gate on it.
fn run_lint(flags: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut fix_audit = false;
    for flag in flags {
        match flag.as_str() {
            "--json" => json = true,
            "--fix-audit" => fix_audit = true,
            other => return Err(format!("unknown bp lint flag: {other}")),
        }
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = find_workspace_root(&cwd)
        .ok_or("bp lint must run inside the workspace (no [workspace] Cargo.toml found)")?;
    let mut report = lint_workspace(&root)?;

    let audit = report.render_audit();
    let audit_path = root.join("UNSAFE_AUDIT.md");
    if fix_audit {
        std::fs::write(&audit_path, &audit)
            .map_err(|e| format!("cannot write {}: {e}", audit_path.display()))?;
    } else {
        let committed = std::fs::read_to_string(&audit_path).unwrap_or_default();
        if committed != audit {
            report.diagnostics.push(imli_repro::lint::Diagnostic {
                path: "UNSAFE_AUDIT.md".to_owned(),
                line: 0,
                rule: imli_repro::lint::Rule::UnsafeAudit,
                message: if committed.is_empty() {
                    "missing unsafe inventory; run `bp lint --fix-audit` and commit it".to_owned()
                } else {
                    "inventory drifted from the source tree; run `bp lint --fix-audit` \
                     and review the diff"
                        .to_owned()
                },
            });
            report.diagnostics.sort();
        }
    }

    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "bp lint: {} files scanned, {} unsafe sites audited, {} violation(s){}",
            report.files_scanned,
            report.unsafe_sites.len(),
            report.diagnostics.len(),
            if fix_audit {
                format!("; wrote {}", audit_path.display())
            } else {
                String::new()
            }
        );
    }
    if report.diagnostics.is_empty() {
        Ok(())
    } else {
        Err(format!("{} lint violation(s)", report.diagnostics.len()))
    }
}

/// trace-I/O throughput benchmark (format v1 vs v2), written as JSON to
/// `BENCH_trace_io.json` (or `--out`) and summarized on stdout.
///
/// The default budget matches the paper's trace scale (~30M
/// instructions per CBP trace), where the costs being measured are
/// realistic: a materialized v1 trace no longer fits in cache, which is
/// the regime the streaming v2 pipeline exists for. `--quick` is the
/// CI smoke setting.
fn run_bench(flags: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut sim = false;
    let mut instr: Option<u64> = None;
    let mut reps: Option<usize> = None;
    let mut gate_pct: Option<f64> = None;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut cache = false;
    let mut cache_dir: Option<String> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--sim" => sim = true,
            "--cache" => {
                cache = true;
                // Optional DIR operand; without one the bench uses a
                // throwaway scratch directory (never `.bp-cache` — the
                // cold leg clears the store every repetition).
                if let Some(v) = it.clone().next() {
                    if !v.starts_with('-') {
                        cache_dir = Some(v.clone());
                        it.next();
                    }
                }
            }
            "--instr" => {
                let v = it.next().ok_or("--instr needs an instruction count")?;
                instr = Some(parse_u64(v, "instruction count")?);
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a repetition count")?;
                reps = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad repetition count: {v}"))?,
                );
            }
            "--gate-pct" => {
                let v = it.next().ok_or("--gate-pct needs a percentage")?;
                gate_pct = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|p| p.is_finite() && (0.0..100.0).contains(p))
                        .ok_or_else(|| format!("bad gate percentage: {v}"))?,
                );
            }
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs a file path")?.clone());
            }
            "--baseline" => {
                baseline_path = Some(it.next().ok_or("--baseline needs a file path")?.clone());
            }
            other => return Err(format!("unknown bench flag {other}")),
        }
    }
    if quick && instr.is_some() {
        return Err("--quick and --instr are mutually exclusive".to_owned());
    }
    if (baseline_path.is_some() || reps.is_some() || cache) && !sim {
        return Err("--baseline, --reps, and --cache only apply to bench --sim".to_owned());
    }
    if gate_pct.is_some() && baseline_path.is_none() {
        return Err("--gate-pct needs a --baseline to gate against".to_owned());
    }
    if sim {
        return run_sim_bench_cmd(
            quick,
            instr,
            reps.unwrap_or(DEFAULT_REPS),
            gate_pct,
            out_path.unwrap_or_else(|| "BENCH_sim.json".to_owned()),
            baseline_path,
            cache.then_some(cache_dir),
        );
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_trace_io.json".to_owned());
    let instructions = instr.unwrap_or(if quick { 200_000 } else { 30_000_000 });

    let scratch = std::env::temp_dir().join(format!("bp-bench-{}", std::process::id()));
    let report = run_trace_io_bench(instructions, &scratch)
        .map_err(|e| format!("trace-io bench failed: {e}"))?;
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    let mut table = TextTable::new(vec![
        "benchmark",
        "records",
        "v1 bytes",
        "v2 bytes",
        "v2/v1",
        "v1 pipeline Mrec/s",
        "v2 pipeline Mrec/s",
    ]);
    for b in &report.benchmarks {
        table.row(vec![
            b.benchmark.clone(),
            b.records.to_string(),
            b.v1.bytes.to_string(),
            b.v2.bytes.to_string(),
            format!("{:.3}", b.v2.bytes as f64 / b.v1.bytes as f64),
            format!("{:.2}", b.v1.pipeline_records_per_sec(b.records) / 1e6),
            format!("{:.2}", b.v2.pipeline_records_per_sec(b.records) / 1e6),
        ]);
    }
    println!("{table}");
    println!(
        "totals: v2 size {:.1} % of v1; file-simulate pipeline speedup {:.2}x \
         (streaming read {:.2}x, streaming read+simulate {:.2}x); \
         engine grid {:.2} Mrec/s per worker (gen+sim)\nwrote {out_path}",
        report.size_ratio() * 100.0,
        report.pipeline_speedup(),
        report.read_speedup(),
        report.read_simulate_speedup(),
        report.grid_mean_records_per_sec / 1e6,
    );
    Ok(())
}

/// Runs `bp bench --sim`: the simulator-throughput benchmark (see
/// `bp_bench::sim_bench`), written as JSON to `BENCH_sim.json` (or
/// `--out`) and summarized on stdout. `--baseline FILE` embeds a
/// previous run's records/sec as the comparison baseline; `--quick` is
/// the CI smoke setting. `cache` is `Some` when `--cache` was given:
/// `Some(Some(dir))` measures the result-cache leg in `dir` (cleared
/// between cold repetitions), `Some(None)` in a throwaway scratch
/// directory removed afterwards.
#[allow(clippy::option_option)]
fn run_sim_bench_cmd(
    quick: bool,
    instr: Option<u64>,
    reps: usize,
    gate_pct: Option<f64>,
    out_path: String,
    baseline_path: Option<String>,
    cache: Option<Option<String>>,
) -> Result<(), String> {
    let instructions = instr.unwrap_or(if quick { 200_000 } else { 2_000_000 });
    // The grid leg covers 12 predictors × 8 benchmarks; run it at the
    // `bp report paper` default budget (a quarter of the throughput
    // trace keeps full runs tolerable on one core).
    let grid_instructions = (instructions / 4).max(10_000);
    let baseline = match &baseline_path {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            let parsed = parse_predictor_throughputs(&json);
            if parsed.is_empty() {
                return Err(format!("no predictor throughputs found in {path}"));
            }
            parsed
        }
        None => Vec::new(),
    };

    // --cache without DIR gets a pid-scoped scratch store, removed
    // afterwards; an explicit DIR is the caller's to keep (and clear).
    let (cache_path, cache_scratch) = match &cache {
        Some(Some(dir)) => (Some(std::path::PathBuf::from(dir)), false),
        Some(None) => (
            Some(std::env::temp_dir().join(format!("bp-bench-cache-{}", std::process::id()))),
            true,
        ),
        None => (None, false),
    };
    let report = run_sim_bench(
        instructions,
        grid_instructions,
        reps,
        &baseline,
        cache_path.as_deref(),
    );
    if cache_scratch {
        if let Some(path) = &cache_path {
            let _ = std::fs::remove_dir_all(path);
        }
    }
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    let with_baseline = report
        .predictors
        .iter()
        .any(|p| p.baseline_records_per_sec.is_some());
    let mut headers = vec![
        "config",
        "family",
        "Mrec/s",
        "median ms",
        "p90 ms",
        "fe ms",
        "commit ms",
        "vs scalar",
    ];
    if with_baseline {
        headers.push("baseline Mrec/s");
        headers.push("speedup");
    }
    let mut table = TextTable::new(headers);
    for p in &report.predictors {
        let mut row = vec![
            p.name.clone(),
            p.family.clone(),
            format!("{:.2}", p.records_per_sec / 1e6),
            format!("{:.1}", p.stats.median_seconds * 1e3),
            format!("{:.1}", p.stats.p90_seconds * 1e3),
            format!("{:.1}", p.phases.frontend_seconds * 1e3),
            format!("{:.1}", p.phases.commit_seconds * 1e3),
            format!("{:.2}x", p.pipelined_speedup()),
        ];
        if with_baseline {
            row.push(
                p.baseline_records_per_sec
                    .map_or_else(|| "-".to_owned(), |b| format!("{:.2}", b / 1e6)),
            );
            row.push(
                p.speedup()
                    .map_or_else(|| "-".to_owned(), |s| format!("{s:.2}x")),
            );
        }
        table.row(row);
    }
    println!(
        "simulate throughput on {} ({} records, min of {} reps after warmup; \
         fe = pipelined index-generation front end, commit = gather/commit remainder)\n{table}",
        report.benchmark, report.predictors[0].records, report.reps
    );
    println!(
        "pipeline depth sweep ({}): {} (best: {})",
        report.depth_sweep.predictor,
        report
            .depth_sweep
            .points
            .iter()
            .map(|p| format!("{}:{:.2}", p.depth, p.records_per_sec / 1e6))
            .collect::<Vec<_>>()
            .join(" "),
        report
            .depth_sweep
            .best_depth()
            .map_or_else(|| "-".to_owned(), |d| d.to_string()),
    );
    if let Some(m) = &report.memory {
        println!(
            "memory: peak RSS {:.1} MiB, {} minor / {} major page faults",
            m.peak_rss_kib as f64 / 1024.0,
            m.minor_faults,
            m.major_faults
        );
    }
    let g = &report.grid;
    println!(
        "grid: {} predictors x {} benchmarks at {} instructions, {} jobs: \
         per-cell {:.2}s, fused {:.2}s ({:.2}x), results identical: {}",
        g.predictors,
        g.benchmarks,
        g.instructions,
        g.jobs,
        g.per_cell_seconds,
        g.fused_seconds,
        g.fused_speedup(),
        g.fused_matches_per_cell,
    );
    if let Some(c) = &report.cache {
        println!(
            "cache: {} cells at {} instructions, {} jobs: uncached {:.3}s, \
             cold {:.3}s ({:.2}x overhead), warm {:.4}s ({:.0}x speedup), \
             warm hits {}/{}, results identical: {}",
            c.cells,
            c.instructions,
            c.jobs,
            c.uncached.min_seconds,
            c.cold.min_seconds,
            c.cold_overhead(),
            c.warm.min_seconds,
            c.warm_speedup(),
            c.warm_hits,
            c.cells,
            c.warm_matches_uncached,
        );
    }
    println!("wrote {out_path}");
    if let Some(pct) = gate_pct {
        let regressions = throughput_regressions(&report, pct);
        if regressions.is_empty() {
            println!("gate: no predictor regressed more than {pct}% vs baseline");
        } else {
            let worst: Vec<String> = regressions
                .iter()
                .map(|(name, speedup)| format!("{name} at {speedup:.2}x"))
                .collect();
            return Err(format!(
                "throughput regression gate ({pct}% tolerance) failed: {}",
                worst.join(", ")
            ));
        }
    }
    Ok(())
}

fn grid_to_json(
    suite: &str,
    instructions: u64,
    jobs: usize,
    grid: &imli_repro::sim::GridResult,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"suite\": {},\n  \"instructions\": {},\n  \"jobs\": {},\n  \"benchmarks\": [",
        json_string(suite),
        instructions,
        jobs
    ));
    for (i, b) in grid.benchmarks.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(b));
    }
    out.push_str("],\n  \"rows\": [\n");
    let means = grid.mean_mpki_rows();
    for (p, name) in grid.predictors.iter().enumerate() {
        let row = grid.row(p);
        let mean = means[p].1;
        out.push_str(&format!(
            "    {{\"predictor\": {}, \"mean_mpki\": {:.6}, \"mpki\": [",
            json_string(name),
            mean
        ));
        for (b, cell) in row.iter().enumerate() {
            if b > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{:.6}", cell.mpki()));
        }
        // Per-cell throughput telemetry (wall-clock, so not part of the
        // deterministic sections): records/sec from the engine's
        // per-cell timings.
        out.push_str("], \"records_per_sec\": [");
        for b in 0..grid.benchmarks.len() {
            if b > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{:.1}", grid.records_per_sec(p, b)));
        }
        out.push_str(&format!(
            "], \"row_records_per_sec\": {:.1}}}",
            grid.row_records_per_sec(p)
        ));
        out.push_str(if p + 1 < grid.predictors.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str(&format!(
        "  ],\n  \"mean_records_per_sec\": {:.1}\n}}",
        grid.mean_records_per_sec()
    ));
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Some(())) => ExitCode::SUCCESS,
        Ok(None) => usage(),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
