//! Design ablations flagged in DESIGN.md: accuracy as a function of the
//! IMLI table geometries. Criterion measures the fixed-geometry
//! simulation cost; the printed MPKI sweeps are the accuracy ablation.
//!
//! Run with `cargo bench -p bp-bench --bench ablations`.

use bp_sim::simulate;
use bp_tage::{TageSc, TageScConfig};
use bp_workloads::{find_benchmark, generate};
use criterion::{criterion_group, criterion_main, Criterion};
use imli::ImliConfig;

/// MPKI of TAGE-GSC+IMLI with a custom IMLI geometry on one of the
/// paper's flagship benchmarks.
fn mpki_with(imli: ImliConfig, bench: &str) -> f64 {
    let spec = find_benchmark(bench).expect("flagship benchmark exists");
    let trace = generate(&spec, 150_000);
    let mut p = TageSc::new(TageScConfig::gsc_imli().with_imli(imli, "ablation"));
    simulate(&mut p, &trace).mpki()
}

fn sic_size_sweep(c: &mut Criterion) {
    println!("\nablation: IMLI-SIC table size on SPEC2K6-04 (variable-trip SIC workload)");
    for entries in [64usize, 128, 256, 512, 1024, 2048] {
        let config = ImliConfig {
            sic_entries: entries,
            ..ImliConfig::default()
        };
        println!(
            "  sic_entries={entries:5}: {:.3} MPKI",
            mpki_with(config, "SPEC2K6-04")
        );
    }
    c.bench_function("ablation_sic_default", |b| {
        b.iter(|| mpki_with(ImliConfig::default(), "SPEC2K6-04"));
    });
}

fn oh_size_sweep(c: &mut Criterion) {
    println!("\nablation: outer-history table size on SPEC2K6-12 (diagonal workload)");
    for bits in [256usize, 512, 1024, 2048] {
        let config = ImliConfig {
            outer_history_bits: bits,
            ..ImliConfig::default()
        };
        println!(
            "  outer_history_bits={bits:5}: {:.3} MPKI",
            mpki_with(config, "SPEC2K6-12")
        );
    }
    c.bench_function("ablation_oh_default", |b| {
        b.iter(|| mpki_with(ImliConfig::default(), "SPEC2K6-12"));
    });
}

fn counter_width_sweep(c: &mut Criterion) {
    println!("\nablation: IMLI counter width on SPEC2K6-04");
    for bits in [4usize, 6, 8, 10, 12] {
        let config = ImliConfig {
            counter_bits: bits,
            ..ImliConfig::default()
        };
        println!(
            "  counter_bits={bits:3}: {:.3} MPKI",
            mpki_with(config, "SPEC2K6-04")
        );
    }
    c.bench_function("ablation_counter_default", |b| {
        b.iter(|| mpki_with(ImliConfig::default(), "SPEC2K6-04"));
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = configure();
    targets = sic_size_sweep, oh_size_sweep, counter_width_sweep
}
criterion_main!(benches);
