//! Predictor throughput: predictions+updates per second for every major
//! configuration, over a representative synthetic trace.
//!
//! These benches quantify the *simulation* cost of each design — e.g.
//! the paper's complexity argument shows up as TAGE-GSC+IMLI costing
//! barely more than TAGE-GSC, while the +L local-history configurations
//! and +WH pay for their extra structures.

use bp_sim::{make_predictor, simulate};
use bp_workloads::quick_benchmark;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn predictor_throughput(c: &mut Criterion) {
    let trace = quick_benchmark("throughput", 0xBEEF, 60_000);
    let branches = trace.conditional_count();
    let mut group = c.benchmark_group("predict_update");
    group.throughput(Throughput::Elements(branches));
    group.sample_size(10);
    for config in [
        "bimodal",
        "gshare",
        "tage-gsc",
        "tage-gsc+imli",
        "tage-gsc+wh",
        "tage-sc-l",
        "tage-sc-l+imli",
        "gehl",
        "gehl+imli",
        "ftl+imli",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(config), config, |b, config| {
            b.iter_batched(
                || make_predictor(config).expect("registered"),
                |mut p| simulate(p.as_mut(), &trace),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, predictor_throughput);
criterion_main!(benches);
