//! Component-level micro-benchmarks: the per-branch cost of each
//! structure the composed predictors are built from, plus the
//! checkpoint/restore operations whose cheapness is the paper's
//! hardware argument.

use bp_components::{SumComponent, SumCtx};
use bp_history::HistoryState;
use bp_tage::{Tage, TageConfig};
use bp_trace::BranchRecord;
use criterion::{criterion_group, criterion_main, Criterion};
use imli::{ImliConfig, ImliSic, ImliState};
use std::hint::black_box;

fn imli_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("imli");
    let backward = BranchRecord::conditional(0x4010, 0x4000, true);

    group.bench_function("counter_observe", |b| {
        let mut state = ImliState::new(&ImliConfig::sic_only());
        b.iter(|| {
            state.observe(black_box(&backward));
            black_box(state.counter().value())
        });
    });

    group.bench_function("sic_read_train", |b| {
        let mut sic = ImliSic::new(512, 6);
        let ctx = SumCtx {
            pc: 0x4008,
            imli_count: 17,
            ..SumCtx::default()
        };
        b.iter(|| {
            let v = sic.read(black_box(&ctx));
            sic.train(&ctx, v < 0);
            black_box(v)
        });
    });

    group.bench_function("full_observe_with_oh", |b| {
        let mut state = ImliState::new(&ImliConfig::default());
        b.iter(|| {
            state.observe(black_box(&backward));
            black_box(state.outer_history().pipe())
        });
    });

    group.bench_function("checkpoint_restore", |b| {
        let mut state = ImliState::new(&ImliConfig::default());
        state.observe(&backward);
        b.iter(|| {
            let cp = state.checkpoint();
            state.restore(black_box(&cp));
        });
    });
    group.finish();
}

fn tage_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("tage");
    group.bench_function("lookup_update", |b| {
        let mut tage = Tage::new(TageConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x4000 + (i % 64) * 8;
            let taken = !i.is_multiple_of(3);
            let lookup = tage.lookup(black_box(pc));
            tage.update(pc, taken);
            tage.push_history(pc, taken);
            i += 1;
            black_box(lookup.pred)
        });
    });
    group.finish();
}

fn history_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("history");
    group.bench_function("push_with_12_folds", |b| {
        let mut hs = HistoryState::new(2048, 16);
        for i in 0..12 {
            hs.add_fold(4 + i * 50, 11);
        }
        let mut i = 0u64;
        b.iter(|| {
            hs.push(i.is_multiple_of(2), 0x40 + i * 4);
            i += 1;
            black_box(hs.path())
        });
    });
    group.bench_function("checkpoint_restore", |b| {
        let mut hs = HistoryState::new(2048, 16);
        for i in 0..12 {
            hs.add_fold(4 + i * 50, 11);
        }
        b.iter(|| {
            let cp = hs.checkpoint();
            hs.restore(black_box(&cp));
        });
    });
    group.finish();
}

criterion_group!(benches, imli_components, tage_lookup, history_ops);
criterion_main!(benches);
