//! The simulator throughput benchmark behind `bp bench --sim`.
//!
//! Two legs:
//!
//! * **predictor throughput** — one representative configuration per
//!   family (plus the flagship TAGE-SC-L ladder) simulated over a
//!   pre-materialized in-memory trace, `reps` timed repetitions each
//!   preceded by an untimed priming pass (cold predictor, hot input —
//!   the condition the baseline figures were measured under), reported
//!   as min/median/p90 wall time (the min
//!   is the throughput estimator: on a time-shared box every
//!   perturbation inflates the measurement, so the fastest repetition
//!   is the closest observation of the code's true cost). The
//!   repetitions are interleaved round-robin across the predictors
//!   rather than run back-to-back per predictor, so a multi-second
//!   noisy window on a shared box contaminates at most one sample of
//!   each predictor instead of every sample of one. This isolates
//!   the predict/update hot path from trace generation, so it is the
//!   number that moves when the predictors themselves get faster. When
//!   a baseline report is supplied, per-predictor speedups are embedded
//!   — and because the baseline figures were produced by the *same*
//!   min-of-N estimator, a speedup below 1.0 means a real regression,
//!   not one unlucky timing draw.
//! * **per-phase breakdown & pipeline-distance sweep** — alongside each
//!   throughput figure the index-generation front end is timed alone
//!   (`run_block_frontend`: index-input advance, plan fill, prefetch
//!   issue), the gather/commit/bookkeeping remainder derived as the rest
//!   of the pipelined wall time, and the scalar reference drive timed
//!   directly; a depth sweep on the flagship TAGE-SC-L+IMLI measures the
//!   pipelined drive at depths 4–64, so the committed artifact records
//!   both *where* the pipelined win comes from and *why* the default
//!   pipeline depth is what it is.
//! * **grid scheduling** — the full 12×8 paper-report grid
//!   ([`bp_sim::paper_report_predictors`] × `paper_suite`) run once
//!   per-cell and once with fused benchmark columns
//!   ([`bp_sim::GridStrategy`]), wall-clocked end to end. The two
//!   [`bp_sim::GridResult`]s are compared cell-for-cell; a mismatch
//!   fails the bench, so every `bp bench --sim` run re-proves the fused
//!   engine bit-identical.
//! * **result cache** (optional, `bp bench --sim --cache`) — the same
//!   paper grid run uncached, cold-cache (store cleared before every
//!   repetition, every cell computed and written back), and warm-cache
//!   (store primed, every cell a verified hit), each `reps` timed
//!   repetitions summarized min-of-N. The warm grid is compared
//!   cell-for-cell against the uncached grid and the warm hit counter
//!   against the cell count, so the committed speedup figure carries
//!   its own bit-identity proof.
//!
//! The report serializes to `BENCH_sim.json`, the simulator's
//! performance-trajectory artifact (sibling of `BENCH_trace_io.json`).

use crate::trace_bench::{json_f64, json_string};
use bp_components::ConditionalPredictor;
use bp_sim::{
    lookup, paper_report_predictors, simulate, simulate_mode, CachePolicy, DriveMode, Engine,
    GridStrategy, SimCache,
};
use bp_workloads::{cbp4_suite, generate, paper_suite};
use std::path::Path;
// bp-lint: allow(determinism, "wall-clock timing is the measurand of a throughput bench; timing fields are excluded from CI's byte-comparison")
use std::time::Instant;

/// Default throughput-leg repetitions (`bp bench --sim --reps` overrides).
pub const DEFAULT_REPS: usize = 5;

/// Order statistics over the per-repetition wall times of one
/// measurement: the minimum (the throughput estimator), the median, and
/// the nearest-rank 90th percentile (the noise witnesses — a p90 far
/// above the min means the box was contended and the min is doing its
/// job).
#[derive(Debug, Clone, PartialEq)]
pub struct RepStats {
    /// Number of timed repetitions summarized.
    pub reps: usize,
    /// Fastest repetition, seconds.
    pub min_seconds: f64,
    /// Median repetition (upper median for even `reps`), seconds.
    pub median_seconds: f64,
    /// Nearest-rank 90th-percentile repetition, seconds.
    pub p90_seconds: f64,
}

impl RepStats {
    /// Summarizes one measurement's repetition times.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-finite sample.
    pub fn from_times(mut times: Vec<f64>) -> RepStats {
        assert!(!times.is_empty(), "need at least one repetition");
        assert!(times.iter().all(|t| t.is_finite()), "non-finite rep time");
        times.sort_by(f64::total_cmp);
        let n = times.len();
        // Nearest-rank percentile: the smallest sample with at least
        // 90 % of the distribution at or below it.
        let p90_rank = (n * 9).div_ceil(10);
        RepStats {
            reps: n,
            min_seconds: times[0],
            median_seconds: times[n / 2],
            p90_seconds: times[p90_rank - 1],
        }
    }
}

/// Process memory footprint note, read from procfs on Linux (`None`
/// elsewhere): peak resident set plus cumulative page-fault counters.
/// Reported alongside the throughput leg so an accidental
/// working-set blowup (or a page-fault storm from fresh allocations on
/// the hot path) shows up in the committed artifact, not just in
/// wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryNote {
    /// Peak resident set size (`VmHWM`), KiB.
    pub peak_rss_kib: u64,
    /// Minor page faults of the process so far.
    pub minor_faults: u64,
    /// Major page faults of the process so far.
    pub major_faults: u64,
}

/// Reads the current process's [`MemoryNote`]. Linux-only by
/// construction (procfs); returns `None` on other platforms or if the
/// procfs files are unreadable or unparseable.
pub fn memory_note() -> Option<MemoryNote> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let peak_rss_kib = status
            .lines()
            .find(|l| l.starts_with("VmHWM:"))?
            .split_ascii_whitespace()
            .nth(1)?
            .parse()
            .ok()?;
        // /proc/self/stat: the comm field may contain spaces, so split
        // after its closing paren; minflt and majflt are then the 8th
        // and 10th of the remaining fields (man proc: fields 10 and 12).
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        let rest = &stat[stat.rfind(')')? + 1..];
        let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
        Some(MemoryNote {
            peak_rss_kib,
            minor_faults: fields.get(7)?.parse().ok()?,
            major_faults: fields.get(9)?.parse().ok()?,
        })
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// The registry configurations measured by the throughput leg: the
/// calibration baselines, one host per family, and the TAGE ladder up
/// to the flagship TAGE-SC-L(+IMLI).
pub const THROUGHPUT_PREDICTORS: [&str; 10] = [
    "bimodal",
    "gshare",
    "perceptron",
    "perceptron+imli",
    "gehl",
    "gehl+imli",
    "tage-gsc",
    "tage-gsc+imli",
    "tage-sc-l",
    "tage-sc-l+imli",
];

/// Per-phase wall-time decomposition of one predictor's pipelined
/// drive, measured alongside the headline throughput.
///
/// The front end is measured directly: `run_block_frontend` replays the
/// trace through the index-generation pass alone (index-input advance +
/// plan fill + prefetch, no gathers, no training). The commit side — counter
/// gathers, prediction resolution, bookkeeping, and training — is the
/// remainder of the pipelined wall time, since the two passes partition
/// the block drive. The scalar reference drive is measured directly as
/// well, so the artifact records where the pipelined mode's win (or
/// loss) comes from per predictor.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Min-of-N wall seconds of the index-generation front end alone.
    pub frontend_seconds: f64,
    /// Gather/commit/bookkeeping remainder: pipelined min wall time
    /// minus the front-end time (clamped at zero — on a noisy box the
    /// two independent minima can cross for trivial predictors).
    pub commit_seconds: f64,
    /// Min-of-N wall seconds of the scalar reference drive
    /// ([`DriveMode::Scalar`]) over the same trace.
    pub scalar_seconds: f64,
}

/// Measured simulate-path throughput of one predictor configuration.
#[derive(Debug, Clone)]
pub struct PredictorThroughput {
    /// Registry name.
    pub name: String,
    /// Host family label.
    pub family: String,
    /// Branch records in the measured trace.
    pub records: u64,
    /// Wall-time order statistics over the timed repetitions.
    pub stats: RepStats,
    /// Records per second of the fastest repetition (the min-of-N
    /// throughput estimator).
    pub records_per_sec: f64,
    /// Per-phase decomposition of the pipelined drive, plus the scalar
    /// reference time.
    pub phases: PhaseBreakdown,
    /// The same figure from the supplied baseline report, if any.
    pub baseline_records_per_sec: Option<f64>,
}

impl PredictorThroughput {
    /// Throughput relative to the baseline (`None` without a baseline
    /// or for a degenerate baseline measurement).
    pub fn speedup(&self) -> Option<f64> {
        let base = self.baseline_records_per_sec?;
        (base > 0.0).then(|| self.records_per_sec / base)
    }

    /// Scalar wall time over pipelined wall time (> 1 means the
    /// pipelined drive won on this predictor).
    pub fn pipelined_speedup(&self) -> f64 {
        if self.stats.min_seconds <= 0.0 {
            return 0.0;
        }
        self.phases.scalar_seconds / self.stats.min_seconds
    }
}

/// One measured point of the pipeline-distance sweep.
#[derive(Debug, Clone)]
pub struct DepthSweepPoint {
    /// Pipeline depth (`set_pipeline_depth`) of this measurement.
    pub depth: usize,
    /// Min-of-N records/sec of the pipelined drive at this depth.
    pub records_per_sec: f64,
}

/// The pipeline-distance sweep on the flagship configuration: the same
/// trace driven pipelined at each candidate depth, so the committed
/// artifact records why `DEFAULT_PIPELINE_DEPTH` is what it is.
#[derive(Debug, Clone)]
pub struct DepthSweep {
    /// Registry name the sweep drives (the flagship TAGE-SC-L+IMLI).
    pub predictor: String,
    /// Measured throughput per candidate depth, in sweep order.
    pub points: Vec<DepthSweepPoint>,
}

impl DepthSweep {
    /// The depth of the fastest measured point.
    pub fn best_depth(&self) -> Option<usize> {
        self.points
            .iter()
            .max_by(|a, b| a.records_per_sec.total_cmp(&b.records_per_sec))
            .map(|p| p.depth)
    }
}

/// Wall-clock comparison of the two grid scheduling strategies on the
/// paper-report grid.
#[derive(Debug, Clone)]
pub struct GridLeg {
    /// Predictor rows in the grid.
    pub predictors: usize,
    /// Benchmark columns in the grid.
    pub benchmarks: usize,
    /// Instructions per benchmark.
    pub instructions: u64,
    /// Engine worker count used for both runs.
    pub jobs: usize,
    /// Wall seconds of the per-cell run.
    pub per_cell_seconds: f64,
    /// Wall seconds of the fused-columns run.
    pub fused_seconds: f64,
    /// Whether the two [`bp_sim::GridResult`]s compared equal
    /// cell-for-cell (they must; `false` means a fused-engine bug).
    pub fused_matches_per_cell: bool,
}

impl GridLeg {
    /// Per-cell wall time over fused wall time (> 1 means fusing won).
    pub fn fused_speedup(&self) -> f64 {
        if self.fused_seconds <= 0.0 {
            return 0.0;
        }
        self.per_cell_seconds / self.fused_seconds
    }
}

/// Wall-clock comparison of uncached vs cold-cache vs warm-cache runs
/// of the paper-report grid (the `--cache` leg of `bp bench --sim`).
///
/// *Cold* pays the cache's worst case: every cell is computed and an
/// entry written back. *Warm* is the payoff: every cell is a verified
/// hit and zero predictor records execute. The three measurements use
/// the same min-of-N estimator as the throughput leg.
#[derive(Debug, Clone)]
pub struct CacheLeg {
    /// Cells in the grid (predictors × benchmarks).
    pub cells: usize,
    /// Instructions per benchmark.
    pub instructions: u64,
    /// Engine worker count used for all three measurements.
    pub jobs: usize,
    /// Wall-time order statistics of the uncached runs.
    pub uncached: RepStats,
    /// Wall-time order statistics of the cold-cache runs (store cleared
    /// before each repetition, so every cell computes and stores).
    pub cold: RepStats,
    /// Wall-time order statistics of the warm-cache runs (store primed,
    /// so every cell is a verified hit).
    pub warm: RepStats,
    /// Verified hits of the last warm repetition (must equal `cells`).
    pub warm_hits: u64,
    /// Whether the warm-cache [`bp_sim::GridResult`] compared equal
    /// cell-for-cell to the uncached one (it must; `false` means the
    /// cache changed simulation results).
    pub warm_matches_uncached: bool,
}

impl CacheLeg {
    /// Uncached wall time over warm-cache wall time, min-of-N both
    /// sides — the headline figure for "repeated simulation costs one
    /// hash lookup".
    pub fn warm_speedup(&self) -> f64 {
        if self.warm.min_seconds <= 0.0 {
            return 0.0;
        }
        self.uncached.min_seconds / self.warm.min_seconds
    }

    /// Cold-cache wall time over uncached wall time — the write-back
    /// overhead a first run pays to make every later run free.
    pub fn cold_overhead(&self) -> f64 {
        if self.uncached.min_seconds <= 0.0 {
            return 0.0;
        }
        self.cold.min_seconds / self.uncached.min_seconds
    }
}

/// The full `bp bench --sim` report.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Instruction budget of the throughput-leg trace.
    pub instructions: u64,
    /// Benchmark the throughput leg simulates.
    pub benchmark: String,
    /// Timed repetitions per predictor (after one warmup pass).
    pub reps: usize,
    /// Process memory footprint after the throughput leg, when
    /// available (Linux procfs).
    pub memory: Option<MemoryNote>,
    /// Per-configuration throughput measurements.
    pub predictors: Vec<PredictorThroughput>,
    /// The pipeline-distance sweep on the flagship configuration.
    pub depth_sweep: DepthSweep,
    /// The per-cell vs fused grid comparison.
    pub grid: GridLeg,
    /// The uncached vs cold vs warm result-cache comparison, when the
    /// bench was invoked with a cache scratch directory.
    pub cache: Option<CacheLeg>,
}

impl SimBenchReport {
    /// The throughput entry for one registry name.
    pub fn throughput(&self, name: &str) -> Option<&PredictorThroughput> {
        self.predictors.iter().find(|p| p.name == name)
    }

    /// Serializes the report as pretty-printed JSON. Each predictor
    /// object occupies exactly one line — the format
    /// [`parse_predictor_throughputs`] relies on when a later run
    /// embeds this report as its baseline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"sim\",\n");
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str(&format!(
            "  \"benchmark\": {},\n",
            json_string(&self.benchmark)
        ));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        if let Some(m) = &self.memory {
            out.push_str(&format!(
                "  \"memory\": {{\"peak_rss_kib\": {}, \"minor_faults\": {}, \
                 \"major_faults\": {}}},\n",
                m.peak_rss_kib, m.minor_faults, m.major_faults,
            ));
        }
        out.push_str("  \"predictors\": [\n");
        for (i, p) in self.predictors.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"family\": {}, \"records\": {}, \"reps\": {}, \
                 \"min_seconds\": {}, \"median_seconds\": {}, \"p90_seconds\": {}, \
                 \"records_per_sec\": {}, \"frontend_seconds\": {}, \"commit_seconds\": {}, \
                 \"scalar_seconds\": {}, \"pipelined_speedup\": {}",
                json_string(&p.name),
                json_string(&p.family),
                p.records,
                p.stats.reps,
                json_f64(p.stats.min_seconds),
                json_f64(p.stats.median_seconds),
                json_f64(p.stats.p90_seconds),
                json_f64(p.records_per_sec),
                json_f64(p.phases.frontend_seconds),
                json_f64(p.phases.commit_seconds),
                json_f64(p.phases.scalar_seconds),
                json_f64(p.pipelined_speedup()),
            ));
            if let Some(base) = p.baseline_records_per_sec {
                out.push_str(&format!(
                    ", \"baseline_records_per_sec\": {}, \"speedup\": {}",
                    json_f64(base),
                    json_f64(p.speedup().unwrap_or(0.0)),
                ));
            }
            out.push_str(if i + 1 < self.predictors.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("  ],\n");
        // The sweep object deliberately uses a "predictor" key (never
        // "name") so [`parse_predictor_throughputs`]'s line scan cannot
        // mistake a sweep point for a predictor entry.
        out.push_str(&format!(
            "  \"depth_sweep\": {{\"predictor\": {}, \"points\": [{}]}},\n",
            json_string(&self.depth_sweep.predictor),
            self.depth_sweep
                .points
                .iter()
                .map(|p| format!(
                    "{{\"depth\": {}, \"rate\": {}}}",
                    p.depth,
                    json_f64(p.records_per_sec)
                ))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        let g = &self.grid;
        out.push_str(&format!(
            "  \"grid\": {{\"predictors\": {}, \"benchmarks\": {}, \"instructions\": {}, \
             \"jobs\": {},\n           \"per_cell_seconds\": {}, \"fused_seconds\": {}, \
             \"fused_speedup\": {}, \"fused_matches_per_cell\": {}}}{}\n",
            g.predictors,
            g.benchmarks,
            g.instructions,
            g.jobs,
            json_f64(g.per_cell_seconds),
            json_f64(g.fused_seconds),
            json_f64(g.fused_speedup()),
            g.fused_matches_per_cell,
            if self.cache.is_some() { "," } else { "" },
        ));
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "  \"cache\": {{\"cells\": {}, \"instructions\": {}, \"jobs\": {}, \
                 \"reps\": {},\n            \"uncached_seconds\": {}, \"cold_seconds\": {}, \
                 \"warm_seconds\": {},\n            \"cold_overhead\": {}, \
                 \"warm_speedup\": {}, \"warm_hits\": {}, \
                 \"warm_matches_uncached\": {}}}\n",
                c.cells,
                c.instructions,
                c.jobs,
                c.uncached.reps,
                json_f64(c.uncached.min_seconds),
                json_f64(c.cold.min_seconds),
                json_f64(c.warm.min_seconds),
                json_f64(c.cold_overhead()),
                json_f64(c.warm_speedup()),
                c.warm_hits,
                c.warm_matches_uncached,
            ));
        }
        out.push('}');
        out.push('\n');
        out
    }
}

/// Extracts `(name, records_per_sec)` pairs from a previously emitted
/// [`SimBenchReport::to_json`] document (the workspace has no JSON
/// parser; the emitter keeps each predictor object on one line exactly
/// so this scan stays trivial).
pub fn parse_predictor_throughputs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(rate) = field_f64(line, "\"records_per_sec\": ") else {
            continue;
        };
        out.push((name.to_owned(), rate));
    }
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

// bp-lint: allow-item(determinism, "wall-clock timing is the measurand of a throughput bench; timing fields are excluded from CI's byte-comparison")
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed().as_secs_f64())
}

/// Runs the simulator benchmark: the throughput leg at `instructions`
/// retired instructions with `reps` timed repetitions per predictor
/// (after one unmeasured warmup pass), the grid leg at
/// `grid_instructions` per benchmark. `baseline` maps registry names to
/// a previous run's records/sec (see [`parse_predictor_throughputs`]);
/// pass `&[]` for a standalone run. `cache_dir`, when supplied, adds
/// the result-cache leg ([`CacheLeg`]) using that directory as the
/// cache store — the directory is **cleared** before every cold
/// repetition, so pass a scratch path, never a cache you want to keep.
///
/// # Panics
///
/// Panics if `reps` is zero; if the fused grid does not match the
/// per-cell grid cell-for-cell; or if the warm-cache grid does not
/// match the uncached grid — either mismatch would mean scheduling
/// changes simulation results, and no benchmark number is worth
/// reporting past that.
pub fn run_sim_bench(
    instructions: u64,
    grid_instructions: u64,
    reps: usize,
    baseline: &[(String, f64)],
    cache_dir: Option<&Path>,
) -> SimBenchReport {
    assert!(reps > 0, "need at least one repetition");
    // Throughput leg: pre-materialize the trace so the measurement is
    // the simulate path alone, not generation.
    let spec = &cbp4_suite()[0];
    let trace = generate(spec, instructions);
    let records = trace.len() as u64;
    // Timed rounds, *rep-major*: round-robin over the predictors,
    // `reps` rounds. Measuring one predictor's repetitions
    // back-to-back looks natural but correlates all of its samples in
    // time — on a shared box a few seconds of interference then lands
    // in every sample of whichever predictor it overlapped, and no
    // order statistic can recover the true floor. Interleaving spreads
    // each predictor's samples across the whole leg, so a noisy window
    // costs at most one sample per predictor and min-of-N still finds
    // a quiet one.
    //
    // Every timed sample is immediately preceded by an *untimed
    // priming pass* of the same predictor (a separate fresh instance).
    // The priming pass re-warms the trace pages, the allocator's reuse
    // pattern for this predictor's tables, and the drive loop's
    // branch-target state — so each timed pass measures the defined
    // condition "cold predictor, hot input", independent of which
    // predictor happened to run before it in the round-robin order.
    // Without it the interleaving itself perturbs the fastest
    // predictors: a few ns/record of neighbour-induced cache noise is
    // invisible on a 140 ns/record TAGE-SC-L pass but is a double-digit
    // artifact on a 6 ns/record bimodal pass.
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); THROUGHPUT_PREDICTORS.len()];
    let mut frontend_times = times.clone();
    let mut scalar_times = times.clone();
    // The simulator's block size: the front-end probe replays the trace
    // in the same slices the pipelined drive sees.
    const BLOCK: usize = 4096;
    for _ in 0..reps {
        for (i, name) in THROUGHPUT_PREDICTORS.iter().enumerate() {
            let reg = lookup(name).expect("throughput predictors are registered");
            {
                let mut prime = reg.make();
                let _ = simulate(prime.as_mut(), &trace);
            }
            // A fresh cold predictor per rep: the CBP protocol, and the
            // same cost a grid cell pays. `simulate` is the pipelined
            // drive — this is the headline figure.
            let mut p = reg.make();
            let ((), seconds) = timed(|| {
                let _ = simulate(p.as_mut(), &trace);
            });
            times[i].push(seconds);

            // Phase probe: the index-generation front end alone
            // (index-input advance, plan fill, prefetch issue — no
            // gathers, no training), on a throwaway instance in
            // simulator-sized blocks.
            let mut fe = reg.make();
            let ((), seconds) = timed(|| {
                for block in trace.records().chunks(BLOCK) {
                    fe.run_block_frontend(block);
                }
            });
            frontend_times[i].push(seconds);

            // The scalar reference drive, for the per-predictor
            // pipelined-vs-scalar figure.
            let mut sc = reg.make();
            let ((), seconds) = timed(|| {
                let _ = simulate_mode(sc.as_mut(), &trace, DriveMode::Scalar);
            });
            scalar_times[i].push(seconds);
        }
    }
    let mut predictors = Vec::with_capacity(THROUGHPUT_PREDICTORS.len());
    for (i, name) in THROUGHPUT_PREDICTORS.iter().enumerate() {
        let reg = lookup(name).expect("throughput predictors are registered");
        let stats = RepStats::from_times(times[i].clone());
        let best = stats.min_seconds;
        let frontend_seconds = RepStats::from_times(frontend_times[i].clone()).min_seconds;
        let scalar_seconds = RepStats::from_times(scalar_times[i].clone()).min_seconds;
        predictors.push(PredictorThroughput {
            name: (*name).to_owned(),
            family: reg.family.to_string(),
            records,
            records_per_sec: if best > 0.0 {
                records as f64 / best
            } else {
                0.0
            },
            phases: PhaseBreakdown {
                frontend_seconds,
                commit_seconds: (best - frontend_seconds).max(0.0),
                scalar_seconds,
            },
            stats,
            baseline_records_per_sec: baseline
                .iter()
                .find(|(n, _)| n == *name)
                .map(|&(_, rate)| rate),
        });
    }
    let memory = memory_note();

    // Pipeline-distance sweep on the flagship: the same trace driven
    // pipelined at each candidate depth, best of two passes per point
    // (repeats only smooth scheduling noise on a deterministic drive).
    // The committed points justify `DEFAULT_PIPELINE_DEPTH`.
    let sweep_name = "tage-sc-l+imli";
    let sweep_reg = lookup(sweep_name).expect("flagship is registered");
    let mut sweep_points = Vec::new();
    for depth in [4usize, 8, 16, 32, 64] {
        let mut point_times = Vec::with_capacity(2);
        for _ in 0..2 {
            let mut p = sweep_reg.make();
            p.set_pipeline_depth(depth);
            let ((), seconds) = timed(|| {
                let _ = simulate(p.as_mut(), &trace);
            });
            point_times.push(seconds);
        }
        let best = RepStats::from_times(point_times).min_seconds;
        sweep_points.push(DepthSweepPoint {
            depth,
            records_per_sec: if best > 0.0 {
                records as f64 / best
            } else {
                0.0
            },
        });
    }
    let depth_sweep = DepthSweep {
        predictor: sweep_name.to_owned(),
        points: sweep_points,
    };

    // Grid leg: the 12×8 paper-report grid, per-cell vs fused columns,
    // best of two passes each (both strategies are deterministic, so
    // repeats only smooth scheduling noise).
    let grid_predictors = paper_report_predictors();
    let benchmarks = paper_suite();
    let jobs = Engine::new().jobs();
    let run_grid_leg = |strategy: GridStrategy| {
        let mut best: Option<(bp_sim::GridResult, f64)> = None;
        for _ in 0..2 {
            let (grid, seconds) = timed(|| {
                Engine::with_jobs(jobs).with_strategy(strategy).run_grid(
                    &grid_predictors,
                    &benchmarks,
                    grid_instructions,
                )
            });
            if best.as_ref().is_none_or(|(_, s)| seconds < *s) {
                best = Some((grid, seconds));
            }
        }
        best.expect("at least one grid pass")
    };
    let (per_cell_grid, per_cell_seconds) = run_grid_leg(GridStrategy::PerCell);
    let (fused_grid, fused_seconds) = run_grid_leg(GridStrategy::FusedColumns);
    let fused_matches_per_cell = per_cell_grid == fused_grid;
    assert!(
        fused_matches_per_cell,
        "fused grid diverged from the per-cell grid"
    );

    // Result-cache leg: the same paper grid uncached / cold / warm,
    // rep-major interleaved for the same reason as the throughput leg.
    // Cold clears the store first (every cell computes + stores); warm
    // reuses the entries the cold pass just wrote (every cell hits).
    let cache = cache_dir.map(|dir| {
        let cells = grid_predictors.len() * benchmarks.len();
        let run_cached = |cache: Option<SimCache>| {
            let engine = Engine::with_jobs(jobs).with_cache(cache);
            timed(|| engine.run_grid(&grid_predictors, &benchmarks, grid_instructions))
        };
        let mut uncached_times = Vec::with_capacity(reps);
        let mut cold_times = Vec::with_capacity(reps);
        let mut warm_times = Vec::with_capacity(reps);
        let mut uncached_grid = None;
        let mut warm_outcome = None;
        for _ in 0..reps {
            let (grid, seconds) = run_cached(None);
            uncached_times.push(seconds);
            uncached_grid = Some(grid);

            let cold = SimCache::new(dir, CachePolicy::ReadWrite);
            cold.store().clear();
            let (_, seconds) = run_cached(Some(cold));
            cold_times.push(seconds);

            let warm = SimCache::new(dir, CachePolicy::ReadWrite);
            let (grid, seconds) = run_cached(Some(warm.clone()));
            warm_times.push(seconds);
            warm_outcome = Some((grid, warm.hits()));
        }
        let (warm_grid, warm_hits) = warm_outcome.expect("at least one warm repetition");
        let warm_matches_uncached = uncached_grid.as_ref() == Some(&warm_grid);
        assert!(
            warm_matches_uncached,
            "warm-cache grid diverged from the uncached grid"
        );
        assert_eq!(warm_hits as usize, cells, "warm run must hit every cell");
        CacheLeg {
            cells,
            instructions: grid_instructions,
            jobs,
            uncached: RepStats::from_times(uncached_times),
            cold: RepStats::from_times(cold_times),
            warm: RepStats::from_times(warm_times),
            warm_hits,
            warm_matches_uncached,
        }
    });

    SimBenchReport {
        instructions,
        benchmark: spec.name.clone(),
        reps,
        memory,
        predictors,
        depth_sweep,
        grid: GridLeg {
            predictors: grid_predictors.len(),
            benchmarks: benchmarks.len(),
            instructions: grid_instructions,
            jobs,
            per_cell_seconds,
            fused_seconds,
            fused_matches_per_cell,
        },
        cache,
    }
}

/// The throughput regressions in `report` relative to its embedded
/// baselines: every predictor whose min-of-N records/sec fell below
/// `1 - tolerance_pct/100` of its baseline figure, as
/// `(name, speedup)` pairs. Empty when nothing regressed (or no
/// baseline was supplied). This is the CI regression gate's verdict —
/// the tolerance absorbs residual run-to-run noise that even the
/// min-of-N estimator cannot fully cancel on a shared box.
pub fn throughput_regressions(report: &SimBenchReport, tolerance_pct: f64) -> Vec<(String, f64)> {
    let floor = 1.0 - tolerance_pct / 100.0;
    report
        .predictors
        .iter()
        .filter_map(|p| p.speedup().map(|s| (p.name.clone(), s)))
        .filter(|&(_, s)| s < floor)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_the_json() {
        let report = run_sim_bench_tiny();
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sim\""));
        assert!(json.contains("\"reps\": 2"));
        assert!(json.contains("\"min_seconds\""));
        assert!(json.contains("\"median_seconds\""));
        assert!(json.contains("\"p90_seconds\""));
        assert!(json.contains("\"fused_matches_per_cell\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let parsed = parse_predictor_throughputs(&json);
        assert_eq!(parsed.len(), THROUGHPUT_PREDICTORS.len());
        for ((name, rate), p) in parsed.iter().zip(&report.predictors) {
            assert_eq!(name, &p.name);
            assert!(*rate > 0.0);
            assert!(p.stats.min_seconds <= p.stats.median_seconds);
            assert!(p.stats.median_seconds <= p.stats.p90_seconds);
            // The phase partition: front end + commit remainder cover
            // the pipelined wall time; both probes actually ran.
            assert!(p.phases.frontend_seconds > 0.0);
            assert!(p.phases.scalar_seconds > 0.0);
            let sum = p.phases.frontend_seconds + p.phases.commit_seconds;
            assert!(sum >= p.stats.min_seconds - 1e-12);
        }
        assert!(json.contains("\"frontend_seconds\""));
        assert!(json.contains("\"pipelined_speedup\""));

        // The depth sweep covers the documented candidate ladder and
        // its line must not confuse the baseline scanner (checked via
        // the parsed count above).
        assert!(json.contains("\"depth_sweep\""));
        assert_eq!(
            report
                .depth_sweep
                .points
                .iter()
                .map(|p| p.depth)
                .collect::<Vec<_>>(),
            vec![4, 8, 16, 32, 64]
        );
        assert!(report
            .depth_sweep
            .points
            .iter()
            .all(|p| p.records_per_sec > 0.0));
        assert!(report.depth_sweep.best_depth().is_some());

        // A second run against the first as baseline embeds speedups.
        let rerun = run_sim_bench(5_000, 3_000, 2, &parsed, None);
        let flagship = rerun.throughput("tage-sc-l").expect("measured");
        assert!(flagship.baseline_records_per_sec.is_some());
        assert!(flagship.speedup().is_some());
        assert!(rerun.to_json().contains("\"speedup\""));

        // The regression gate: nothing regresses against an impossibly
        // slow baseline; everything regresses against an impossibly
        // fast one.
        let slow: Vec<(String, f64)> = parsed.iter().map(|(n, _)| (n.clone(), 1e-6)).collect();
        let fast: Vec<(String, f64)> = parsed.iter().map(|(n, _)| (n.clone(), 1e15)).collect();
        let vs_slow = run_sim_bench(5_000, 3_000, 1, &slow, None);
        assert!(throughput_regressions(&vs_slow, 20.0).is_empty());
        let vs_fast = run_sim_bench(5_000, 3_000, 1, &fast, None);
        assert_eq!(
            throughput_regressions(&vs_fast, 20.0).len(),
            THROUGHPUT_PREDICTORS.len()
        );
    }

    fn run_sim_bench_tiny() -> SimBenchReport {
        run_sim_bench(5_000, 3_000, 2, &[], None)
    }

    #[test]
    fn cache_leg_measures_and_verifies_the_warm_grid() {
        let dir = std::env::temp_dir().join(format!("bp-sim-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_sim_bench(5_000, 3_000, 2, &[], Some(&dir));
        let leg = report.cache.as_ref().expect("cache leg requested");
        assert_eq!(leg.cells, report.grid.predictors * report.grid.benchmarks);
        assert_eq!(leg.warm_hits as usize, leg.cells);
        assert!(leg.warm_matches_uncached);
        assert_eq!(leg.uncached.reps, 2);
        assert!(leg.warm.min_seconds > 0.0);
        assert!(leg.warm_speedup() > 0.0);
        assert!(leg.cold_overhead() > 0.0);

        let json = report.to_json();
        assert!(json.contains("\"warm_speedup\""));
        assert!(json.contains("\"warm_matches_uncached\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The cache object must not confuse the baseline line-scanner.
        assert_eq!(
            parse_predictor_throughputs(&json).len(),
            THROUGHPUT_PREDICTORS.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rep_stats_order_statistics() {
        let s = RepStats::from_times(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.reps, 3);
        assert_eq!(s.min_seconds, 1.0);
        assert_eq!(s.median_seconds, 2.0);
        assert_eq!(s.p90_seconds, 3.0);

        // Even count: upper median; nearest-rank p90 of 10 samples is
        // the 9th order statistic.
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = RepStats::from_times(ten);
        assert_eq!(s.median_seconds, 6.0);
        assert_eq!(s.p90_seconds, 9.0);

        let one = RepStats::from_times(vec![0.5]);
        assert_eq!(
            (one.min_seconds, one.median_seconds, one.p90_seconds),
            (0.5, 0.5, 0.5)
        );
    }

    #[test]
    fn memory_note_reads_procfs_on_linux() {
        let note = memory_note();
        if cfg!(target_os = "linux") {
            let note = note.expect("procfs note on Linux");
            assert!(note.peak_rss_kib > 0);
            // Touching fresh pages must show up as faults.
            assert!(note.minor_faults > 0);
        } else {
            assert!(note.is_none());
        }
    }

    #[test]
    fn field_scanners_handle_edges() {
        assert_eq!(
            field_str("x \"name\": \"abc\",", "\"name\": \""),
            Some("abc")
        );
        assert_eq!(field_str("no name here", "\"name\": \""), None);
        assert_eq!(
            field_f64("\"records_per_sec\": 123.5, ...", "\"records_per_sec\": "),
            Some(123.5)
        );
        assert_eq!(
            field_f64("\"records_per_sec\": 99}", "\"records_per_sec\": "),
            Some(99.0)
        );
        assert_eq!(field_f64("nope", "\"records_per_sec\": "), None);
        assert!(parse_predictor_throughputs("{}").is_empty());
    }
}
