//! The simulator throughput benchmark behind `bp bench --sim`.
//!
//! Two legs:
//!
//! * **predictor throughput** — one representative configuration per
//!   family (plus the flagship TAGE-SC-L ladder) simulated over a
//!   pre-materialized in-memory trace, best-of-3 wall time. This
//!   isolates the predict/update hot path from trace generation, so it
//!   is the number that moves when the predictors themselves get
//!   faster. When a baseline report is supplied, per-predictor speedups
//!   are embedded — this is how `BENCH_sim.json` records the
//!   before/after of the zero-allocation hot-path work.
//! * **grid scheduling** — the full 12×8 paper-report grid
//!   ([`bp_sim::paper_report_predictors`] × `paper_suite`) run once
//!   per-cell and once with fused benchmark columns
//!   ([`bp_sim::GridStrategy`]), wall-clocked end to end. The two
//!   [`bp_sim::GridResult`]s are compared cell-for-cell; a mismatch
//!   fails the bench, so every `bp bench --sim` run re-proves the fused
//!   engine bit-identical.
//!
//! The report serializes to `BENCH_sim.json`, the simulator's
//! performance-trajectory artifact (sibling of `BENCH_trace_io.json`).

use crate::trace_bench::{json_f64, json_string};
use bp_sim::{lookup, paper_report_predictors, simulate, Engine, GridStrategy};
use bp_workloads::{cbp4_suite, generate, paper_suite};
use std::time::Instant;

/// Throughput-leg repetitions; the minimum is reported.
const REPS: usize = 3;

/// The registry configurations measured by the throughput leg: the
/// calibration baselines, one host per family, and the TAGE ladder up
/// to the flagship TAGE-SC-L(+IMLI).
pub const THROUGHPUT_PREDICTORS: [&str; 10] = [
    "bimodal",
    "gshare",
    "perceptron",
    "perceptron+imli",
    "gehl",
    "gehl+imli",
    "tage-gsc",
    "tage-gsc+imli",
    "tage-sc-l",
    "tage-sc-l+imli",
];

/// Measured simulate-path throughput of one predictor configuration.
#[derive(Debug, Clone)]
pub struct PredictorThroughput {
    /// Registry name.
    pub name: String,
    /// Host family label.
    pub family: String,
    /// Branch records in the measured trace.
    pub records: u64,
    /// Best-of-3 seconds for one cold simulate pass.
    pub seconds: f64,
    /// Records per second of the best pass.
    pub records_per_sec: f64,
    /// The same figure from the supplied baseline report, if any.
    pub baseline_records_per_sec: Option<f64>,
}

impl PredictorThroughput {
    /// Throughput relative to the baseline (`None` without a baseline
    /// or for a degenerate baseline measurement).
    pub fn speedup(&self) -> Option<f64> {
        let base = self.baseline_records_per_sec?;
        (base > 0.0).then(|| self.records_per_sec / base)
    }
}

/// Wall-clock comparison of the two grid scheduling strategies on the
/// paper-report grid.
#[derive(Debug, Clone)]
pub struct GridLeg {
    /// Predictor rows in the grid.
    pub predictors: usize,
    /// Benchmark columns in the grid.
    pub benchmarks: usize,
    /// Instructions per benchmark.
    pub instructions: u64,
    /// Engine worker count used for both runs.
    pub jobs: usize,
    /// Wall seconds of the per-cell run.
    pub per_cell_seconds: f64,
    /// Wall seconds of the fused-columns run.
    pub fused_seconds: f64,
    /// Whether the two [`bp_sim::GridResult`]s compared equal
    /// cell-for-cell (they must; `false` means a fused-engine bug).
    pub fused_matches_per_cell: bool,
}

impl GridLeg {
    /// Per-cell wall time over fused wall time (> 1 means fusing won).
    pub fn fused_speedup(&self) -> f64 {
        if self.fused_seconds <= 0.0 {
            return 0.0;
        }
        self.per_cell_seconds / self.fused_seconds
    }
}

/// The full `bp bench --sim` report.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Instruction budget of the throughput-leg trace.
    pub instructions: u64,
    /// Benchmark the throughput leg simulates.
    pub benchmark: String,
    /// Per-configuration throughput measurements.
    pub predictors: Vec<PredictorThroughput>,
    /// The per-cell vs fused grid comparison.
    pub grid: GridLeg,
}

impl SimBenchReport {
    /// The throughput entry for one registry name.
    pub fn throughput(&self, name: &str) -> Option<&PredictorThroughput> {
        self.predictors.iter().find(|p| p.name == name)
    }

    /// Serializes the report as pretty-printed JSON. Each predictor
    /// object occupies exactly one line — the format
    /// [`parse_predictor_throughputs`] relies on when a later run
    /// embeds this report as its baseline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"sim\",\n");
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str(&format!(
            "  \"benchmark\": {},\n",
            json_string(&self.benchmark)
        ));
        out.push_str("  \"predictors\": [\n");
        for (i, p) in self.predictors.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"family\": {}, \"records\": {}, \"seconds\": {}, \
                 \"records_per_sec\": {}",
                json_string(&p.name),
                json_string(&p.family),
                p.records,
                json_f64(p.seconds),
                json_f64(p.records_per_sec),
            ));
            if let Some(base) = p.baseline_records_per_sec {
                out.push_str(&format!(
                    ", \"baseline_records_per_sec\": {}, \"speedup\": {}",
                    json_f64(base),
                    json_f64(p.speedup().unwrap_or(0.0)),
                ));
            }
            out.push_str(if i + 1 < self.predictors.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("  ],\n");
        let g = &self.grid;
        out.push_str(&format!(
            "  \"grid\": {{\"predictors\": {}, \"benchmarks\": {}, \"instructions\": {}, \
             \"jobs\": {},\n           \"per_cell_seconds\": {}, \"fused_seconds\": {}, \
             \"fused_speedup\": {}, \"fused_matches_per_cell\": {}}}\n",
            g.predictors,
            g.benchmarks,
            g.instructions,
            g.jobs,
            json_f64(g.per_cell_seconds),
            json_f64(g.fused_seconds),
            json_f64(g.fused_speedup()),
            g.fused_matches_per_cell,
        ));
        out.push('}');
        out.push('\n');
        out
    }
}

/// Extracts `(name, records_per_sec)` pairs from a previously emitted
/// [`SimBenchReport::to_json`] document (the workspace has no JSON
/// parser; the emitter keeps each predictor object on one line exactly
/// so this scan stays trivial).
pub fn parse_predictor_throughputs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(rate) = field_f64(line, "\"records_per_sec\": ") else {
            continue;
        };
        out.push((name.to_owned(), rate));
    }
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed().as_secs_f64())
}

/// Runs the simulator benchmark: the throughput leg at `instructions`
/// retired instructions, the grid leg at `grid_instructions` per
/// benchmark. `baseline` maps registry names to a previous run's
/// records/sec (see [`parse_predictor_throughputs`]); pass `&[]` for a
/// standalone run.
///
/// # Panics
///
/// Panics if the fused grid does not match the per-cell grid
/// cell-for-cell — that would mean the fused engine changes simulation
/// results, and no benchmark number is worth reporting past that.
pub fn run_sim_bench(
    instructions: u64,
    grid_instructions: u64,
    baseline: &[(String, f64)],
) -> SimBenchReport {
    // Throughput leg: pre-materialize the trace so the measurement is
    // the simulate path alone, not generation.
    let spec = &cbp4_suite()[0];
    let trace = generate(spec, instructions);
    let records = trace.len() as u64;
    let mut predictors = Vec::with_capacity(THROUGHPUT_PREDICTORS.len());
    for name in THROUGHPUT_PREDICTORS {
        let reg = lookup(name).expect("throughput predictors are registered");
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            // A fresh cold predictor per rep: the CBP protocol, and the
            // same cost a grid cell pays.
            let mut p = reg.make();
            let ((), seconds) = timed(|| {
                let _ = simulate(p.as_mut(), &trace);
            });
            best = best.min(seconds);
        }
        predictors.push(PredictorThroughput {
            name: name.to_owned(),
            family: reg.family.to_string(),
            records,
            seconds: best,
            records_per_sec: if best > 0.0 {
                records as f64 / best
            } else {
                0.0
            },
            baseline_records_per_sec: baseline
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, rate)| rate),
        });
    }

    // Grid leg: the 12×8 paper-report grid, per-cell vs fused columns,
    // best of two passes each (both strategies are deterministic, so
    // repeats only smooth scheduling noise).
    let grid_predictors = paper_report_predictors();
    let benchmarks = paper_suite();
    let jobs = Engine::new().jobs();
    let run_grid_leg = |strategy: GridStrategy| {
        let mut best: Option<(bp_sim::GridResult, f64)> = None;
        for _ in 0..2 {
            let (grid, seconds) = timed(|| {
                Engine::with_jobs(jobs).with_strategy(strategy).run_grid(
                    &grid_predictors,
                    &benchmarks,
                    grid_instructions,
                )
            });
            if best.as_ref().is_none_or(|(_, s)| seconds < *s) {
                best = Some((grid, seconds));
            }
        }
        best.expect("at least one grid pass")
    };
    let (per_cell_grid, per_cell_seconds) = run_grid_leg(GridStrategy::PerCell);
    let (fused_grid, fused_seconds) = run_grid_leg(GridStrategy::FusedColumns);
    let fused_matches_per_cell = per_cell_grid == fused_grid;
    assert!(
        fused_matches_per_cell,
        "fused grid diverged from the per-cell grid"
    );

    SimBenchReport {
        instructions,
        benchmark: spec.name.clone(),
        predictors,
        grid: GridLeg {
            predictors: grid_predictors.len(),
            benchmarks: benchmarks.len(),
            instructions: grid_instructions,
            jobs,
            per_cell_seconds,
            fused_seconds,
            fused_matches_per_cell,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_the_json() {
        let report = run_sim_bench_tiny();
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sim\""));
        assert!(json.contains("\"fused_matches_per_cell\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let parsed = parse_predictor_throughputs(&json);
        assert_eq!(parsed.len(), THROUGHPUT_PREDICTORS.len());
        for ((name, rate), p) in parsed.iter().zip(&report.predictors) {
            assert_eq!(name, &p.name);
            assert!(*rate > 0.0);
        }

        // A second run against the first as baseline embeds speedups.
        let rerun = run_sim_bench(5_000, 3_000, &parsed);
        let flagship = rerun.throughput("tage-sc-l").expect("measured");
        assert!(flagship.baseline_records_per_sec.is_some());
        assert!(flagship.speedup().is_some());
        assert!(rerun.to_json().contains("\"speedup\""));
    }

    fn run_sim_bench_tiny() -> SimBenchReport {
        run_sim_bench(5_000, 3_000, &[])
    }

    #[test]
    fn field_scanners_handle_edges() {
        assert_eq!(
            field_str("x \"name\": \"abc\",", "\"name\": \""),
            Some("abc")
        );
        assert_eq!(field_str("no name here", "\"name\": \""), None);
        assert_eq!(
            field_f64("\"records_per_sec\": 123.5, ...", "\"records_per_sec\": "),
            Some(123.5)
        );
        assert_eq!(
            field_f64("\"records_per_sec\": 99}", "\"records_per_sec\": "),
            Some(99.0)
        );
        assert_eq!(field_f64("nope", "\"records_per_sec\": "), None);
        assert!(parse_predictor_throughputs("{}").is_empty());
    }
}
