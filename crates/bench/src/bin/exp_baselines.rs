//! E-BASE (§3.2): base predictor accuracies and storage budgets.
//!
//! Paper reference points: TAGE-GSC 2.473 MPKI (CBP4) / 3.902 (CBP3) at
//! 228 Kbits; GEHL 2.864 / 4.243 at 204 Kbits. Absolute numbers differ on
//! synthetic traces; the shape to check is TAGE-GSC < GEHL on both
//! suites, with both well below the gshare/bimodal calibration
//! baselines.

use bp_bench::{both_suites, run_configs};
use bp_sim::{make_predictor, TextTable};

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    let suites = both_suites();
    let configs = ["tage-gsc", "gehl", "gshare", "bimodal"];
    let mut table = TextTable::new(vec![
        "predictor",
        "storage (Kbit)",
        "CBP4 MPKI",
        "CBP3 MPKI",
    ]);
    println!("E-BASE (§3.2): base predictors");
    println!("paper: TAGE-GSC 2.473/3.902 @228Kbit; GEHL 2.864/4.243 @204Kbit\n");
    // One engine grid per suite, all four configurations together.
    let per_suite: Vec<Vec<f64>> = suites
        .iter()
        .map(
            |(_, specs)| -> Result<Vec<f64>, bp_bench::UnknownPredictorError> {
                Ok(run_configs(&configs, specs)?
                    .iter()
                    .map(|r| r.mean_mpki())
                    .collect())
            },
        )
        .collect::<Result<_, _>>()?;
    for (i, config) in configs.iter().enumerate() {
        let storage = make_predictor(config).expect("registered").storage_bits();
        let mut cells = vec![
            (*config).to_owned(),
            format!("{:.1}", storage as f64 / 1024.0),
        ];
        for suite_means in &per_suite {
            cells.push(format!("{:.3}", suite_means[i]));
        }
        table.row(cells);
    }
    println!("{table}");
    Ok(())
}
