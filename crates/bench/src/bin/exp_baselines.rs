//! E-BASE (§3.2): base predictor accuracies and storage budgets.
//!
//! Paper reference points: TAGE-GSC 2.473 MPKI (CBP4) / 3.902 (CBP3) at
//! 228 Kbits; GEHL 2.864 / 4.243 at 204 Kbits. Absolute numbers differ on
//! synthetic traces; the shape to check is TAGE-GSC < GEHL on both
//! suites, with both well below the gshare/bimodal calibration
//! baselines.

use bp_bench::{both_suites, run_config};
use bp_sim::{make_predictor, TextTable};

fn main() {
    let suites = both_suites();
    let configs = ["tage-gsc", "gehl", "gshare", "bimodal"];
    let mut table = TextTable::new(vec![
        "predictor",
        "storage (Kbit)",
        "CBP4 MPKI",
        "CBP3 MPKI",
    ]);
    println!("E-BASE (§3.2): base predictors");
    println!("paper: TAGE-GSC 2.473/3.902 @228Kbit; GEHL 2.864/4.243 @204Kbit\n");
    for config in configs {
        let storage = make_predictor(config).expect("registered").storage_bits();
        let mut cells = vec![config.to_owned(), format!("{:.1}", storage as f64 / 1024.0)];
        for (_, specs) in &suites {
            let result = run_config(config, specs);
            cells.push(format!("{:.3}", result.mean_mpki()));
        }
        table.row(cells);
    }
    println!("{table}");
}
