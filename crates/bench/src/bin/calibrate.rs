//! Developer calibration: per-benchmark MPKI for the key configurations
//! on the planted benchmarks, to verify the reproduction *shape* (who
//! benefits from which component). Not tied to a single paper artifact;
//! used while tuning workload parameters.

use bp_bench::{instruction_budget, run_configs};
use bp_sim::TextTable;
use bp_workloads::{cbp3_suite, cbp4_suite};

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    let configs = [
        "tage-gsc",
        "tage-gsc+sic",
        "tage-gsc+oh",
        "tage-gsc+imli",
        "tage-gsc+wh",
    ];
    let focus4 = ["SPEC2K6-04", "SPEC2K6-12", "MM-4", "SPEC2K6-01"];
    let focus3 = ["CLIENT02", "MM07", "WS04", "WS03", "INT01"];
    println!("budget: {} instructions/benchmark\n", instruction_budget());

    for (label, suite, focus) in [
        ("CBP4", cbp4_suite(), &focus4[..]),
        ("CBP3", cbp3_suite(), &focus3[..]),
    ] {
        let results = run_configs(&configs, &suite)?;
        let mut table = TextTable::new(
            std::iter::once("benchmark".to_owned())
                .chain(configs.iter().map(|c| (*c).to_owned()))
                .collect::<Vec<_>>(),
        );
        for bench in focus {
            let mut cells = vec![(*bench).to_owned()];
            for r in &results {
                cells.push(format!("{:.3}", r.mpki_of(bench).unwrap_or(f64::NAN)));
            }
            table.row(cells);
        }
        let mut mean_cells = vec!["MEAN(40)".to_owned()];
        for r in &results {
            mean_cells.push(format!("{:.3}", r.mean_mpki()));
        }
        table.row(mean_cells);
        println!("{label}:\n{table}");
    }
    Ok(())
}
