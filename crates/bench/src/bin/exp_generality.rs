//! E-GEN (§1/§4): the IMLI components improve *any* neural-inspired
//! host.
//!
//! The paper claims the components "can be included in any
//! neural-inspired predictor (TAGE-based or perceptron-inspired)". This
//! binary runs the base/+IMLI pair on all three host families — TAGE-GSC
//! (hybrid TAGE+neural), GEHL (geometric adder tree), and a hashed
//! perceptron — and shows the same flagship benchmarks benefitting on
//! each.

use bp_bench::{instruction_budget, run_configs};
use bp_sim::TextTable;
use bp_workloads::cbp4_suite;

const FOCUS: [&str; 4] = ["SPEC2K6-04", "SPEC2K6-12", "MM-4", "SPEC2K6-01"];

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("E-GEN: IMLI across host families (CBP4-like suite)\n");
    println!("budget: {} instructions/benchmark\n", instruction_budget());
    let suite = cbp4_suite();
    let mut table = TextTable::new(vec![
        "host",
        "base mean",
        "+IMLI mean",
        "Δ%",
        "ΔSPEC2K6-04",
        "ΔSPEC2K6-12",
        "ΔMM-4",
        "ΔSPEC2K6-01",
    ]);
    for (base, with_imli) in [
        ("tage-gsc", "tage-gsc+imli"),
        ("gehl", "gehl+imli"),
        ("perceptron", "perceptron+imli"),
    ] {
        let [b, i]: [_; 2] = run_configs(&[base, with_imli], &suite)?
            .try_into()
            .expect("two configs in, two results out");
        let mut cells = vec![
            base.to_owned(),
            format!("{:.3}", b.mean_mpki()),
            format!("{:.3}", i.mean_mpki()),
            format!(
                "{:+.1}",
                (i.mean_mpki() - b.mean_mpki()) / b.mean_mpki() * 100.0
            ),
        ];
        for bench in FOCUS {
            let delta = i.mpki_of(bench).expect("in suite") - b.mpki_of(bench).expect("in suite");
            cells.push(format!("{delta:+.3}"));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("shape check: the planted benchmarks improve on every host;");
    println!("the generic control (SPEC2K6-01) stays ~unchanged everywhere");
    Ok(())
}
