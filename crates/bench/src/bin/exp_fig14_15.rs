//! Figures 14 and 15 (§5): per-benchmark benefit of local history, with
//! and without IMLI, on the 25 most affected benchmarks.
//!
//! Shape to reproduce: local-history benefits are spread more evenly
//! across benchmarks than the concentrated IMLI benefits, and where IMLI
//! is effective the local components' additional benefit shrinks.

use bp_bench::{both_suites, run_configs};
use bp_sim::{SuiteResult, TextTable};

fn figure(
    host: &str,
    base: &str,
    plus_l: &str,
    plus_i: &str,
    plus_il: &str,
) -> Result<(), bp_bench::UnknownPredictorError> {
    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (suite_name, specs) in both_suites() {
        let results: [SuiteResult; 4] = run_configs(&[base, plus_l, plus_i, plus_il], &specs)?
            .try_into()
            .expect("four configs in, four results out");
        for row in &results[0].rows {
            let bench = &row.benchmark;
            let get = |r: &SuiteResult| r.mpki_of(bench).expect("same suite");
            rows.push((
                format!("{suite_name}/{bench}"),
                get(&results[0]),
                get(&results[1]),
                get(&results[2]),
                get(&results[3]),
            ));
        }
    }
    // The 25 benchmarks most affected by any component (largest spread
    // between best and base).
    rows.sort_by(|a, b| {
        let spread = |r: &(String, f64, f64, f64, f64)| r.1 - r.2.min(r.3).min(r.4);
        spread(b).partial_cmp(&spread(a)).expect("finite")
    });
    let mut table = TextTable::new(vec!["benchmark", "Base", "+L", "+I", "+I+L"]);
    for (bench, b, l, i, il) in rows.iter().take(25) {
        table.row(vec![
            bench.clone(),
            format!("{b:.3}"),
            format!("{l:.3}"),
            format!("{i:.3}"),
            format!("{il:.3}"),
        ]);
    }
    println!("{host}: 25 most affected benchmarks\n{table}");
    Ok(())
}

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("Figures 14-15 (§5): local history vs IMLI, per benchmark\n");
    figure(
        "TAGE (Figure 14)",
        "tage-gsc",
        "tage-sc-l",
        "tage-gsc+imli",
        "tage-sc-l+imli",
    )?;
    figure("GEHL (Figure 15)", "gehl", "ftl", "gehl+imli", "ftl+imli")
}
