//! E-DELAY (§4.3.2): delayed update of the IMLI outer-history table.
//!
//! The paper simulates updating the outer-history table only after the
//! next 63 conditional branches have been fetched (a very large
//! instruction window) and reports virtually no accuracy loss
//! (0.002 MPKI). This binary sweeps the commit delay.

use bp_bench::{both_suites, instruction_budget};
use bp_sim::{run_suite, TextTable};
use bp_tage::{TageSc, TageScConfig};
use imli::ImliConfig;

fn main() {
    println!("E-DELAY (§4.3.2): OH-table commit delay sweep (TAGE-GSC+IMLI)");
    println!("paper: 63-branch delay costs ~0.002 MPKI\n");
    let budget = instruction_budget();
    let mut table = TextTable::new(vec![
        "delay",
        "CBP4 MPKI",
        "CBP3 MPKI",
        "Δ vs delay 0 (CBP4)",
    ]);
    let mut base_cbp4 = None;
    for delay in [0usize, 15, 63, 255] {
        let mut means = Vec::new();
        for (_, specs) in both_suites() {
            let factory = move || -> Box<dyn bp_components::ConditionalPredictor + Send> {
                let config = TageScConfig::gsc_imli().with_imli(
                    ImliConfig::delayed_update(delay),
                    &format!("TAGE-GSC+IMLI(d{delay})"),
                );
                Box::new(TageSc::new(config))
            };
            means.push(run_suite(&factory, &specs, budget).mean_mpki());
        }
        if delay == 0 {
            base_cbp4 = Some(means[0]);
        }
        table.row(vec![
            delay.to_string(),
            format!("{:.4}", means[0]),
            format!("{:.4}", means[1]),
            format!("{:+.4}", means[0] - base_cbp4.expect("delay 0 ran first")),
        ]);
    }
    println!("{table}");
    println!("shape check: the delta column stays in the noise (|Δ| << the IMLI gain)");
}
