//! E-WH (§3.3): the wormhole predictor on top of TAGE-GSC and GEHL.
//!
//! Paper reference points: TAGE-GSC+WH 2.415 CBP4 (-2.4 %) / 3.823 CBP3
//! (-2.2 %); GEHL+WH 2.802 / 4.141. The benefit comes from only four of
//! the eighty benchmarks: SPEC2K6-12 and MM-4 (CBP4), CLIENT02 and MM07
//! (CBP3), with > 1.5 MPKI on the hard three.

use bp_bench::{both_suites, run_configs};
use bp_sim::{SuiteComparison, TextTable};

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("E-WH (§3.3): WH as a side predictor");
    println!("paper: gains on exactly SPEC2K6-12, MM-4, CLIENT02, MM07\n");
    for (base, with_wh) in [("tage-gsc", "tage-gsc+wh"), ("gehl", "gehl+wh")] {
        for (suite_name, specs) in both_suites() {
            let [baseline, variant]: [_; 2] = run_configs(&[base, with_wh], &specs)?
                .try_into()
                .expect("two configs in, two results out");
            let cmp = SuiteComparison::new(baseline, variant).expect("same suite");
            println!(
                "{} vs {} on {}: {:.3} -> {:.3} MPKI ({:+.1} %)",
                base,
                with_wh,
                suite_name,
                cmp.baseline.mean_mpki(),
                cmp.variant.mean_mpki(),
                -cmp.mean_reduction_percent()
            );
            let mut table = TextTable::new(vec!["benchmark", "ΔMPKI (base - WH)"]);
            for (bench, delta) in cmp.top_benefitting(5) {
                table.row(vec![bench, format!("{delta:.3}")]);
            }
            println!("{table}");
        }
    }
    Ok(())
}
