//! E-RECORD (§5 "Setting a New Branch Prediction Record").
//!
//! The paper's closing result: TAGE-GSC-IMLI (234 Kbits) outperforms the
//! 256-Kbit TAGE-SC-L CBP4 winner, and a TAGE-SC-L enhanced with the two
//! IMLI components reaches 2.228 MPKI — 5.8 % below the original's
//! 2.365.

use bp_bench::{both_suites, run_configs};
use bp_sim::{make_predictor, TextTable};

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("E-RECORD (§5): beating TAGE-SC-L with IMLI\n");
    let configs = ["tage-sc-l", "tage-gsc+imli", "tage-sc-l+imli"];
    // One engine grid per suite covering all three configurations.
    let per_suite: Vec<Vec<f64>> = both_suites()
        .iter()
        .map(
            |(_, specs)| -> Result<Vec<f64>, bp_bench::UnknownPredictorError> {
                Ok(run_configs(&configs, specs)?
                    .iter()
                    .map(|r| r.mean_mpki())
                    .collect())
            },
        )
        .collect::<Result<_, _>>()?;
    let mut table = TextTable::new(vec!["predictor", "size (Kbit)", "CBP4 MPKI", "CBP3 MPKI"]);
    let mut means = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        let storage = make_predictor(config).expect("registered").storage_bits();
        table.row(vec![
            (*config).to_owned(),
            format!("{:.0}", storage as f64 / 1024.0),
            format!("{:.3}", per_suite[0][i]),
            format!("{:.3}", per_suite[1][i]),
        ]);
        means.push(vec![per_suite[0][i], per_suite[1][i]]);
    }
    println!("{table}");
    let scl = &means[0];
    let record = &means[2];
    println!(
        "TAGE-SC-L+IMLI vs TAGE-SC-L: {:+.1} % (CBP4), {:+.1} % (CBP3)  [paper: -5.8 %]",
        (record[0] - scl[0]) / scl[0] * 100.0,
        (record[1] - scl[1]) / scl[1] * 100.0
    );
    println!("shape check: tage-gsc+imli ~ matches tage-sc-l at ~20 Kbit less storage,");
    println!("and tage-sc-l+imli beats both");
    Ok(())
}
