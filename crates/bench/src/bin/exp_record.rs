//! E-RECORD (§5 "Setting a New Branch Prediction Record").
//!
//! The paper's closing result: TAGE-GSC-IMLI (234 Kbits) outperforms the
//! 256-Kbit TAGE-SC-L CBP4 winner, and a TAGE-SC-L enhanced with the two
//! IMLI components reaches 2.228 MPKI — 5.8 % below the original's
//! 2.365.

use bp_bench::{both_suites, run_config};
use bp_sim::{make_predictor, TextTable};

fn main() {
    println!("E-RECORD (§5): beating TAGE-SC-L with IMLI\n");
    let mut table = TextTable::new(vec!["predictor", "size (Kbit)", "CBP4 MPKI", "CBP3 MPKI"]);
    let mut means = Vec::new();
    for config in ["tage-sc-l", "tage-gsc+imli", "tage-sc-l+imli"] {
        let storage = make_predictor(config).expect("registered").storage_bits();
        let mut cells = vec![config.to_owned(), format!("{:.0}", storage as f64 / 1024.0)];
        let mut pair = Vec::new();
        for (_, specs) in both_suites() {
            let mean = run_config(config, &specs).mean_mpki();
            pair.push(mean);
            cells.push(format!("{mean:.3}"));
        }
        means.push(pair);
        table.row(cells);
    }
    println!("{table}");
    let scl = &means[0];
    let record = &means[2];
    println!(
        "TAGE-SC-L+IMLI vs TAGE-SC-L: {:+.1} % (CBP4), {:+.1} % (CBP3)  [paper: -5.8 %]",
        (record[0] - scl[0]) / scl[0] * 100.0,
        (record[1] - scl[1]) / scl[1] * 100.0
    );
    println!("shape check: tage-gsc+imli ~ matches tage-sc-l at ~20 Kbit less storage,");
    println!("and tage-sc-l+imli beats both");
}
