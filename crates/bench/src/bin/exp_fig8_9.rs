//! Figures 8 and 9: IMLI-induced MPKI reduction on TAGE-GSC.
//!
//! Figure 8 plots the reduction for all 80 benchmarks (two stacked bars:
//! IMLI-SIC alone, and IMLI-SIC+IMLI-OH); Figure 9 zooms into the 15
//! most-benefitting benchmarks. Paper reference: SIC takes CBP4 from
//! 2.473 to 2.373 and CBP3 from 3.902 to 3.733; SIC+OH reach 2.313 and
//! 3.649.

use bp_bench::{both_suites, run_configs};
use bp_sim::{SuiteComparison, TextTable};

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("Figures 8-9: IMLI on TAGE-GSC\n");
    let mut all_rows: Vec<(String, f64, f64)> = Vec::new();
    for (suite_name, specs) in both_suites() {
        let [base, sic, imli]: [_; 3] =
            run_configs(&["tage-gsc", "tage-gsc+sic", "tage-gsc+imli"], &specs)?
                .try_into()
                .expect("three configs in, three results out");
        println!(
            "{suite_name}: base {:.3} | +SIC {:.3} | +SIC+OH {:.3} MPKI",
            base.mean_mpki(),
            sic.mean_mpki(),
            imli.mean_mpki()
        );
        let sic_cmp = SuiteComparison::new(base.clone(), sic).expect("same suite");
        let imli_cmp = SuiteComparison::new(base, imli).expect("same suite");
        for ((bench, d_sic), (_, d_imli)) in
            sic_cmp.reductions().into_iter().zip(imli_cmp.reductions())
        {
            all_rows.push((format!("{suite_name}/{bench}"), d_sic, d_imli));
        }
    }

    // Figure 8: every benchmark, suite order.
    let mut fig8 = TextTable::new(vec!["benchmark", "ΔMPKI SIC", "ΔMPKI SIC+OH"]);
    for (bench, d_sic, d_imli) in &all_rows {
        fig8.row(vec![
            bench.clone(),
            format!("{d_sic:.3}"),
            format!("{d_imli:.3}"),
        ]);
    }
    println!("\nFigure 8 (all 80 benchmarks):\n{fig8}");

    // Figure 9: the 15 most improved by the full IMLI.
    all_rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    let mut fig9 = TextTable::new(vec!["benchmark", "ΔMPKI SIC", "ΔMPKI SIC+OH"]);
    for (bench, d_sic, d_imli) in all_rows.iter().take(15) {
        fig9.row(vec![
            bench.clone(),
            format!("{d_sic:.3}"),
            format!("{d_imli:.3}"),
        ]);
    }
    println!("Figure 9 (top 15):\n{fig9}");
    Ok(())
}
