//! E-SIC (§4.2.2): IMLI-SIC alone, and the loop-predictor redundancy
//! ablation.
//!
//! Paper reference points: SIC takes TAGE-GSC from 2.473 to 2.373 (CBP4)
//! and 3.902 to 3.733 (CBP3); and with SIC enabled, the loop predictor's
//! benefit shrinks from 0.034 to 0.013 MPKI (CBP4) and from 0.094 to
//! 0.010 MPKI (CBP3) — SIC predicts constant inner-loop trip counts
//! itself.

use bp_bench::{both_suites, run_config};
use bp_sim::TextTable;

fn main() {
    println!("E-SIC (§4.2.2): IMLI-SIC alone + loop predictor redundancy\n");
    let mut table = TextTable::new(vec![
        "suite",
        "base",
        "+SIC",
        "+LOOP",
        "+SIC+LOOP",
        "loop benefit w/o SIC",
        "loop benefit w/ SIC",
    ]);
    for (suite_name, specs) in both_suites() {
        let base = run_config("tage-gsc", &specs).mean_mpki();
        let sic = run_config("tage-gsc+sic", &specs).mean_mpki();
        let lp = run_config("tage-gsc+loop", &specs).mean_mpki();
        let sic_lp = run_config("tage-gsc+sic+loop", &specs).mean_mpki();
        table.row(vec![
            suite_name.to_owned(),
            format!("{base:.3}"),
            format!("{sic:.3}"),
            format!("{lp:.3}"),
            format!("{sic_lp:.3}"),
            format!("{:.3}", base - lp),
            format!("{:.3}", sic - sic_lp),
        ]);
    }
    println!("{table}");
    println!("shape check: the last column must be clearly smaller than the one before it");
}
