//! E-SIC (§4.2.2): IMLI-SIC alone, and the loop-predictor redundancy
//! ablation.
//!
//! Paper reference points: SIC takes TAGE-GSC from 2.473 to 2.373 (CBP4)
//! and 3.902 to 3.733 (CBP3); and with SIC enabled, the loop predictor's
//! benefit shrinks from 0.034 to 0.013 MPKI (CBP4) and from 0.094 to
//! 0.010 MPKI (CBP3) — SIC predicts constant inner-loop trip counts
//! itself.

use bp_bench::{both_suites, run_configs};
use bp_sim::TextTable;

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("E-SIC (§4.2.2): IMLI-SIC alone + loop predictor redundancy\n");
    let mut table = TextTable::new(vec![
        "suite",
        "base",
        "+SIC",
        "+LOOP",
        "+SIC+LOOP",
        "loop benefit w/o SIC",
        "loop benefit w/ SIC",
    ]);
    for (suite_name, specs) in both_suites() {
        let results = run_configs(
            &[
                "tage-gsc",
                "tage-gsc+sic",
                "tage-gsc+loop",
                "tage-gsc+sic+loop",
            ],
            &specs,
        )?;
        let [base, sic, lp, sic_lp]: [f64; 4] = results
            .iter()
            .map(|r| r.mean_mpki())
            .collect::<Vec<_>>()
            .try_into()
            .expect("four configs in, four results out");
        table.row(vec![
            suite_name.to_owned(),
            format!("{base:.3}"),
            format!("{sic:.3}"),
            format!("{lp:.3}"),
            format!("{sic_lp:.3}"),
            format!("{:.3}", base - lp),
            format!("{:.3}", sic - sic_lp),
        ]);
    }
    println!("{table}");
    println!("shape check: the last column must be clearly smaller than the one before it");
    Ok(())
}
