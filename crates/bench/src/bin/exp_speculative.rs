//! E-SPEC (§4.2.1/§4.3.2/§4.4): speculative-state management of the IMLI
//! components.
//!
//! The paper's complexity argument: repairing the IMLI components after
//! a misprediction needs a checkpoint of only the IMLI counter (10 bits)
//! and the PIPE vector (16 bits). This binary injects wrong-path
//! excursions while running the CBP4-like suite through the IMLI state
//! and verifies the repaired machine never diverges from a golden
//! never-speculating copy.

use bp_sim::{speculative_imli_fidelity, TextTable};
use bp_workloads::{cbp4_suite, generate};
use imli::ImliConfig;

fn main() {
    println!("E-SPEC: wrong-path excursions + 26-bit checkpoint repair\n");
    let mut table = TextTable::new(vec![
        "benchmark",
        "records",
        "excursions",
        "wrong-path",
        "divergences",
    ]);
    let mut total_divergences = 0u64;
    for spec in cbp4_suite().into_iter().take(10) {
        let trace = generate(&spec, 200_000);
        let report = speculative_imli_fidelity(&trace, &ImliConfig::default(), 23, 48);
        total_divergences += report.divergences;
        table.row(vec![
            spec.name,
            report.records.to_string(),
            report.excursions.to_string(),
            report.wrong_path_records.to_string(),
            report.divergences.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "checkpoint cost: {} bits (paper: 10-bit IMLI counter + 16-bit PIPE)",
        ImliConfig::default().checkpoint_bits()
    );
    assert_eq!(total_divergences, 0, "speculation repair must be exact");
    println!("PASS: zero divergences across all excursions");
}
