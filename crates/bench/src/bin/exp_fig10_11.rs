//! Figures 10 and 11: IMLI-induced MPKI reduction on GEHL.
//!
//! Same layout as Figures 8-9 but for the neural host. Paper reference:
//! SIC takes CBP4 from 2.864 to 2.752 and CBP3 from 4.243 to 4.053;
//! SIC+OH reach 2.694 and 3.958; the same benchmarks benefit as with
//! TAGE-GSC.

use bp_bench::{both_suites, run_configs};
use bp_sim::{SuiteComparison, TextTable};

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("Figures 10-11: IMLI on GEHL\n");
    let mut all_rows: Vec<(String, f64, f64)> = Vec::new();
    for (suite_name, specs) in both_suites() {
        let [base, sic, imli]: [_; 3] = run_configs(&["gehl", "gehl+sic", "gehl+imli"], &specs)?
            .try_into()
            .expect("three configs in, three results out");
        println!(
            "{suite_name}: base {:.3} | +SIC {:.3} | +SIC+OH {:.3} MPKI",
            base.mean_mpki(),
            sic.mean_mpki(),
            imli.mean_mpki()
        );
        let sic_cmp = SuiteComparison::new(base.clone(), sic).expect("same suite");
        let imli_cmp = SuiteComparison::new(base, imli).expect("same suite");
        for ((bench, d_sic), (_, d_imli)) in
            sic_cmp.reductions().into_iter().zip(imli_cmp.reductions())
        {
            all_rows.push((format!("{suite_name}/{bench}"), d_sic, d_imli));
        }
    }

    let mut fig10 = TextTable::new(vec!["benchmark", "ΔMPKI SIC", "ΔMPKI SIC+OH"]);
    for (bench, d_sic, d_imli) in &all_rows {
        fig10.row(vec![
            bench.clone(),
            format!("{d_sic:.3}"),
            format!("{d_imli:.3}"),
        ]);
    }
    println!("\nFigure 10 (all 80 benchmarks):\n{fig10}");

    all_rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    let mut fig11 = TextTable::new(vec!["benchmark", "ΔMPKI SIC", "ΔMPKI SIC+OH"]);
    for (bench, d_sic, d_imli) in all_rows.iter().take(15) {
        fig11.row(vec![
            bench.clone(),
            format!("{d_sic:.3}"),
            format!("{d_imli:.3}"),
        ]);
    }
    println!("Figure 11 (top 15):\n{fig11}");
    Ok(())
}
