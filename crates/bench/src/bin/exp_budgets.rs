//! E-BUDGET (§4.4): storage budgets and speculative-state costs.
//!
//! Paper reference points: the two IMLI components cost 708 bytes total
//! (384 B SIC table + 128 B outer-history table + 192 B OH prediction
//! table + 4 B PIPE/counter) and their speculative checkpoint is 26 bits
//! (10-bit counter + 16-bit PIPE). Table 1/2 sizes: TAGE-GSC 228→234
//! Kbit with IMLI; GEHL 204→209 Kbit.

use bp_components::StorageBudget;
use bp_sim::{make_predictor, TextTable};
use bp_tage::TageSc;
use imli::{ImliConfig, ImliState};

fn main() {
    println!("E-BUDGET (§4.4): storage accounting\n");

    let imli = ImliState::new(&ImliConfig::default());
    let mut breakdown = TextTable::new(vec!["IMLI component", "bits", "bytes"]);
    for (label, bits) in imli.budget_breakdown() {
        breakdown.row(vec![
            label,
            bits.to_string(),
            format!("{:.0}", bits as f64 / 8.0),
        ]);
    }
    breakdown.row(vec![
        "TOTAL (paper: 708 B incl. packaging)".to_owned(),
        imli.storage_bits().to_string(),
        format!("{:.0}", imli.storage_bits() as f64 / 8.0),
    ]);
    println!("{breakdown}");
    println!(
        "speculative checkpoint: {} bits (paper: 10 + 16 = 26)\n",
        imli.checkpoint_bits()
    );

    let mut sizes = TextTable::new(vec!["predictor", "Kbit", "paper Kbit"]);
    for (config, paper) in [
        ("tage-gsc", "228"),
        ("tage-gsc+imli", "234"),
        ("tage-sc-l", "256"),
        ("tage-sc-l+imli", "261"),
        ("gehl", "204"),
        ("gehl+imli", "209"),
        ("ftl", "256"),
        ("ftl+imli", "261"),
    ] {
        let bits = make_predictor(config).expect("registered").storage_bits();
        sizes.row(vec![
            config.to_owned(),
            format!("{:.1}", bits as f64 / 1024.0),
            paper.to_owned(),
        ]);
    }
    println!("{sizes}");

    let mut parts = TextTable::new(vec!["TAGE-GSC+IMLI part", "Kbit"]);
    for (label, bits) in TageSc::tage_gsc_imli().budget_breakdown() {
        parts.row(vec![label, format!("{:.1}", bits as f64 / 1024.0)]);
    }
    println!("{parts}");

    // The exact per-table itemization behind the coarse parts above —
    // the same `StorageBudget` channel `bp report` folds into its
    // storage tables.
    let full = TageSc::tage_gsc_imli();
    let mut itemized = TextTable::new(vec!["TAGE-GSC+IMLI table", "bits"]);
    for item in full.storage_items() {
        itemized.row(vec![item.label, item.bits.to_string()]);
    }
    itemized.row(vec!["TOTAL".to_owned(), full.storage_bits().to_string()]);
    println!("{itemized}");
}
