//! Tables 1 and 2 (§5): Base / +L / +I / +I+L for both host families.
//!
//! Paper reference (MPKI):
//!
//! | TAGE-GSC | Base | +L | +I | +I+L |   | GEHL | Base | +L | +I | +I+L |
//! |---|---|---|---|---|---|---|---|---|---|---|
//! | size (Kb) | 228 | 256 | 234 | 261 |   | size | 204 | 256 | 209 | 261 |
//! | CBP4 | 2.473 | 2.365 | 2.313 | 2.226 |   | CBP4 | 2.864 | 2.693 | 2.694 | 2.562 |
//! | CBP3 | 3.902 | 3.670 | 3.649 | 3.555 |   | CBP3 | 4.243 | 3.924 | 3.958 | 3.827 |
//!
//! Shape to reproduce: +I achieves roughly the +L benefit at a fraction
//! of the storage, and the +L benefit *on top of* +I is smaller than on
//! top of the base (the IMLI components capture part of the
//! local-history correlation).

use bp_bench::{both_suites, run_configs};
use bp_sim::{make_predictor, TextTable};

fn table_for(
    host: &str,
    configs: [(&str, &str); 4],
) -> Result<(), bp_bench::UnknownPredictorError> {
    let names: Vec<&str> = configs.iter().map(|(_, c)| *c).collect();
    // One engine grid per suite: all four configurations' cells are
    // scheduled together.
    let per_suite: Vec<Vec<f64>> = both_suites()
        .iter()
        .map(
            |(_, specs)| -> Result<Vec<f64>, bp_bench::UnknownPredictorError> {
                Ok(run_configs(&names, specs)?
                    .iter()
                    .map(|r| r.mean_mpki())
                    .collect())
            },
        )
        .collect::<Result<_, _>>()?;
    let mut table = TextTable::new(vec![host, "size (Kbit)", "CBP4", "CBP3"]);
    let mut means: Vec<(f64, f64)> = Vec::new();
    for (i, (label, config)) in configs.iter().enumerate() {
        let storage = make_predictor(config).expect("registered").storage_bits();
        table.row(vec![
            (*label).to_owned(),
            format!("{:.0}", storage as f64 / 1024.0),
            format!("{:.3}", per_suite[0][i]),
            format!("{:.3}", per_suite[1][i]),
        ]);
        means.push((per_suite[0][i], per_suite[1][i]));
    }
    println!("{table}");
    let (base, l, i, il) = (means[0], means[1], means[2], means[3]);
    println!(
        "local-history benefit without IMLI: {:.3} (CBP4) {:.3} (CBP3)",
        base.0 - l.0,
        base.1 - l.1
    );
    println!(
        "local-history benefit with IMLI:    {:.3} (CBP4) {:.3} (CBP3)\n",
        i.0 - il.0,
        i.1 - il.1
    );
    Ok(())
}

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("Tables 1 and 2 (§5)\n");
    println!("Table 1 (TAGE-GSC family):");
    table_for(
        "TAGE-GSC",
        [
            ("Base", "tage-gsc"),
            ("+L", "tage-sc-l"),
            ("+I", "tage-gsc+imli"),
            ("+I+L", "tage-sc-l+imli"),
        ],
    )?;
    println!("Table 2 (GEHL family):");
    table_for(
        "GEHL",
        [
            ("Base", "gehl"),
            ("+L", "ftl"),
            ("+I", "gehl+imli"),
            ("+I+L", "ftl+imli"),
        ],
    )?;
    Ok(())
}
