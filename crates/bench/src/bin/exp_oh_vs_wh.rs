//! E-OHWH / Figure 13 (§4.3): IMLI-OH versus the wormhole predictor.
//!
//! The paper adds WH on top of the SIC-augmented hosts (TAGE-GSC+SIC+WH
//! reaches 2.323/3.675; GEHL+SIC+WH 2.700/3.984) and then shows IMLI-OH
//! captures the same correlations: Figure 13 compares GEHL+OH against
//! GEHL+WH on the most affected benchmarks (SPEC2K6-12, MM-4, CLIENT02,
//! MM07).

use bp_bench::{both_suites, run_configs};
use bp_sim::TextTable;

const FOCUS: [&str; 8] = [
    "SPEC2K6-12",
    "MM-4",
    "CLIENT02",
    "MM07",
    "SPEC2K6-04",
    "WS04",
    "WS03",
    "INT01",
];

fn main() -> Result<(), bp_bench::UnknownPredictorError> {
    println!("E-OHWH / Figure 13: IMLI-OH vs WH (GEHL host)\n");
    for (suite_name, specs) in both_suites() {
        let [base, oh, wh, sic_wh, imli]: [_; 5] = run_configs(
            &["gehl", "gehl+oh", "gehl+wh", "gehl+sic+wh", "gehl+imli"],
            &specs,
        )?
        .try_into()
        .expect("five configs in, five results out");
        println!(
            "{suite_name} means: base {:.3} | +OH {:.3} | +WH {:.3} | +SIC+WH {:.3} | +IMLI {:.3}",
            base.mean_mpki(),
            oh.mean_mpki(),
            wh.mean_mpki(),
            sic_wh.mean_mpki(),
            imli.mean_mpki()
        );
        let mut table = TextTable::new(vec!["benchmark", "base", "GEHL+OH", "GEHL+WH"]);
        for bench in FOCUS {
            if let Some(b) = base.mpki_of(bench) {
                table.row(vec![
                    bench.to_owned(),
                    format!("{b:.3}"),
                    format!("{:.3}", oh.mpki_of(bench).expect("same suite")),
                    format!("{:.3}", wh.mpki_of(bench).expect("same suite")),
                ]);
            }
        }
        println!("{table}");
    }
    println!("shape check: OH matches or beats WH on the diagonal benchmarks,");
    println!("and also helps the SIC-style benchmarks WH cannot track (SPEC2K6-04, WS04)");
    Ok(())
}
