//! Shared harness code for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md`'s experiment index). They share the conventions here:
//!
//! * the per-benchmark instruction budget comes from the
//!   `IMLI_REPRO_INSTR` environment variable (default: 2,000,000 —
//!   enough for warmed-up steady-state MPKI at tolerable runtime; the
//!   paper's traces are ~30M instructions each);
//! * suites are the synthetic CBP4-like/CBP3-like sets from
//!   `bp-workloads`;
//! * predictors are constructed through the `bp-sim` registry, so a
//!   binary's output is reproducible from its name alone;
//! * whole (configurations × suite) sweeps go through the parallel
//!   [`bp_sim::Engine`] via [`run_configs`], which fans *all* cells out
//!   at once — a binary comparing four configurations keeps every core
//!   busy instead of parallelizing one configuration at a time.

#![warn(missing_docs)]

use bp_sim::{lookup, registry_names, run_suite, Engine, GridStrategy, PredictorSpec, SuiteResult};
use bp_workloads::{cbp3_suite, cbp4_suite, BenchmarkSpec};
use std::fmt;

pub mod sim_bench;
pub mod trace_bench;

/// A requested configuration name that is not in the registry. The
/// message lists every registered name, so a typo in an experiment
/// binary (or a stale name after a registry rename) is immediately
/// actionable instead of a bare panic.
#[derive(Clone)]
pub struct UnknownPredictorError {
    /// The name that failed to resolve.
    pub name: String,
    /// Every registered configuration name, in registry order.
    pub available: Vec<String>,
}

impl UnknownPredictorError {
    fn new(name: &str) -> Self {
        UnknownPredictorError {
            name: name.to_owned(),
            available: registry_names(),
        }
    }
}

impl fmt::Display for UnknownPredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown predictor `{}`; registered configurations: {}",
            self.name,
            self.available.join(", ")
        )
    }
}

/// Debug matches Display so `fn main() -> Result<_, UnknownPredictorError>`
/// prints the readable message, not a struct dump.
impl fmt::Debug for UnknownPredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for UnknownPredictorError {}

/// Per-benchmark instruction budget (`IMLI_REPRO_INSTR`, default 2M).
pub fn instruction_budget() -> u64 {
    std::env::var("IMLI_REPRO_INSTR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

/// The two suites as `(label, specs)` pairs, CBP4 first (the paper's
/// primary set).
pub fn both_suites() -> Vec<(&'static str, Vec<BenchmarkSpec>)> {
    vec![("CBP4", cbp4_suite()), ("CBP3", cbp3_suite())]
}

/// Runs a registry configuration over a suite at the standard budget,
/// or reports the unknown name along with every registered one.
pub fn run_config(
    config: &str,
    specs: &[BenchmarkSpec],
) -> Result<SuiteResult, UnknownPredictorError> {
    let spec = lookup(config).ok_or_else(|| UnknownPredictorError::new(config))?;
    Ok(run_suite(&|| spec.make(), specs, instruction_budget()))
}

/// Runs several registry configurations over a suite at the standard
/// budget as one engine grid — all (configuration × benchmark) cells
/// are scheduled together, so the slowest configuration no longer
/// serializes the sweep. Results come back in `configs` order.
///
/// The experiment binaries sweep many configurations over the same
/// suite, the exact shape the engine's fused column mode is for: each
/// benchmark stream is generated **once** and every configuration
/// consumes it in the same pass, instead of regenerating the stream
/// once per configuration. Results are bit-identical to per-cell runs
/// (the engine guarantees and tests this).
///
/// Unknown names come back as an [`UnknownPredictorError`] listing
/// every registered configuration.
pub fn run_configs(
    configs: &[&str],
    specs: &[BenchmarkSpec],
) -> Result<Vec<SuiteResult>, UnknownPredictorError> {
    let predictors: Vec<PredictorSpec> = configs
        .iter()
        .map(|c| lookup(c).ok_or_else(|| UnknownPredictorError::new(c)))
        .collect::<Result<_, _>>()?;
    let grid = Engine::new()
        .with_strategy(GridStrategy::FusedColumns)
        .run_grid(&predictors, specs, instruction_budget());
    Ok(configs
        .iter()
        .map(|c| grid.suite_result(c).expect("row for every config"))
        .collect())
}

/// Formats a signed MPKI delta the way the paper quotes them
/// (`-0.123` = improvement).
pub fn fmt_delta(baseline: f64, variant: f64) -> String {
    format!("{:+.3}", variant - baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_default_and_override() {
        // Can't mutate the environment safely in parallel tests; just
        // check the default path yields a sane value.
        assert!(instruction_budget() >= 10_000);
    }

    #[test]
    fn suites_pairing() {
        let suites = both_suites();
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].0, "CBP4");
        assert_eq!(suites[0].1.len(), 40);
        assert_eq!(suites[1].1.len(), 40);
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta(2.5, 2.3), "-0.200");
        assert_eq!(fmt_delta(2.5, 2.8), "+0.300");
    }

    #[test]
    fn run_config_smoke() {
        let specs: Vec<_> = cbp4_suite().into_iter().take(2).collect();
        let r = {
            let factory = move || bp_sim::make_predictor("bimodal").expect("registered");
            bp_sim::run_suite(&factory, &specs, 20_000)
        };
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn run_configs_matches_per_config_runs() {
        let specs: Vec<_> = cbp4_suite().into_iter().take(2).collect();
        let both = {
            let predictors: Vec<_> = ["bimodal", "gshare"]
                .iter()
                .map(|c| bp_sim::lookup(c).expect("registered"))
                .collect();
            let grid = Engine::new().run_grid(&predictors, &specs, 20_000);
            ["bimodal", "gshare"].map(|c| grid.suite_result(c).expect("row"))
        };
        for (config, grid_result) in ["bimodal", "gshare"].iter().zip(both) {
            let spec = bp_sim::lookup(config).expect("registered");
            let solo = bp_sim::run_suite(&|| spec.make(), &specs, 20_000);
            assert_eq!(solo.rows, grid_result.rows, "{config}");
        }
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let specs: Vec<_> = cbp4_suite().into_iter().take(1).collect();
        let err = run_config("tage-gcs", &specs).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("unknown predictor `tage-gcs`"),
            "{message}"
        );
        assert!(
            message.contains("tage-gsc") && message.contains("bimodal"),
            "{message}"
        );
        assert_eq!(format!("{err:?}"), message, "Debug must match Display");
        let err = run_configs(&["bimodal", "nope"], &specs).unwrap_err();
        assert_eq!(err.name, "nope");
        assert_eq!(err.available, bp_sim::registry_names());
    }
}
