//! Shared harness code for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md`'s experiment index). They share the conventions here:
//!
//! * the per-benchmark instruction budget comes from the
//!   `IMLI_REPRO_INSTR` environment variable (default: 2,000,000 —
//!   enough for warmed-up steady-state MPKI at tolerable runtime; the
//!   paper's traces are ~30M instructions each);
//! * suites are the synthetic CBP4-like/CBP3-like sets from
//!   `bp-workloads`;
//! * predictors are constructed through the `bp-sim` registry, so a
//!   binary's output is reproducible from its name alone.

#![warn(missing_docs)]

use bp_sim::{make_predictor, run_suite, SuiteResult};
use bp_workloads::{cbp3_suite, cbp4_suite, BenchmarkSpec};

/// Per-benchmark instruction budget (`IMLI_REPRO_INSTR`, default 2M).
pub fn instruction_budget() -> u64 {
    std::env::var("IMLI_REPRO_INSTR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

/// The two suites as `(label, specs)` pairs, CBP4 first (the paper's
/// primary set).
pub fn both_suites() -> Vec<(&'static str, Vec<BenchmarkSpec>)> {
    vec![("CBP4", cbp4_suite()), ("CBP3", cbp3_suite())]
}

/// Runs a registry configuration over a suite at the standard budget.
///
/// # Panics
///
/// Panics if `config` is not a registry name.
pub fn run_config(config: &str, specs: &[BenchmarkSpec]) -> SuiteResult {
    let factory =
        move || make_predictor(config).unwrap_or_else(|| panic!("unknown predictor {config}"));
    run_suite(&factory, specs, instruction_budget())
}

/// Formats a signed MPKI delta the way the paper quotes them
/// (`-0.123` = improvement).
pub fn fmt_delta(baseline: f64, variant: f64) -> String {
    format!("{:+.3}", variant - baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_default_and_override() {
        // Can't mutate the environment safely in parallel tests; just
        // check the default path yields a sane value.
        assert!(instruction_budget() >= 10_000);
    }

    #[test]
    fn suites_pairing() {
        let suites = both_suites();
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].0, "CBP4");
        assert_eq!(suites[0].1.len(), 40);
        assert_eq!(suites[1].1.len(), 40);
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta(2.5, 2.3), "-0.200");
        assert_eq!(fmt_delta(2.5, 2.8), "+0.300");
    }

    #[test]
    fn run_config_smoke() {
        let specs: Vec<_> = cbp4_suite().into_iter().take(2).collect();
        let r = {
            let factory = move || make_predictor("bimodal").expect("registered");
            bp_sim::run_suite(&factory, &specs, 20_000)
        };
        assert_eq!(r.rows.len(), 2);
    }
}
