//! # bp-cache — content-addressed on-disk result cache
//!
//! Every artifact the workspace emits is byte-deterministic by
//! construction, which makes simulation results *content-addressable*:
//! a cell's outcome is a pure function of the predictor's
//! round-trippable config text, the workload identity, the
//! instruction/warmup budgets, and the result-format schema version.
//! This crate provides the two primitives that turn that observation
//! into a cache:
//!
//! * [`CacheKey`] + [`fnv1a_128`] — a canonical key rendering and a
//!   hand-rolled 128-bit FNV-1a content hash over it. No OS entropy,
//!   no pointer bits, no platform-dependent hashers: the same key
//!   hashes to the same 32-hex-digit name on every run and every
//!   platform, so cache directories can be shared and diffed.
//! * [`CacheStore`] — an on-disk store of entries at
//!   `<root>/<2-hex-prefix>/<32-hex-hash>.json`. Each entry embeds the
//!   **full key**, not just its hash, rendered as a deterministic JSON
//!   envelope around an opaque payload.
//!
//! ## Verify-then-trust
//!
//! A cache must never turn a hash collision, a truncated write, or a
//! stray bit flip into a wrong result or a crash. [`CacheStore::load`]
//! therefore reconstructs the exact envelope prefix the key *would*
//! have written and requires the file to match it byte-for-byte (and
//! to end with the fixed envelope suffix). That single comparison is
//! simultaneously the collision check (the full key is in the prefix)
//! and the envelope-corruption check. Any mismatch is reported as a
//! plain miss — the caller recomputes and overwrites; nothing in this
//! crate panics or propagates a hard error on a bad entry. Corruption
//! *inside* the payload is the caller's to detect: payloads are
//! structured text that callers parse strictly, and a parse failure is
//! likewise treated as a miss.
//!
//! ## Invalidation
//!
//! There is no time-based expiry and no mtime logic (this crate is
//! covered by the workspace determinism lint: no `HashMap`, no
//! `Instant`, no environment reads). Entries are invalidated by
//! *content*: changing the config text, workload, budgets, or bumping
//! [`CACHE_SCHEMA_VERSION`] changes the hash, so stale entries are
//! simply never addressed again. [`CacheStore::gc`] removes entries
//! that no current key can address (wrong schema version, malformed
//! envelope, hash/filename mismatch, leftover temp files).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version stamp folded into every cache key hash and embedded in
/// every entry envelope.
///
/// Bump this whenever the payload encoding or the key anatomy changes
/// meaning: old entries stop being addressable (their hashes were
/// computed under the old version) and `gc` reclaims them.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// 128-bit FNV-1a offset basis (the standard constant).
const FNV128_OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime (the standard constant).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Fixed suffix closing every entry envelope. The payload sits between
/// the key-derived prefix and this suffix; [`CacheStore::load`] slices
/// it back out by byte offsets, so any payload round-trips exactly.
const ENTRY_SUFFIX: &str = "\n}\n";

/// Hash `bytes` with 128-bit FNV-1a.
///
/// Deterministic across runs and platforms by construction: plain
/// wrapping `u128` arithmetic over the byte stream, no seeds.
///
/// ```
/// // FNV-1a of the empty input is the offset basis.
/// assert_eq!(
///     bp_cache::fnv1a_128(b""),
///     0x6c62272e07bb014262b821756295c58d
/// );
/// ```
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET_BASIS;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

/// The canonical identity of one cached cell.
///
/// Two cells are the same cell if and only if every field here is
/// byte-equal. Worker counts, scheduling strategy, predictor-list
/// ordering, and wall-clock timings are deliberately *not* part of the
/// key: they cannot change a deterministic result.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Payload-shape discriminator (e.g. `"sim"`, `"report"`,
    /// `"scenario"`), so differently-shaped results for the same
    /// (config, workload) pair never alias.
    pub kind: String,
    /// The predictor's round-trippable config text
    /// (`RegistryConfig::to_text()` — byte-stable by test).
    pub config: String,
    /// Workload identity: a benchmark name for grid/report cells, the
    /// canonical scenario spec text for scenario cells.
    pub workload: String,
    /// Simulated instruction budget.
    pub instructions: u64,
    /// Warmup instruction budget (0 where the cell has no warmup
    /// phase).
    pub warmup: u64,
}

impl CacheKey {
    /// Render the canonical key text that gets hashed.
    ///
    /// String fields are JSON-escaped, which makes the rendering
    /// injective (no field can smuggle a delimiter), and the schema
    /// version is folded in so bumps re-key everything.
    pub fn canonical_text(&self) -> String {
        let mut out =
            String::with_capacity(self.kind.len() + self.config.len() + self.workload.len() + 96);
        out.push_str("bp-cache-key v");
        push_u64(&mut out, CACHE_SCHEMA_VERSION as u64);
        out.push_str("\nkind: ");
        push_json_string(&mut out, &self.kind);
        out.push_str("\nconfig: ");
        push_json_string(&mut out, &self.config);
        out.push_str("\nworkload: ");
        push_json_string(&mut out, &self.workload);
        out.push_str("\ninstructions: ");
        push_u64(&mut out, self.instructions);
        out.push_str("\nwarmup: ");
        push_u64(&mut out, self.warmup);
        out.push('\n');
        out
    }

    /// The key's 128-bit content hash.
    pub fn hash(&self) -> u128 {
        fnv1a_128(self.canonical_text().as_bytes())
    }

    /// The hash as 32 lowercase hex digits — the entry's file stem.
    pub fn hash_hex(&self) -> String {
        let mut out = String::with_capacity(32);
        let _ = write!(out, "{:032x}", self.hash());
        out
    }

    /// Render the deterministic envelope prefix for this key: the
    /// entry file is exactly `prefix + payload + "\n}\n"`.
    ///
    /// Embedding the full key (not just its hash) is what lets
    /// [`CacheStore::load`] detect hash collisions by a single byte
    /// comparison.
    fn entry_prefix(&self) -> String {
        let mut out =
            String::with_capacity(self.kind.len() + self.config.len() + self.workload.len() + 192);
        out.push_str("{\n  \"bp-cache\": ");
        push_u64(&mut out, CACHE_SCHEMA_VERSION as u64);
        out.push_str(",\n  \"hash\": \"");
        out.push_str(&self.hash_hex());
        out.push_str("\",\n  \"kind\": ");
        push_json_string(&mut out, &self.kind);
        out.push_str(",\n  \"config\": ");
        push_json_string(&mut out, &self.config);
        out.push_str(",\n  \"workload\": ");
        push_json_string(&mut out, &self.workload);
        out.push_str(",\n  \"instructions\": ");
        push_u64(&mut out, self.instructions);
        out.push_str(",\n  \"warmup\": ");
        push_u64(&mut out, self.warmup);
        out.push_str(",\n  \"payload\": ");
        out
    }

    /// Render the complete entry file contents for `payload`.
    pub fn entry_text(&self, payload: &str) -> String {
        let mut out = self.entry_prefix();
        out.push_str(payload);
        out.push_str(ENTRY_SUFFIX);
        out
    }
}

/// Append `v` in decimal without going through `format!`.
fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Minimal JSON string escaper, byte-compatible with
/// `bp_components::config::json_string` (asserted by a dev-dependency
/// test). Duplicated here so the cache crate stays dependency-free.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Inverse of [`push_json_string`] for envelope re-parsing during
/// `stats`/`gc`: reads one JSON string starting at `text[pos]`
/// (which must be `"`), returns the decoded value and the index just
/// past the closing quote. Returns `None` on any malformation.
fn read_json_string(text: &str, pos: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    if *bytes.get(pos)? != b'"' {
        return None;
    }
    let mut out = String::new();
    let mut chars = text.get(pos + 1..)?.char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => return Some((out, pos + 1 + off + 1)),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code: u32 = 0;
                    for _ in 0..4 {
                        let d = chars.next()?.1.to_digit(16)?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Read a decimal `u64` starting at `text[pos]`; returns the value and
/// the index just past the last digit.
fn read_u64(text: &str, pos: usize) -> Option<(u64, usize)> {
    let bytes = text.as_bytes();
    let mut end = pos;
    while bytes.get(end).is_some_and(|b| b.is_ascii_digit()) {
        end += 1;
    }
    if end == pos {
        return None;
    }
    let value = text.get(pos..end)?.parse().ok()?;
    Some((value, end))
}

/// Expect the literal `lit` at `text[pos]`; returns the index past it.
fn expect_lit(text: &str, pos: usize, lit: &str) -> Option<usize> {
    if text.get(pos..)?.starts_with(lit) {
        Some(pos + lit.len())
    } else {
        None
    }
}

/// Re-parse an entry envelope back into its [`CacheKey`] without
/// knowing the key in advance (the `stats`/`gc` path; `load` never
/// parses — it compares bytes against a known key).
///
/// Accepts only envelopes this crate could have written for the
/// *current* schema version: the parsed key's regenerated prefix must
/// byte-match the file, which re-verifies the embedded hash too.
fn parse_entry_key(text: &str) -> Option<CacheKey> {
    let pos = expect_lit(text, 0, "{\n  \"bp-cache\": ")?;
    let (schema, pos) = read_u64(text, pos)?;
    if schema != CACHE_SCHEMA_VERSION as u64 {
        return None;
    }
    let pos = expect_lit(text, pos, ",\n  \"hash\": ")?;
    let (_hash_hex, pos) = read_json_string(text, pos)?;
    let pos = expect_lit(text, pos, ",\n  \"kind\": ")?;
    let (kind, pos) = read_json_string(text, pos)?;
    let pos = expect_lit(text, pos, ",\n  \"config\": ")?;
    let (config, pos) = read_json_string(text, pos)?;
    let pos = expect_lit(text, pos, ",\n  \"workload\": ")?;
    let (workload, pos) = read_json_string(text, pos)?;
    let pos = expect_lit(text, pos, ",\n  \"instructions\": ")?;
    let (instructions, pos) = read_u64(text, pos)?;
    let pos = expect_lit(text, pos, ",\n  \"warmup\": ")?;
    let (warmup, _pos) = read_u64(text, pos)?;
    let key = CacheKey {
        kind,
        config,
        workload,
        instructions,
        warmup,
    };
    // Regenerating the prefix re-checks field ordering, the embedded
    // hash, and every escaped byte in one comparison.
    if text.starts_with(&key.entry_prefix()) && text.ends_with(ENTRY_SUFFIX) {
        Some(key)
    } else {
        None
    }
}

/// How a consumer participates in the cache. The policy layer lives
/// here, next to the store, so every consumer shares one vocabulary;
/// enforcement (gating reads and writes) is the consumer's job — the
/// store itself is policy-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Cache disabled: no reads, no writes, no counting.
    Off,
    /// Probe before computing, write back what was computed.
    #[default]
    ReadWrite,
    /// Probe before computing, never write (e.g. a shared read-only
    /// cache directory).
    ReadOnly,
    /// Ignore existing entries but overwrite them with fresh results
    /// (recompute-and-repair).
    Refresh,
}

/// Aggregate counts from walking a cache directory, in deterministic
/// (sorted-path) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries whose envelope verified against the current schema and
    /// whose filename matches their key hash.
    pub entries: u64,
    /// Total bytes across valid entries.
    pub bytes: u64,
    /// Files under the store's prefix directories that are not valid
    /// entries (old schema, corruption, leftover temp files).
    pub invalid: u64,
}

/// Result of a [`CacheStore::gc`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Valid entries left in place.
    pub kept: u64,
    /// Invalid files removed.
    pub removed: u64,
}

/// The on-disk store: entries live at
/// `<root>/<2-hex-prefix>/<32-hex-hash>.json`.
///
/// All failure modes on the read path degrade to a miss (`None`), and
/// writes go through a temp file + atomic rename so a crashed writer
/// can never leave a half-written file under an addressable name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStore {
    root: PathBuf,
}

impl CacheStore {
    /// Open (lazily — no I/O happens here) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CacheStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a `key`'s entry lives at (whether or not it exists).
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        let hex = key.hash_hex();
        let prefix = hex.get(..2).unwrap_or("00");
        self.root.join(prefix).join(format!("{hex}.json"))
    }

    /// Look up `key`; returns the stored payload on a verified hit.
    ///
    /// Verify-then-trust: the file must byte-match the envelope prefix
    /// this exact key renders (full-key equality — detects collisions)
    /// and end with the envelope suffix (detects truncation). Anything
    /// else — missing file, unreadable file, mismatch — is `None`.
    pub fn load(&self, key: &CacheKey) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let prefix = key.entry_prefix();
        if !text.starts_with(&prefix) || !text.ends_with(ENTRY_SUFFIX) {
            return None;
        }
        let payload = text.get(prefix.len()..text.len() - ENTRY_SUFFIX.len())?;
        Some(payload.to_string())
    }

    /// Store `payload` under `key`, overwriting any existing entry.
    ///
    /// The entry is written to a `.tmp` sibling and renamed into
    /// place, so readers only ever observe complete envelopes under
    /// the addressable name. Errors are returned for the caller to
    /// ignore or report; a failed write never corrupts an entry.
    pub fn save(&self, key: &CacheKey, payload: &str) -> io::Result<()> {
        let path = self.entry_path(key);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut tmp = path.clone();
        tmp.set_extension("json.tmp");
        fs::write(&tmp, key.entry_text(payload))?;
        fs::rename(&tmp, &path)
    }

    /// Walk the store in sorted order, classifying every file under
    /// the 2-hex prefix directories as a valid entry or not.
    ///
    /// `remove_invalid` is the `gc` mode: invalid files are deleted
    /// and prefix directories left empty are removed.
    fn walk(&self, remove_invalid: bool) -> CacheStats {
        let mut stats = CacheStats::default();
        for prefix_dir in sorted_children(&self.root, is_prefix_dir_name) {
            let mut survivors = 0u64;
            for file in sorted_children(&prefix_dir, |_| true) {
                if !file.is_file() {
                    survivors += 1;
                    continue;
                }
                if entry_file_is_valid(&file) {
                    stats.entries += 1;
                    stats.bytes += fs::metadata(&file).map(|m| m.len()).unwrap_or(0);
                    survivors += 1;
                } else {
                    stats.invalid += 1;
                    // An invalid file survives unless gc mode unlinks
                    // it; any survivor blocks directory pruning.
                    if !(remove_invalid && fs::remove_file(&file).is_ok()) {
                        survivors += 1;
                    }
                }
            }
            if remove_invalid && survivors == 0 {
                let _ = fs::remove_dir(&prefix_dir);
            }
        }
        stats
    }

    /// Count valid entries, their total bytes, and invalid files.
    pub fn stats(&self) -> CacheStats {
        self.walk(false)
    }

    /// Remove every file no current key can address — wrong schema
    /// version, corrupt envelope, filename/hash mismatch, leftover
    /// temp files — and prune emptied prefix directories.
    pub fn gc(&self) -> GcOutcome {
        let stats = self.walk(true);
        GcOutcome {
            kept: stats.entries,
            removed: stats.invalid,
        }
    }

    /// Remove **all** files under the store's prefix directories
    /// (valid or not) and the directories themselves. Returns the
    /// number of files removed. Files in the root that don't belong to
    /// the store layout are left untouched.
    pub fn clear(&self) -> u64 {
        let mut removed = 0u64;
        for prefix_dir in sorted_children(&self.root, is_prefix_dir_name) {
            for file in sorted_children(&prefix_dir, |_| true) {
                if file.is_file() && fs::remove_file(&file).is_ok() {
                    removed += 1;
                }
            }
            let _ = fs::remove_dir(&prefix_dir);
        }
        removed
    }
}

/// Is `name` a 2-lowercase-hex-digit store prefix directory name?
fn is_prefix_dir_name(name: &str) -> bool {
    name.len() == 2
        && name
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Sorted child paths of `dir` whose (UTF-8) file name passes `keep`.
/// A missing or unreadable directory yields no children.
fn sorted_children(dir: &Path, keep: impl Fn(&str) -> bool) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let name_ok = path.file_name().and_then(|n| n.to_str()).is_some_and(&keep);
            if name_ok {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Full validity check for one entry file: envelope parses under the
/// current schema, regenerated prefix byte-matches, and the filename
/// is `<hash_hex>.json` for the embedded key.
fn entry_file_is_valid(path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let Some(key) = parse_entry_key(&text) else {
        return false;
    };
    path.file_name().and_then(|n| n.to_str()) == Some(format!("{}.json", key.hash_hex()).as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn key(tag: &str) -> CacheKey {
        CacheKey {
            kind: "sim".to_string(),
            config: format!("{{\n  \"kind\": \"{tag}\"\n}}\n"),
            workload: "SPEC2K6-00".to_string(),
            instructions: 500_000,
            warmup: 100_000,
        }
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // Golden value: guards the hash function and the canonical key
        // rendering against accidental change (which would silently
        // orphan every existing cache entry without a schema bump).
        let k = key("golden");
        assert_eq!(k.hash(), fnv1a_128(k.canonical_text().as_bytes()));
        let again = key("golden");
        assert_eq!(k.hash_hex(), again.hash_hex());
        assert_eq!(k.hash_hex().len(), 32);
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET_BASIS);
        // A vector computable by hand from the FNV-1a definition.
        assert_eq!(
            fnv1a_128(b"a"),
            (FNV128_OFFSET_BASIS ^ b'a' as u128).wrapping_mul(FNV128_PRIME)
        );
    }

    #[test]
    fn every_key_field_changes_the_hash() {
        let base = key("base");
        let mut variants = vec![base.clone()];
        let mut k = base.clone();
        k.kind = "report".into();
        variants.push(k);
        let mut k = base.clone();
        k.config.push('x');
        variants.push(k);
        let mut k = base.clone();
        k.workload = "SPEC2K6-01".into();
        variants.push(k);
        let mut k = base.clone();
        k.instructions += 1;
        variants.push(k);
        let mut k = base.clone();
        k.warmup += 1;
        variants.push(k);
        let mut hexes: Vec<String> = variants.iter().map(|k| k.hash_hex()).collect();
        hexes.sort();
        hexes.dedup();
        assert_eq!(hexes.len(), variants.len(), "hash collision across fields");
    }

    #[test]
    fn escaper_matches_bp_components_json_string() {
        let samples = [
            "",
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nreturn\rtab\t",
            "control\u{1}\u{1f}",
            "unicode \u{1F600} ok",
        ];
        for s in samples {
            let mut ours = String::new();
            push_json_string(&mut ours, s);
            assert_eq!(ours, bp_components::json_string(s), "{s:?}");
        }
    }

    #[test]
    fn json_string_round_trips_through_reader() {
        let samples = ["", "plain", "q\"b\\n\nr\rt\t", "ctl\u{2}", "☃ snow"];
        for s in samples {
            let mut rendered = String::new();
            push_json_string(&mut rendered, s);
            let (decoded, end) = read_json_string(&rendered, 0).expect("read back");
            assert_eq!(decoded, s);
            assert_eq!(end, rendered.len());
        }
    }

    #[test]
    fn save_load_round_trip_and_miss_on_other_key() {
        let dir = scratch_dir("roundtrip");
        let store = CacheStore::new(&dir);
        let k = key("roundtrip");
        assert_eq!(store.load(&k), None, "empty store must miss");
        store.save(&k, "{\"mpki\": 1}").expect("save");
        assert_eq!(store.load(&k).as_deref(), Some("{\"mpki\": 1}"));
        assert_eq!(store.load(&key("other")), None);
        // Overwrite wins.
        store.save(&k, "{\"mpki\": 2}").expect("resave");
        assert_eq!(store.load(&k).as_deref(), Some("{\"mpki\": 2}"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_under_right_name_is_a_miss() {
        // Simulates a full 128-bit hash collision: an entry stored at
        // this key's path but carrying a different embedded key must
        // read as a miss, never as the other key's payload.
        let dir = scratch_dir("collision");
        let store = CacheStore::new(&dir);
        let ours = key("ours");
        let theirs = key("theirs");
        let path = store.entry_path(&ours);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, theirs.entry_text("{\"mpki\": 9}")).expect("plant");
        assert_eq!(store.load(&ours), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_bitflipped_entries_are_misses() {
        let dir = scratch_dir("corrupt");
        let store = CacheStore::new(&dir);
        let k = key("corrupt");
        store.save(&k, "{\"mpki\": 3}").expect("save");
        let path = store.entry_path(&k);
        let good = fs::read(&path).expect("read");
        // Truncation at every prefix length (sampled) must miss or, if
        // the cut lands inside the payload region, still verify the
        // suffix and miss.
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            fs::write(&path, &good[..cut]).expect("truncate");
            assert_eq!(store.load(&k), None, "cut at {cut}");
        }
        // A bit flip anywhere in the envelope prefix or suffix must
        // miss. (Payload flips are detected by the caller's parser.)
        let prefix_len = k.entry_prefix().len();
        for pos in [0usize, 5, prefix_len / 2, prefix_len - 1, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            fs::write(&path, &bad).expect("flip");
            assert_eq!(store.load(&k), None, "flip at {pos}");
        }
        // Restoring the good bytes restores the hit.
        fs::write(&path, &good).expect("restore");
        assert_eq!(store.load(&k).as_deref(), Some("{\"mpki\": 3}"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_gc_clear_lifecycle() {
        let dir = scratch_dir("lifecycle");
        let store = CacheStore::new(&dir);
        for i in 0..5 {
            store
                .save(&key(&format!("k{i}")), "{\"mpki\": 0}")
                .expect("save");
        }
        let clean = store.stats();
        assert_eq!(clean.entries, 5);
        assert_eq!(clean.invalid, 0);
        assert!(clean.bytes > 0);

        // Corrupt one entry, plant a leftover temp file and a foreign
        // file in the root; gc removes the first two, ignores the
        // third.
        let victim = store.entry_path(&key("k0"));
        fs::write(&victim, "not an envelope").expect("corrupt");
        let tmpdir = dir.join("ab");
        fs::create_dir_all(&tmpdir).expect("mkdir");
        fs::write(tmpdir.join("stray.json.tmp"), "half-written").expect("tmp");
        fs::write(dir.join("README"), "not part of the store").expect("foreign");

        let dirty = store.stats();
        assert_eq!(dirty.entries, 4);
        assert_eq!(dirty.invalid, 2);

        let gc = store.gc();
        assert_eq!(gc.kept, 4);
        assert_eq!(gc.removed, 2);
        let after = store.stats();
        assert_eq!((after.entries, after.invalid), (4, 0));
        assert!(!tmpdir.exists(), "emptied prefix dir is pruned");
        assert!(dir.join("README").exists(), "foreign files untouched");

        assert_eq!(store.clear(), 4);
        let empty = store.stats();
        assert_eq!((empty.entries, empty.invalid), (0, 0));
        assert!(dir.join("README").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_entry_key_rejects_other_schema_versions() {
        let k = key("schema");
        let good = k.entry_text("{}");
        assert_eq!(parse_entry_key(&good), Some(k));
        let bumped = good.replacen(
            &format!("\"bp-cache\": {CACHE_SCHEMA_VERSION}"),
            &format!("\"bp-cache\": {}", CACHE_SCHEMA_VERSION + 1),
            1,
        );
        assert_eq!(parse_entry_key(&bumped), None);
    }

    #[test]
    fn payload_round_trips_exactly_even_with_tricky_bytes() {
        let dir = scratch_dir("payload");
        let store = CacheStore::new(&dir);
        let k = key("payload");
        // Payloads containing things that look like the envelope
        // suffix must still slice back out exactly.
        let tricky = "{\n  \"x\": \"\n}\n\"\n}";
        store.save(&k, tricky).expect("save");
        assert_eq!(store.load(&k).as_deref(), Some(tricky));
        let _ = fs::remove_dir_all(&dir);
    }
}
