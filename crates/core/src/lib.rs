//! # IMLI predictor components
//!
//! This crate implements the contribution of *"The Inner Most Loop
//! Iteration counter: a new dimension in branch history"* (Seznec,
//! San Miguel, Albericio; MICRO 2015):
//!
//! * [`ImliCounter`] — the fetch-time Inner Most Loop Iteration counter
//!   (§4.1): the number of consecutive *taken* occurrences of the most
//!   recent backward conditional branch;
//! * [`ImliSic`] — the Same Iteration Correlation table (§4.2): a single
//!   `hash(PC, IMLIcount)`-indexed table added to a neural summation;
//! * [`ImliOh`] + [`OuterHistory`] + its PIPE vector (§4.3): the Outer
//!   History component tracking `Out[N-1][M]` and `Out[N-1][M-1]` for
//!   branches in two-dimensional loop nests — the correlations the
//!   wormhole predictor targets;
//! * [`ImliState`] — the bundle a host predictor embeds; it exposes the
//!   paper's tiny speculative checkpoint ([`ImliCheckpoint`]: 10-bit
//!   counter + 16-bit PIPE, §4.4) and an optional delayed-update mode for
//!   the outer-history table (§4.3.2).
//!
//! The components plug into any neural-inspired host through
//! [`bp_components::SumComponent`]; the `bp-tage` and `bp-gehl` crates
//! embed them into TAGE-GSC and GEHL exactly as the paper's Figures 5
//! and 6 depict.
//!
//! ## Example: tracking a 2-D loop nest
//!
//! ```
//! use imli::{ImliConfig, ImliState};
//! use bp_trace::BranchRecord;
//!
//! let mut state = ImliState::new(&ImliConfig::default());
//! // Three inner iterations (backward branch taken), then loop exit.
//! let inner = |taken| BranchRecord::conditional(0x110, 0x100, taken);
//! for m in 0..3 {
//!     assert_eq!(state.counter().value(), m);
//!     state.observe(&inner(true));
//! }
//! state.observe(&inner(false)); // inner loop exits
//! assert_eq!(state.counter().value(), 0);
//! ```

#![warn(missing_docs)]

mod config;
mod counter;
mod outer;
mod sic;
mod state;

pub use config::ImliConfig;
pub use counter::ImliCounter;
pub use outer::{ImliOh, OuterHistory};
pub use sic::ImliSic;
pub use state::{ImliCheckpoint, ImliState};
