//! The embeddable IMLI bundle and its speculative checkpoint.

use crate::config::ImliConfig;
use crate::counter::ImliCounter;
use crate::outer::{ImliOh, OuterHistory};
use crate::sic::ImliSic;
use bp_components::{StorageItem, SumComponent, SumCtx};
use bp_trace::BranchRecord;

/// Speculative checkpoint of the IMLI state: the counter and the PIPE
/// vector — **26 bits** in the paper's configuration (§4.4), versus the
/// per-in-flight-branch associative state a local-history or wormhole
/// predictor would need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImliCheckpoint {
    counter: u32,
    pipe: u16,
}

impl ImliCheckpoint {
    /// The IMLI counter value captured in this checkpoint.
    pub fn counter(&self) -> u32 {
        self.counter
    }

    /// The PIPE vector captured in this checkpoint.
    pub fn pipe(&self) -> u16 {
        self.pipe
    }
}

/// The complete IMLI mechanism as embedded in a host predictor: the
/// fetch-time counter, the outer-history structures, and the two
/// prediction components.
///
/// Host protocol, per conditional branch:
///
/// 1. [`fill_ctx`](ImliState::fill_ctx) before reading the summation
///    (loads `imli_count`, `Out[N-1][M]`, `Out[N-1][M-1]` into the
///    [`SumCtx`]);
/// 2. [`read`](ImliState::read) as part of the adder tree;
/// 3. on resolution, [`train`](ImliState::train) (gated by the host's
///    update threshold) and then [`observe`](ImliState::observe) exactly
///    once per branch (this writes the outer history and moves the
///    counter).
///
/// Non-conditional branches may be passed to `observe` too; they are
/// ignored, matching the paper's backward-*conditional* heuristic.
#[derive(Debug, Clone)]
pub struct ImliState {
    counter: ImliCounter,
    outer: OuterHistory,
    sic: Option<ImliSic>,
    oh: Option<ImliOh>,
    config: ImliConfig,
}

impl ImliState {
    /// Builds the bundle from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ImliConfig::validate`].
    pub fn new(config: &ImliConfig) -> Self {
        config.validate();
        ImliState {
            counter: ImliCounter::new(config.counter_bits),
            outer: OuterHistory::new(
                config.outer_history_bits,
                config.pipe_bits,
                config.outer_history_update_delay,
            ),
            sic: config
                .sic_enabled
                .then(|| ImliSic::new(config.sic_entries, config.sic_counter_bits)),
            oh: config
                .oh_enabled
                .then(|| ImliOh::new(config.oh_entries, config.oh_counter_bits)),
            config: *config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ImliConfig {
        &self.config
    }

    /// Read-only access to the IMLI counter.
    pub fn counter(&self) -> &ImliCounter {
        &self.counter
    }

    /// Read-only access to the outer-history structures.
    pub fn outer_history(&self) -> &OuterHistory {
        &self.outer
    }

    /// Loads the IMLI fields of `ctx` for a prediction of the branch at
    /// `ctx.pc`.
    pub fn fill_ctx(&self, ctx: &mut SumCtx) {
        ctx.imli_count = self.counter.value();
        if self.config.oh_enabled {
            ctx.oh_same = self.outer.same_iteration(ctx.pc, ctx.imli_count);
            ctx.oh_prev = self.outer.previous_iteration(ctx.pc);
        } else {
            ctx.oh_same = false;
            ctx.oh_prev = false;
        }
    }

    /// Summed contribution of the enabled IMLI components.
    pub fn read(&self, ctx: &SumCtx) -> i32 {
        let mut sum = 0;
        if let Some(sic) = &self.sic {
            sum += sic.read(ctx);
        }
        if let Some(oh) = &self.oh {
            sum += oh.read(ctx);
        }
        sum
    }

    /// Trains the enabled components toward `taken`.
    pub fn train(&mut self, ctx: &SumCtx, taken: bool) {
        if let Some(sic) = &mut self.sic {
            sic.train(ctx, taken);
        }
        if let Some(oh) = &mut self.oh {
            oh.train(ctx, taken);
        }
    }

    /// Observes a resolved branch: writes the outer history (for
    /// conditionals, using the fetch-time counter value) and then applies
    /// the §4.1 counter heuristic. Call exactly once per branch record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.is_conditional() {
            if self.config.oh_enabled {
                self.outer
                    .update(record.pc, self.counter.value(), record.taken);
            }
            self.counter.observe(record);
        }
    }

    /// Fetch-time (speculative) observation: advances only the IMLI
    /// counter, which is the structure a fetch engine updates with
    /// *predicted* directions (§4.2.1). Commit-time structures — the
    /// outer-history table and PIPE — are written by
    /// [`ImliState::observe`] when the branch retires, so wrong-path
    /// branches never touch them. A pipeline model calls this on the
    /// fetch path and repairs mispredictions with
    /// [`ImliState::restore`].
    pub fn observe_speculative(&mut self, record: &BranchRecord) {
        if record.is_conditional() {
            self.counter.observe(record);
        }
    }

    /// Takes the speculative checkpoint (counter + PIPE).
    pub fn checkpoint(&self) -> ImliCheckpoint {
        ImliCheckpoint {
            counter: self.counter.value(),
            pipe: self.outer.pipe(),
        }
    }

    /// Restores a checkpoint after a misprediction. The outer-history
    /// *bit table* is deliberately not restored: the paper shows precise
    /// management is unnecessary (§4.3.2) because the relevant branches
    /// sit in long loops whose previous-outer outcomes committed long ago.
    pub fn restore(&mut self, cp: &ImliCheckpoint) {
        self.counter.set(cp.counter);
        self.outer.set_pipe(cp.pipe);
    }

    /// Checkpoint width in bits (the paper's 10 + 16 = 26).
    pub fn checkpoint_bits(&self) -> u64 {
        self.config.checkpoint_bits()
    }

    /// Erases the fetch-engine history state (a context-switch flush):
    /// the IMLI counter and the outer-history PIPE both reset to 0. The
    /// outer-history *bit table* and SIC/OH prediction tables survive —
    /// the same asymmetry as [`ImliState::restore`] (§4.3.2): flushes
    /// model losing the in-flight fetch state, while learned SRAM
    /// content persists across the switch and aliases.
    pub fn flush_history(&mut self) {
        self.counter.set(0);
        self.outer.set_pipe(0);
    }

    /// Storage of the enabled structures in bits.
    pub fn storage_bits(&self) -> u64 {
        let mut bits = self.counter.bits() as u64;
        if let Some(sic) = &self.sic {
            bits += sic.storage_bits();
        }
        if let Some(oh) = &self.oh {
            bits += oh.storage_bits() + self.outer.storage_bits();
        }
        bits
    }

    /// Labels and sizes of the enabled components, for budget tables.
    pub fn budget_breakdown(&self) -> Vec<(String, u64)> {
        let mut parts = vec![("imli-counter".to_owned(), self.counter.bits() as u64)];
        if let Some(sic) = &self.sic {
            parts.push((sic.label().to_owned(), sic.storage_bits()));
        }
        if let Some(oh) = &self.oh {
            parts.push((oh.label().to_owned(), oh.storage_bits()));
            parts.push(("outer-history+pipe".to_owned(), self.outer.storage_bits()));
        }
        parts
    }

    /// [`budget_breakdown`](ImliState::budget_breakdown) as
    /// [`StorageItem`]s, for host predictors assembling their
    /// [`bp_components::StorageBudget`] itemization. Sums to exactly
    /// [`storage_bits`](ImliState::storage_bits).
    pub fn storage_items(&self) -> Vec<StorageItem> {
        self.budget_breakdown()
            .into_iter()
            .map(|(label, bits)| StorageItem::new(label, bits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn backward(taken: bool) -> BranchRecord {
        BranchRecord::conditional(0x210, 0x200, taken)
    }

    fn body(pc: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(pc, pc + 0x40, taken)
    }

    #[test]
    fn protocol_learns_diagonal_correlation() {
        // Out[N][M] = Out[N-1][M-1]: the wormhole-style correlation the
        // IMLI-OH component exists for. Simulate a 2-D nest of 32 inner
        // iterations with a pseudo-random diagonal pattern and check the
        // component predicts the body branch correctly once warm.
        let mut state = ImliState::new(&ImliConfig::default());
        let body_pc = 0x4008u64;
        let inner_trips = 32;
        let mut pattern: Vec<bool> = (0..inner_trips + 64).map(|i| (i * 7) % 3 == 0).collect();
        let mut correct = 0u32;
        let mut total = 0u32;
        for n in 0..200 {
            for m in 0..inner_trips {
                // Body branch: outcome = pattern shifted by outer index.
                let taken = pattern[m + 1];
                let mut ctx = SumCtx {
                    pc: body_pc,
                    ..SumCtx::default()
                };
                state.fill_ctx(&mut ctx);
                let pred = state.read(&ctx) >= 0;
                if n > 50 {
                    total += 1;
                    correct += u32::from(pred == taken);
                }
                state.train(&ctx, taken);
                state.observe(&body(body_pc, taken));
                // Inner loop backward branch.
                state.observe(&backward(m + 1 < inner_trips));
            }
            // Shift the pattern: next outer iteration sees it moved by 1,
            // so Out[N][M] == Out[N-1][M-1].
            pattern.rotate_left(1);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(
            acc > 0.95,
            "IMLI-OH should nail the diagonal correlation, got {acc:.3}"
        );
    }

    #[test]
    fn counter_resets_across_outer_iterations() {
        let mut state = ImliState::new(&ImliConfig::default());
        for _ in 0..3 {
            state.observe(&backward(true));
        }
        assert_eq!(state.counter().value(), 3);
        state.observe(&backward(false));
        assert_eq!(state.counter().value(), 0);
    }

    #[test]
    fn checkpoint_restores_counter_and_pipe() {
        let mut state = ImliState::new(&ImliConfig::default());
        for _ in 0..5 {
            state.observe(&backward(true));
        }
        state.observe(&body(0x4008, true));
        let cp = state.checkpoint();
        assert_eq!(cp.counter(), 5);
        // Wrong path: counter moves, pipe may move.
        for _ in 0..20 {
            state.observe(&backward(true));
            state.observe(&body(0x4008, false));
        }
        state.restore(&cp);
        assert_eq!(state.counter().value(), 5);
        assert_eq!(state.outer_history().pipe(), cp.pipe());
        assert_eq!(state.checkpoint_bits(), 26);
    }

    #[test]
    fn storage_matches_config() {
        let state = ImliState::new(&ImliConfig::default());
        // Everything except the 6 rounding bits of the paper's "4 bytes
        // for PIPE + counter" line item.
        assert_eq!(state.storage_bits(), 10 + 3072 + 1536 + 1024 + 16);
        let breakdown = state.budget_breakdown();
        assert_eq!(breakdown.len(), 4);
        let total: u64 = breakdown.iter().map(|(_, b)| b).sum();
        assert_eq!(total, state.storage_bits());
    }

    #[test]
    fn disabled_components_cost_nothing_and_read_zero() {
        let sic_only = ImliState::new(&ImliConfig::sic_only());
        let ctx = SumCtx {
            pc: 0x40,
            ..SumCtx::default()
        };
        // SIC-only read is the single centered counter: odd, never 0.
        assert_eq!(sic_only.read(&ctx).abs() % 2, 1);
        assert_eq!(sic_only.storage_bits(), 10 + 3072);
        assert_eq!(sic_only.checkpoint_bits(), 10);

        let oh_only = ImliState::new(&ImliConfig::oh_only());
        assert_eq!(oh_only.storage_bits(), 10 + 1536 + 1024 + 16);
    }

    #[test]
    fn fill_ctx_without_oh_clears_bits() {
        let mut state = ImliState::new(&ImliConfig::sic_only());
        let mut ctx = SumCtx {
            pc: 0x40,
            oh_same: true,
            oh_prev: true,
            ..SumCtx::default()
        };
        state.observe(&backward(true));
        state.fill_ctx(&mut ctx);
        assert!(!ctx.oh_same && !ctx.oh_prev);
        assert_eq!(ctx.imli_count, 1);
    }

    proptest! {
        /// Checkpoint/restore always brings counter and PIPE back, for
        /// arbitrary branch streams.
        #[test]
        fn checkpoint_round_trips(
            good in proptest::collection::vec((any::<bool>(), 0u64..64), 0..100),
            wrong in proptest::collection::vec((any::<bool>(), 0u64..64), 0..100),
        ) {
            let mut state = ImliState::new(&ImliConfig::default());
            for &(taken, pcsel) in &good {
                let pc = 0x1000 + pcsel * 4;
                let target = if pcsel % 2 == 0 { pc - 0x100 } else { pc + 0x100 };
                state.observe(&BranchRecord::conditional(pc, target, taken));
            }
            let cp = state.checkpoint();
            for &(taken, pcsel) in &wrong {
                let pc = 0x1000 + pcsel * 4;
                let target = if pcsel % 2 == 0 { pc - 0x100 } else { pc + 0x100 };
                state.observe(&BranchRecord::conditional(pc, target, taken));
            }
            state.restore(&cp);
            prop_assert_eq!(state.counter().value(), cp.counter());
            prop_assert_eq!(state.outer_history().pipe(), cp.pipe());
        }
    }
}
