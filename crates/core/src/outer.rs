//! The IMLI-OH (Outer History) component (paper §4.3).

use bp_components::{fold_u64, mix64, pc_bits, SignedCounterTable, SumComponent, SumCtx};
use std::collections::VecDeque;

/// The outer-history bit table and its PIPE vector.
///
/// For a branch `B` at inner iteration `M` (the IMLI counter value), the
/// outcome is stored at `(hash(B) << log2(iterations)) + M` in a small bit
/// table (1 Kbit by default, tracking 16 static branches × 64 iterations).
/// Reading that slot *before* it is overwritten yields `Out[N-1][M]` — the
/// outcome of the same branch at the same inner iteration in the
/// *previous outer iteration*.
///
/// `Out[N-1][M-1]` would already be overwritten by `Out[N][M-1]`, so when
/// the update of iteration `M-1` overwrites the slot, the *previous*
/// content moves into the PIPE (Previous Inner iteration in Previous
/// External iteration) vector, one bit per tracked branch.
///
/// Speculation (paper §4.3.2): only the 16-bit PIPE vector needs
/// checkpointing; the bit table tolerates stale reads because the
/// branches that benefit sit in long-running loops whose previous-outer
/// outcomes committed long ago. [`OuterHistory::set_update_delay`] models
/// that commit delay explicitly.
#[derive(Debug, Clone)]
pub struct OuterHistory {
    table: Vec<u64>,
    pipe: u16,
    pipe_mask: u32,
    iter_shift: u32,
    iter_mask: u32,
    table_mask: u32,
    delay: usize,
    pending: VecDeque<(u32, u32, bool)>,
}

impl OuterHistory {
    /// Creates an outer-history structure of `table_bits` outcome bits
    /// shared by `pipe_bits` tracked static branches, with updates applied
    /// after `delay` subsequent conditional branches (0 = immediate).
    ///
    /// # Panics
    ///
    /// Panics if the sizes are not powers of two, `table_bits < 64`, or
    /// `pipe_bits` exceeds 16 or `table_bits`.
    pub fn new(table_bits: usize, pipe_bits: usize, delay: usize) -> Self {
        assert!(
            table_bits.is_power_of_two() && table_bits >= 64,
            "table size must be a power of two >= 64"
        );
        assert!(
            pipe_bits.is_power_of_two() && pipe_bits <= 16 && pipe_bits <= table_bits,
            "pipe width must be a power of two <= 16 and <= table size"
        );
        let iterations = table_bits / pipe_bits;
        OuterHistory {
            table: vec![0; table_bits / 64],
            pipe: 0,
            pipe_mask: pipe_bits as u32 - 1,
            iter_shift: iterations.trailing_zeros(),
            iter_mask: iterations as u32 - 1,
            table_mask: table_bits as u32 - 1,
            delay,
            pending: VecDeque::new(),
        }
    }

    /// Hash of a branch PC onto a tracked-branch slot.
    #[inline]
    fn branch_slot(&self, pc: u64) -> u32 {
        (fold_u64(pc_bits(pc), 4) as u32) & self.pipe_mask
    }

    #[inline]
    fn bit_index(&self, slot: u32, imli: u32) -> u32 {
        ((slot << self.iter_shift) | (imli & self.iter_mask)) & self.table_mask
    }

    #[inline]
    fn read_bit(&self, idx: u32) -> bool {
        (self.table[(idx / 64) as usize] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    fn write_bit(&mut self, idx: u32, v: bool) {
        let word = (idx / 64) as usize;
        let bit = idx % 64;
        if v {
            self.table[word] |= 1 << bit;
        } else {
            self.table[word] &= !(1 << bit);
        }
    }

    /// `Out[N-1][M]` for branch `pc` at inner iteration `imli`.
    #[inline]
    pub fn same_iteration(&self, pc: u64, imli: u32) -> bool {
        let slot = self.branch_slot(pc);
        self.read_bit(self.bit_index(slot, imli))
    }

    /// `Out[N-1][M-1]` for branch `pc` (from the PIPE vector).
    #[inline]
    pub fn previous_iteration(&self, pc: u64) -> bool {
        (self.pipe >> self.branch_slot(pc)) & 1 == 1
    }

    /// Records the resolved outcome of branch `pc` at inner iteration
    /// `imli`.
    ///
    /// The PIPE move is *fetch-side* state (paper §4.3.1): the engine
    /// saves the about-to-be-overwritten `Out[N-1][M]` into the PIPE the
    /// moment it processes iteration `M`, so the next iteration can still
    /// read `Out[N-1][M-1]` even though the bit-table *write* of
    /// `Out[N][M]` is a commit-side operation. With a configured delay
    /// the write is therefore queued and lands only after `delay` further
    /// calls (§4.3.2's large-instruction-window model), while the PIPE
    /// updates immediately.
    pub fn update(&mut self, pc: u64, imli: u32, taken: bool) {
        let slot = self.branch_slot(pc);
        let idx = self.bit_index(slot, imli);
        // Fetch-side: move the previous-outer outcome into the PIPE now.
        let previous = self.read_bit(idx);
        self.pipe = (self.pipe & !(1 << slot)) | (u16::from(previous) << slot);
        if self.delay == 0 {
            self.write_bit(idx, taken);
        } else {
            self.pending.push_back((slot, idx, taken));
            while self.pending.len() > self.delay {
                let (_, i, t) = self.pending.pop_front().expect("non-empty queue");
                self.write_bit(i, t);
            }
        }
    }

    /// The raw PIPE vector (the checkpointed speculative state).
    #[inline]
    pub fn pipe(&self) -> u16 {
        self.pipe
    }

    /// Restores the PIPE vector from a checkpoint.
    pub fn set_pipe(&mut self, pipe: u16) {
        self.pipe = pipe;
    }

    /// Reconfigures the commit delay (pending updates are preserved).
    pub fn set_update_delay(&mut self, delay: usize) {
        self.delay = delay;
        while self.pending.len() > self.delay {
            let (_, i, t) = self.pending.pop_front().expect("non-empty queue");
            self.write_bit(i, t);
        }
    }

    /// Number of distinct static branches tracked.
    pub fn tracked_branches(&self) -> usize {
        self.pipe_mask as usize + 1
    }

    /// Iterations tracked per branch.
    pub fn iterations_per_branch(&self) -> usize {
        self.iter_mask as usize + 1
    }

    /// Storage in bits: bit table + PIPE vector.
    pub fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 64 + u64::from(self.pipe_mask) + 1
    }
}

/// The IMLI-OH prediction component: a signed-counter table indexed with
/// the PC hashed with `Out[N-1][M]` and `Out[N-1][M-1]` (paper Figure 12).
///
/// The two outer-history bits arrive through [`SumCtx::oh_same`] and
/// [`SumCtx::oh_prev`], filled by the host from [`OuterHistory`]. Because
/// the bits *select* the counter rather than feed a fixed weight, the
/// component learns identity (`Out[N][M] = Out[N-1][M-1]`, the paper's
/// SPEC2K6-12/CLIENT02/MM07 cases) and inversion
/// (`Out[N][M] = 1 - Out[N-1][M]`, the MM-4 case) equally well.
#[derive(Debug, Clone)]
pub struct ImliOh {
    table: SignedCounterTable,
}

impl ImliOh {
    /// Creates the prediction table with `entries` counters of `bits`
    /// width (paper: 256 × 6 bits).
    ///
    /// # Panics
    ///
    /// Panics under [`SignedCounterTable::new`]'s conditions.
    pub fn new(entries: usize, bits: usize) -> Self {
        ImliOh {
            table: SignedCounterTable::new(entries, bits),
        }
    }

    #[inline]
    fn index(ctx: &SumCtx) -> u64 {
        let key = pc_bits(ctx.pc) ^ (u64::from(ctx.oh_same) << 61) ^ (u64::from(ctx.oh_prev) << 62);
        mix64(key)
    }
}

impl SumComponent for ImliOh {
    fn read(&self, ctx: &SumCtx) -> i32 {
        self.table.read(Self::index(ctx))
    }

    fn train(&mut self, ctx: &SumCtx, taken: bool) {
        self.table.train(Self::index(ctx), taken);
    }

    fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    fn label(&self) -> &str {
        "imli-oh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_iteration_survives_one_outer_iteration() {
        let mut oh = OuterHistory::new(1024, 16, 0);
        let pc = 0x4004;
        // Outer iteration N-1: record outcomes for iterations 0..8.
        for m in 0..8 {
            oh.update(pc, m, m % 3 == 0);
        }
        // Outer iteration N: before updating slot m, we read Out[N-1][m].
        for m in 0..8 {
            assert_eq!(oh.same_iteration(pc, m), m % 3 == 0);
            oh.update(pc, m, false);
        }
    }

    #[test]
    fn pipe_holds_previous_inner_iteration() {
        let mut oh = OuterHistory::new(1024, 16, 0);
        let pc = 0x4004;
        for m in 0..4 {
            oh.update(pc, m, m == 2); // N-1 outcomes: F F T F
        }
        // Outer iteration N: at iteration m, PIPE must hold Out[N-1][m-1].
        for m in 0..4u32 {
            if m > 0 {
                assert_eq!(oh.previous_iteration(pc), m - 1 == 2, "PIPE wrong at m={m}");
            }
            oh.update(pc, m, false);
        }
    }

    #[test]
    fn distinct_branches_use_distinct_slots() {
        let mut oh = OuterHistory::new(1024, 16, 0);
        // Find two PCs with different slots.
        let a = 0x4000u64;
        let mut b = 0x4004u64;
        while oh.branch_slot(b) == oh.branch_slot(a) {
            b += 4;
        }
        oh.update(a, 0, true);
        oh.update(b, 0, false);
        assert!(oh.same_iteration(a, 0));
        assert!(!oh.same_iteration(b, 0));
    }

    #[test]
    fn delayed_updates_land_after_delay() {
        let mut oh = OuterHistory::new(1024, 16, 3);
        let pc = 0x40;
        oh.update(pc, 0, true);
        assert!(!oh.same_iteration(pc, 0), "update still pending");
        oh.update(pc, 1, true);
        oh.update(pc, 2, true);
        oh.update(pc, 3, true); // queue exceeds delay: first write lands
        assert!(oh.same_iteration(pc, 0));
        assert!(!oh.same_iteration(pc, 3));
    }

    #[test]
    fn set_update_delay_flushes_excess() {
        let mut oh = OuterHistory::new(1024, 16, 10);
        for m in 0..5 {
            oh.update(0x40, m, true);
        }
        assert!(!oh.same_iteration(0x40, 0));
        oh.set_update_delay(0);
        assert!(oh.same_iteration(0x40, 4), "flush applies pending writes");
    }

    #[test]
    fn geometry_and_storage() {
        let oh = OuterHistory::new(1024, 16, 0);
        assert_eq!(oh.tracked_branches(), 16);
        assert_eq!(oh.iterations_per_branch(), 64);
        assert_eq!(oh.storage_bits(), 1024 + 16);
    }

    #[test]
    fn imli_counter_wraps_within_branch_region() {
        let mut oh = OuterHistory::new(1024, 16, 0);
        let pc = 0x4004;
        // Iteration 64 aliases iteration 0 for this branch — by design,
        // the table covers 64 iterations.
        oh.update(pc, 64, true);
        assert!(oh.same_iteration(pc, 0));
    }

    #[test]
    fn oh_component_learns_inversion() {
        // Out[N][M] = !Out[N-1][M]: counter indexed by oh_same learns the
        // inverted mapping.
        let mut oh = ImliOh::new(256, 6);
        let mut ctx = SumCtx {
            pc: 0x400,
            ..SumCtx::default()
        };
        for round in 0..50 {
            ctx.oh_same = round % 2 == 0;
            let taken = !ctx.oh_same;
            oh.train(&ctx, taken);
        }
        ctx.oh_same = true;
        assert!(oh.read(&ctx) < 0);
        ctx.oh_same = false;
        assert!(oh.read(&ctx) > 0);
        assert_eq!(oh.label(), "imli-oh");
        assert_eq!(oh.storage_bits(), 256 * 6);
    }

    #[test]
    #[should_panic(expected = "pipe width")]
    fn rejects_oversized_pipe() {
        let _ = OuterHistory::new(1024, 32, 0);
    }
}

#[cfg(test)]
mod delay_semantics_tests {
    use super::*;

    /// §4.3.1/§4.3.2: the PIPE is fetch-side state — it must expose
    /// `Out[N-1][M-1]` immediately even while the bit-table writes are
    /// commit-delayed.
    #[test]
    fn pipe_is_fetch_side_under_delay() {
        let mut immediate = OuterHistory::new(1024, 16, 0);
        let mut delayed = OuterHistory::new(1024, 16, 7);
        let pc = 0x4004;
        // One full outer iteration trains both tables identically once
        // the delayed queue drains.
        for m in 0..16 {
            immediate.update(pc, m, m % 3 == 0);
            delayed.update(pc, m, m % 3 == 0);
        }
        // Second outer iteration: before each update, the PIPE views
        // must agree (fetch-side), even though the delayed machine's
        // table writes lag by 7.
        for m in 0..8 {
            assert_eq!(
                immediate.previous_iteration(pc),
                delayed.previous_iteration(pc),
                "PIPE diverged at inner iteration {m}"
            );
            immediate.update(pc, m, m % 5 == 0);
            delayed.update(pc, m, m % 5 == 0);
        }
    }

    /// With a delay shorter than the outer period, the same-iteration
    /// read still returns the previous outer iteration's outcome (the
    /// write from one outer iteration ago has landed by then).
    #[test]
    fn same_iteration_reads_survive_short_delay() {
        let trip = 32u32;
        let mut oh = OuterHistory::new(1024, 16, 8); // 8 << 32
        let pc = 0x4004;
        let out = |n: u32, m: u32| (n * 31 + m * 7) % 5 < 2;
        for n in 0..4 {
            for m in 0..trip {
                if n > 0 {
                    assert_eq!(
                        oh.same_iteration(pc, m),
                        out(n - 1, m),
                        "stale read at outer {n}, inner {m}"
                    );
                }
                oh.update(pc, m, out(n, m));
            }
        }
    }

    /// With a delay *longer* than the outer period the reads go stale by
    /// a full outer iteration — the regime the paper excludes by noting
    /// OH-benefitting branches sit in long loops.
    #[test]
    fn same_iteration_reads_go_stale_past_outer_period() {
        let trip = 8u32;
        let mut oh = OuterHistory::new(1024, 16, 64); // 64 >> 8
        let pc = 0x4004;
        for n in 0..3u32 {
            for m in 0..trip {
                oh.update(pc, m, n == 1 && m == 3);
            }
        }
        // The outer-2 reads would want outer-1 data, but nothing from
        // outer 1 has committed yet.
        assert!(
            !oh.same_iteration(pc, 3),
            "write must still be in the commit queue"
        );
    }
}
