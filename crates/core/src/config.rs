//! Configuration of the IMLI components.

use bp_components::{ConfigError, ConfigValue};

/// Geometry of the IMLI components.
///
/// The default reproduces the paper's §4.4 budget of **708 bytes**:
/// 384 bytes of IMLI-SIC table, 128 bytes of outer-history table,
/// 192 bytes of IMLI-OH prediction table, and 4 bytes for the PIPE vector
/// plus the IMLI counter.
///
/// ```
/// use imli::ImliConfig;
/// let c = ImliConfig::default();
/// assert_eq!(c.storage_bits(), 708 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImliConfig {
    /// IMLI counter width in bits (paper: 10).
    pub counter_bits: usize,
    /// IMLI-SIC table entries (paper: 512).
    pub sic_entries: usize,
    /// IMLI-SIC counter width (paper: 6).
    pub sic_counter_bits: usize,
    /// Outer-history bit table size in bits (paper: 1 Kbit).
    pub outer_history_bits: usize,
    /// PIPE vector width: one bit per tracked static branch (paper: 16).
    pub pipe_bits: usize,
    /// IMLI-OH prediction table entries (paper: 256).
    pub oh_entries: usize,
    /// IMLI-OH counter width (paper: 6).
    pub oh_counter_bits: usize,
    /// Commit-delay (in conditional branches) applied to outer-history
    /// table updates; `0` models the idealized immediate update, the
    /// paper's §4.3.2 experiment uses 63.
    pub outer_history_update_delay: usize,
    /// Enable the IMLI-SIC component.
    pub sic_enabled: bool,
    /// Enable the IMLI-OH component.
    pub oh_enabled: bool,
}

impl Default for ImliConfig {
    fn default() -> Self {
        ImliConfig {
            counter_bits: 10,
            sic_entries: 512,
            sic_counter_bits: 6,
            outer_history_bits: 1024,
            pipe_bits: 16,
            oh_entries: 256,
            oh_counter_bits: 6,
            outer_history_update_delay: 0,
            sic_enabled: true,
            oh_enabled: true,
        }
    }
}

impl ImliConfig {
    /// Configuration with only the IMLI-SIC component active (the paper's
    /// "IMLI-SIC alone" bars in Figures 8-11).
    pub fn sic_only() -> Self {
        ImliConfig {
            oh_enabled: false,
            ..Self::default()
        }
    }

    /// Configuration with only the IMLI-OH component active (Figure 13's
    /// IMLI-OH-vs-WH comparison).
    pub fn oh_only() -> Self {
        ImliConfig {
            sic_enabled: false,
            ..Self::default()
        }
    }

    /// The §4.3.2 delayed-update experiment: outer-history updates land
    /// only after the next 63 conditional branches have been fetched.
    pub fn delayed_update(delay: usize) -> Self {
        ImliConfig {
            outer_history_update_delay: delay,
            ..Self::default()
        }
    }

    /// Total storage of the *enabled* components in bits, including the
    /// counter and PIPE vector.
    pub fn storage_bits(&self) -> u64 {
        let mut bits = self.counter_bits as u64;
        if self.sic_enabled {
            bits += (self.sic_entries * self.sic_counter_bits) as u64;
        }
        if self.oh_enabled {
            bits += self.outer_history_bits as u64
                + self.pipe_bits as u64
                + (self.oh_entries * self.oh_counter_bits) as u64
            // Round the counter+PIPE group up to the paper's 4 bytes.
                + (32 - self.counter_bits as u64 - self.pipe_bits as u64);
        }
        bits
    }

    /// Width of the speculative checkpoint in bits: the IMLI counter plus
    /// (when IMLI-OH is enabled) the PIPE vector — the paper's §4.4
    /// complexity argument.
    pub fn checkpoint_bits(&self) -> u64 {
        self.counter_bits as u64
            + if self.oh_enabled {
                self.pipe_bits as u64
            } else {
                0
            }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two, the counter width is
    /// outside `1..=16`, or the outer-history table cannot hold
    /// `pipe_bits` tracked branches of at least one iteration each.
    /// The non-panicking twin is [`ImliConfig::check`].
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // bp-lint: allow(panic-surface, "documented legacy panicking API; the validate-then-build path uses the non-panicking check()")
            panic!("{e}");
        }
    }

    /// Checks internal consistency, returning the first violation
    /// instead of panicking (the config-layer entry point; the
    /// constructors keep panicking via [`ImliConfig::validate`]).
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(self.sic_entries.is_power_of_two() && self.oh_entries.is_power_of_two()) {
            return Err("table entry counts must be powers of two".into());
        }
        if self.sic_entries > 1 << 24 || self.oh_entries > 1 << 24 {
            return Err("table entry counts must be at most 2^24".into());
        }
        if !self.outer_history_bits.is_power_of_two() {
            return Err("outer history size must be a power of two".into());
        }
        if self.outer_history_bits < 64 {
            // The outer-history structure is always constructed (IMLI-OH
            // merely gates its use), and it stores whole 64-bit words.
            return Err("outer history table must hold at least 64 bits".into());
        }
        if self.outer_history_bits > 1 << 24 {
            return Err("outer history table must hold at most 2^24 bits".into());
        }
        if !self.pipe_bits.is_power_of_two() || self.pipe_bits > 16 {
            return Err("pipe vector width must be a power of two <= 16".into());
        }
        if !(1..=16).contains(&self.counter_bits) {
            return Err("counter width must be in 1..=16".into());
        }
        if self.outer_history_bits < self.pipe_bits {
            return Err("outer history must cover every PIPE-tracked branch".into());
        }
        if !((1..=7).contains(&self.sic_counter_bits) && (1..=7).contains(&self.oh_counter_bits)) {
            return Err("counter widths must be in 1..=7".into());
        }
        Ok(())
    }

    /// Exact storage in bits of the *built*
    /// [`ImliState`](crate::ImliState) — its `storage_items` sum: the
    /// counter, the SIC table when enabled, and (when IMLI-OH is
    /// enabled) the OH prediction table plus the outer-history bit
    /// table and PIPE vector.
    ///
    /// This differs from [`ImliConfig::storage_bits`], which reproduces
    /// the paper's §4.4 *quoted* budget by rounding the counter+PIPE
    /// group up to 4 bytes; the config layer needs the exact built
    /// itemization.
    pub fn state_storage_bits(&self) -> u64 {
        let mut bits = self.counter_bits as u64;
        if self.sic_enabled {
            bits += (self.sic_entries * self.sic_counter_bits) as u64;
        }
        if self.oh_enabled {
            bits += (self.oh_entries * self.oh_counter_bits) as u64
                + self.outer_history_bits as u64
                + self.pipe_bits as u64;
        }
        bits
    }

    /// Serializes as a [`ConfigValue`] object.
    pub fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("counter_bits", ConfigValue::int(self.counter_bits))
            .set("sic_entries", ConfigValue::int(self.sic_entries))
            .set("sic_counter_bits", ConfigValue::int(self.sic_counter_bits))
            .set(
                "outer_history_bits",
                ConfigValue::int(self.outer_history_bits),
            )
            .set("pipe_bits", ConfigValue::int(self.pipe_bits))
            .set("oh_entries", ConfigValue::int(self.oh_entries))
            .set("oh_counter_bits", ConfigValue::int(self.oh_counter_bits))
            .set(
                "outer_history_update_delay",
                ConfigValue::int(self.outer_history_update_delay),
            )
            .set("sic_enabled", ConfigValue::Bool(self.sic_enabled))
            .set("oh_enabled", ConfigValue::Bool(self.oh_enabled))
    }

    /// Parses from a [`ConfigValue`] object (strict keys).
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "imli config",
            &[
                "counter_bits",
                "sic_entries",
                "sic_counter_bits",
                "outer_history_bits",
                "pipe_bits",
                "oh_entries",
                "oh_counter_bits",
                "outer_history_update_delay",
                "sic_enabled",
                "oh_enabled",
            ],
        )?;
        Ok(ImliConfig {
            counter_bits: value.req("counter_bits")?.as_usize("counter_bits")?,
            sic_entries: value.req("sic_entries")?.as_usize("sic_entries")?,
            sic_counter_bits: value
                .req("sic_counter_bits")?
                .as_usize("sic_counter_bits")?,
            outer_history_bits: value
                .req("outer_history_bits")?
                .as_usize("outer_history_bits")?,
            pipe_bits: value.req("pipe_bits")?.as_usize("pipe_bits")?,
            oh_entries: value.req("oh_entries")?.as_usize("oh_entries")?,
            oh_counter_bits: value.req("oh_counter_bits")?.as_usize("oh_counter_bits")?,
            outer_history_update_delay: value
                .req("outer_history_update_delay")?
                .as_usize("outer_history_update_delay")?,
            sic_enabled: value.req("sic_enabled")?.as_bool("sic_enabled")?,
            oh_enabled: value.req("oh_enabled")?.as_bool("oh_enabled")?,
        })
    }

    /// Iterations per tracked branch in the outer-history table
    /// (paper: 1024 / 16 = 64).
    pub fn iterations_per_branch(&self) -> usize {
        self.outer_history_bits / self.pipe_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_budget() {
        let c = ImliConfig::default();
        c.validate();
        // §4.4: 384 B SIC + 128 B OH history + 192 B OH table + 4 B
        // PIPE/counter = 708 bytes.
        assert_eq!(c.storage_bits(), 708 * 8);
        assert_eq!(c.checkpoint_bits(), 26);
        assert_eq!(c.iterations_per_branch(), 64);
    }

    #[test]
    fn sic_only_budget() {
        let c = ImliConfig::sic_only();
        c.validate();
        assert_eq!(c.storage_bits(), 512 * 6 + 10);
        assert_eq!(c.checkpoint_bits(), 10);
        assert!(!c.oh_enabled && c.sic_enabled);
    }

    #[test]
    fn oh_only_flags() {
        let c = ImliConfig::oh_only();
        c.validate();
        assert!(c.oh_enabled && !c.sic_enabled);
    }

    #[test]
    fn delayed_update_sets_delay() {
        assert_eq!(
            ImliConfig::delayed_update(63).outer_history_update_delay,
            63
        );
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn validate_rejects_bad_sizes() {
        ImliConfig {
            sic_entries: 500,
            ..ImliConfig::default()
        }
        .validate();
    }
}
