//! The Inner Most Loop Iteration counter (paper §4.1).

use bp_trace::BranchRecord;

/// The IMLI counter.
///
/// The paper's fetch-time heuristic: a loop body ends with a backward
/// conditional branch, and a loop is *inner-most* while no other backward
/// branch intervenes. The iteration index of the inner-most loop is then
/// simply the number of consecutive times the last backward conditional
/// branch was taken:
///
/// ```text
/// if (backward) { if (taken) IMLIcount++; else IMLIcount = 0; }
/// ```
///
/// The counter saturates at its configured width (10 bits by default, so
/// the checkpointed speculative state is 10 bits, §4.2.1).
///
/// ```
/// use imli::ImliCounter;
/// use bp_trace::BranchRecord;
/// let mut c = ImliCounter::new(10);
/// let back = |t| BranchRecord::conditional(0x200, 0x100, t);
/// c.observe(&back(true));
/// c.observe(&back(true));
/// assert_eq!(c.value(), 2);
/// c.observe(&back(false));
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImliCounter {
    value: u32,
    max: u32,
    bits: u8,
}

impl ImliCounter {
    /// Creates a counter of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: usize) -> Self {
        assert!((1..=16).contains(&bits), "counter width must be in 1..=16");
        ImliCounter {
            value: 0,
            max: (1u32 << bits) - 1,
            bits: bits as u8,
        }
    }

    /// The current inner-most-loop iteration index.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Width in bits (the checkpoint cost).
    pub fn bits(&self) -> usize {
        usize::from(self.bits)
    }

    /// Observes a branch. Only *backward conditional* branches move the
    /// counter, per the paper's heuristic; everything else leaves it
    /// untouched.
    #[inline]
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.is_conditional() && record.is_backward() {
            if record.taken {
                self.value = (self.value + 1).min(self.max);
            } else {
                self.value = 0;
            }
        }
    }

    /// Overwrites the value (checkpoint restore), clamping to the width.
    pub fn set(&mut self, value: u32) {
        self.value = value.min(self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn backward(taken: bool) -> BranchRecord {
        BranchRecord::conditional(0x1000, 0x800, taken)
    }

    fn forward(taken: bool) -> BranchRecord {
        BranchRecord::conditional(0x1000, 0x1800, taken)
    }

    #[test]
    fn counts_consecutive_taken_backward() {
        let mut c = ImliCounter::new(10);
        for i in 1..=5 {
            c.observe(&backward(true));
            assert_eq!(c.value(), i);
        }
        c.observe(&backward(false));
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn forward_branches_are_ignored() {
        let mut c = ImliCounter::new(10);
        c.observe(&backward(true));
        c.observe(&forward(true));
        c.observe(&forward(false));
        assert_eq!(c.value(), 1, "forward conditionals must not move IMLI");
    }

    #[test]
    fn nonconditional_backward_jumps_are_ignored() {
        // The paper's heuristic acts on backward *conditional* branches;
        // unconditional loop-back jumps (do/while compiled differently)
        // do not reset or advance the counter.
        let mut c = ImliCounter::new(10);
        c.observe(&backward(true));
        c.observe(&BranchRecord::unconditional(0x1000, 0x800));
        c.observe(&BranchRecord::ret(0x1000, 0x800));
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn saturates_at_width() {
        let mut c = ImliCounter::new(3);
        for _ in 0..100 {
            c.observe(&backward(true));
        }
        assert_eq!(c.value(), 7);
        assert_eq!(c.bits(), 3);
    }

    #[test]
    fn set_clamps_to_width() {
        let mut c = ImliCounter::new(4);
        c.set(1000);
        assert_eq!(c.value(), 15);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_zero_width() {
        let _ = ImliCounter::new(0);
    }

    proptest! {
        /// The counter always equals the length of the trailing run of
        /// taken outcomes among backward conditional branches (clamped).
        #[test]
        fn equals_trailing_taken_run(outcomes in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut c = ImliCounter::new(10);
            for &t in &outcomes {
                c.observe(&backward(t));
            }
            let run = outcomes.iter().rev().take_while(|&&t| t).count() as u32;
            prop_assert_eq!(c.value(), run.min(1023));
        }
    }
}
