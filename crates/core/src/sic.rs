//! The IMLI-SIC (Same Iteration Correlation) component (paper §4.2).

use bp_components::{mix64, pc_bits, SignedCounterTable, SumComponent, SumCtx};

/// The IMLI-SIC prediction table: signed counters indexed with a hash of
/// the branch PC and the IMLI counter.
///
/// It captures branches whose outcome (statistically) repeats for the same
/// inner-most-loop iteration index across outer iterations —
/// `Out[N][M] ≡ Out[N-1][M]` — including the two cases the wormhole
/// predictor structurally misses (paper §4.2.2):
///
/// * loops with *variable* trip counts (IMLI needs no trip count), and
/// * branches under nested conditionals that do not execute on every
///   inner iteration (IMLI indexes by iteration, not by occurrence).
///
/// As a side effect the table also learns inner-loop *exit* iterations,
/// which is why the paper finds the loop predictor nearly redundant once
/// IMLI-SIC is present.
///
/// ```
/// use imli::ImliSic;
/// use bp_components::{SumComponent, SumCtx};
/// let mut sic = ImliSic::new(512, 6);
/// // Branch is taken exactly at inner iteration 3, every outer iteration.
/// for _ in 0..32 {
///     for m in 0..8 {
///         let ctx = SumCtx { pc: 0x40, imli_count: m, ..SumCtx::default() };
///         sic.train(&ctx, m == 3);
///     }
/// }
/// let at3 = SumCtx { pc: 0x40, imli_count: 3, ..SumCtx::default() };
/// let at4 = SumCtx { pc: 0x40, imli_count: 4, ..SumCtx::default() };
/// assert!(sic.read(&at3) > 0);
/// assert!(sic.read(&at4) < 0);
/// ```
#[derive(Debug, Clone)]
pub struct ImliSic {
    table: SignedCounterTable,
}

impl ImliSic {
    /// Creates the table with `entries` counters of `bits` width
    /// (paper: 512 × 6 bits = 384 bytes).
    ///
    /// # Panics
    ///
    /// Panics under [`SignedCounterTable::new`]'s conditions.
    pub fn new(entries: usize, bits: usize) -> Self {
        ImliSic {
            table: SignedCounterTable::new(entries, bits),
        }
    }

    /// The PC ⊕ IMLI hash shared by `read` and `train`. Public so the
    /// statistical-corrector hosts can reuse the same dispersion when
    /// folding the IMLI counter into *their* table indices (the paper's
    /// "inserting the IMLI counter in the indices of two tables" variant).
    #[inline]
    pub fn index(pc: u64, imli_count: u32) -> u64 {
        // Spread the counter with an odd-constant multiply (a bijection
        // on u64, so no two counts collapse to the same key) rather than
        // `<< 44`, which shifted the counter's top 12 bits off the end
        // and aliased every count >= 2^20 onto count 0's index.
        mix64(pc_bits(pc) ^ u64::from(imli_count).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl SumComponent for ImliSic {
    fn read(&self, ctx: &SumCtx) -> i32 {
        self.table.read(Self::index(ctx.pc, ctx.imli_count))
    }

    fn train(&mut self, ctx: &SumCtx, taken: bool) {
        self.table.train(Self::index(ctx.pc, ctx.imli_count), taken);
    }

    fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    fn label(&self) -> &str {
        "imli-sic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, imli: u32) -> SumCtx {
        SumCtx {
            pc,
            imli_count: imli,
            ..SumCtx::default()
        }
    }

    #[test]
    fn separates_iterations_of_same_branch() {
        let mut sic = ImliSic::new(512, 6);
        for _ in 0..64 {
            sic.train(&ctx(0x100, 1), true);
            sic.train(&ctx(0x100, 2), false);
        }
        assert!(sic.read(&ctx(0x100, 1)) > 0);
        assert!(sic.read(&ctx(0x100, 2)) < 0);
    }

    #[test]
    fn separates_branches_at_same_iteration() {
        let mut sic = ImliSic::new(512, 6);
        for _ in 0..64 {
            sic.train(&ctx(0x100, 5), true);
            sic.train(&ctx(0x2000, 5), false);
        }
        assert!(sic.read(&ctx(0x100, 5)) > 0);
        assert!(sic.read(&ctx(0x2000, 5)) < 0);
    }

    #[test]
    fn learns_loop_exit_iteration() {
        // A constant-trip inner loop: the backward branch is taken for
        // m in 0..7 and not-taken at m == 7; SIC learns the exit, which
        // is why the loop predictor becomes nearly redundant (§4.2.2).
        let mut sic = ImliSic::new(512, 6);
        let pc = 0xbeef;
        for _ in 0..40 {
            for m in 0..=7 {
                sic.train(&ctx(pc, m), m < 7);
            }
        }
        for m in 0..7 {
            assert!(sic.read(&ctx(pc, m)) > 0, "body iteration {m}");
        }
        assert!(sic.read(&ctx(pc, 7)) < 0, "exit iteration");
    }

    #[test]
    fn label_and_storage() {
        let sic = ImliSic::new(512, 6);
        assert_eq!(sic.label(), "imli-sic");
        assert_eq!(sic.storage_bits(), 3072);
    }

    #[test]
    fn index_is_deterministic_and_disperses() {
        assert_eq!(ImliSic::index(0x40, 3), ImliSic::index(0x40, 3));
        assert_ne!(ImliSic::index(0x40, 3), ImliSic::index(0x40, 4));
        assert_ne!(ImliSic::index(0x40, 3), ImliSic::index(0x44, 3));
    }

    #[test]
    fn index_disperses_large_counts_losslessly() {
        // Regression: the old `counter << 44` dropped the top 12 bits of
        // the counter, so every count >= 2^20 indexed identically to
        // count 0 at the same PC.
        let pc = 0x40_0040;
        let mut seen = std::collections::HashSet::new();
        for c in [0u32, 1 << 20, (1 << 20) + 1, 1 << 24, 1 << 31, u32::MAX] {
            assert!(seen.insert(ImliSic::index(pc, c)), "count {c} aliased");
        }
        // Behaviourally: training at a huge count must not disturb the
        // counter learned for count 0 of the same branch.
        let mut sic = ImliSic::new(512, 6);
        for _ in 0..64 {
            sic.train(&ctx(pc, 0), true);
            sic.train(&ctx(pc, 1 << 20), false);
        }
        assert!(sic.read(&ctx(pc, 0)) > 0);
        assert!(sic.read(&ctx(pc, 1 << 20)) < 0);
    }
}
