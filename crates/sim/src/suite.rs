//! Whole-suite simulation and suite-vs-suite comparison.

use crate::engine::{run_indexed, CellLabel};
use crate::run::{simulate_stream, SimResult};
use bp_components::ConditionalPredictor;
use bp_workloads::BenchmarkSpec;
use std::fmt;
use std::num::NonZeroUsize;

/// Results of one predictor configuration over a whole benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Predictor configuration name.
    pub predictor: String,
    /// Per-benchmark results, in suite order.
    pub rows: Vec<SimResult>,
}

impl SuiteResult {
    /// The arithmetic-mean MPKI over the suite (the paper's averages are
    /// arithmetic means over the 40 traces of each set).
    pub fn mean_mpki(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(SimResult::mpki).sum::<f64>() / self.rows.len() as f64
    }

    /// The per-benchmark MPKI of `benchmark`, if present.
    pub fn mpki_of(&self, benchmark: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.benchmark == benchmark)
            .map(SimResult::mpki)
    }
}

impl fmt::Display for SuiteResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} MPKI mean over {} benchmarks",
            self.predictor,
            self.mean_mpki(),
            self.rows.len()
        )
    }
}

/// A baseline-vs-variant comparison over a suite.
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// Baseline results.
    pub baseline: SuiteResult,
    /// Variant results.
    pub variant: SuiteResult,
}

/// The error returned by [`SuiteComparison::new`] when the two results
/// do not cover the identical benchmark list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteMismatchError {
    /// Benchmark names of the baseline result, in order.
    pub baseline: Vec<String>,
    /// Benchmark names of the variant result, in order.
    pub variant: Vec<String>,
}

impl fmt::Display for SuiteMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first_diff = self
            .baseline
            .iter()
            .zip(&self.variant)
            .position(|(b, v)| b != v);
        write!(
            f,
            "comparison requires identical benchmark lists: baseline has {} benchmarks, \
             variant has {}",
            self.baseline.len(),
            self.variant.len()
        )?;
        if let Some(i) = first_diff {
            write!(
                f,
                "; first divergence at index {i} ({:?} vs {:?})",
                self.baseline[i], self.variant[i]
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SuiteMismatchError {}

impl SuiteComparison {
    /// Builds a comparison.
    ///
    /// # Errors
    ///
    /// Returns a [`SuiteMismatchError`] describing the divergence if
    /// the two results cover different benchmark lists.
    pub fn new(baseline: SuiteResult, variant: SuiteResult) -> Result<Self, SuiteMismatchError> {
        let names = |r: &SuiteResult| -> Vec<String> {
            r.rows.iter().map(|row| row.benchmark.clone()).collect()
        };
        let (b, v) = (names(&baseline), names(&variant));
        if b != v {
            return Err(SuiteMismatchError {
                baseline: b,
                variant: v,
            });
        }
        Ok(SuiteComparison { baseline, variant })
    }

    /// Per-benchmark MPKI reduction (baseline − variant; positive =
    /// variant better), in suite order.
    pub fn reductions(&self) -> Vec<(String, f64)> {
        self.baseline
            .rows
            .iter()
            .zip(&self.variant.rows)
            .map(|(b, v)| (b.benchmark.clone(), b.mpki() - v.mpki()))
            .collect()
    }

    /// The `n` benchmarks with the largest MPKI reduction, sorted
    /// descending — the paper's "most benefitting benchmarks" figures.
    pub fn top_benefitting(&self, n: usize) -> Vec<(String, f64)> {
        let mut r = self.reductions();
        r.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite MPKI"));
        r.truncate(n);
        r
    }

    /// Relative mean-MPKI reduction in percent (positive = variant
    /// better), the paper's headline "-x %" numbers.
    pub fn mean_reduction_percent(&self) -> f64 {
        let b = self.baseline.mean_mpki();
        if b == 0.0 {
            return 0.0;
        }
        (b - self.variant.mean_mpki()) / b * 100.0
    }
}

/// Runs a predictor configuration over a suite: a *fresh* predictor per
/// benchmark (cold start, as in CBP), each benchmark generated lazily
/// at `instructions` retired instructions and simulated in O(1) memory.
/// Benchmarks are fanned out across available cores with the engine's
/// dynamic scheduler (see [`crate::Engine`]); results come back in
/// suite order regardless of worker count.
pub fn run_suite(
    factory: &(dyn Fn() -> Box<dyn ConditionalPredictor + Send> + Sync),
    specs: &[BenchmarkSpec],
    instructions: u64,
) -> SuiteResult {
    let jobs = std::thread::available_parallelism().map_or(4, NonZeroUsize::get);
    let timed = run_indexed(
        jobs,
        specs.len(),
        0,
        specs.len(),
        |idx| {
            let spec = &specs[idx];
            let mut predictor = factory();
            let result = simulate_stream(predictor.as_mut(), spec.stream(instructions));
            // A suite run is one predictor row; factory-made predictors
            // have no registry name to label cells with.
            let label = CellLabel {
                predictor: "",
                benchmark: &spec.name,
                mpki: result.mpki(),
            };
            (result, label)
        },
        &|_| {},
    );
    let rows: Vec<SimResult> = timed.into_iter().map(|(result, _)| result).collect();
    let predictor = rows
        .first()
        .map_or_else(String::new, |r| r.predictor.clone());
    SuiteResult { predictor, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::make_predictor;
    use bp_components::PredictorStats;
    use bp_workloads::cbp4_suite;

    fn fake_result(bench: &str, mispred: u64) -> SimResult {
        let mut stats = PredictorStats::default();
        for i in 0..100 {
            stats.record(i >= mispred);
        }
        SimResult {
            benchmark: bench.to_owned(),
            predictor: "fake".to_owned(),
            instructions: 1000,
            records: 100,
            stats,
        }
    }

    #[test]
    fn mean_and_lookup() {
        let s = SuiteResult {
            predictor: "fake".into(),
            rows: vec![fake_result("a", 10), fake_result("b", 30)],
        };
        assert!((s.mean_mpki() - 20.0).abs() < 1e-9);
        assert_eq!(s.mpki_of("b"), Some(30.0));
        assert_eq!(s.mpki_of("c"), None);
        assert!(format!("{s}").contains("fake"));
    }

    #[test]
    fn comparison_reductions_and_top() {
        let base = SuiteResult {
            predictor: "base".into(),
            rows: vec![
                fake_result("a", 10),
                fake_result("b", 30),
                fake_result("c", 5),
            ],
        };
        let var = SuiteResult {
            predictor: "var".into(),
            rows: vec![
                fake_result("a", 10),
                fake_result("b", 10),
                fake_result("c", 4),
            ],
        };
        let cmp = SuiteComparison::new(base, var).expect("same benchmark lists");
        let top = cmp.top_benefitting(2);
        assert_eq!(top[0].0, "b");
        assert!((top[0].1 - 20.0).abs() < 1e-9);
        assert_eq!(top[1].0, "c");
        assert!(cmp.mean_reduction_percent() > 0.0);
    }

    #[test]
    fn comparison_rejects_different_benchmarks_with_context() {
        let a = SuiteResult {
            predictor: "a".into(),
            rows: vec![fake_result("x", 1), fake_result("z", 1)],
        };
        let b = SuiteResult {
            predictor: "b".into(),
            rows: vec![fake_result("x", 1), fake_result("y", 1)],
        };
        let err = SuiteComparison::new(a, b).unwrap_err();
        assert_eq!(err.baseline, vec!["x", "z"]);
        assert_eq!(err.variant, vec!["x", "y"]);
        let msg = format!("{err}");
        assert!(msg.contains("identical benchmark lists"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
        assert!(msg.contains("\"z\"") && msg.contains("\"y\""), "{msg}");
    }

    #[test]
    fn comparison_rejects_length_mismatch() {
        let a = SuiteResult {
            predictor: "a".into(),
            rows: vec![fake_result("x", 1)],
        };
        let b = SuiteResult {
            predictor: "b".into(),
            rows: vec![],
        };
        let err = SuiteComparison::new(a, b).unwrap_err();
        assert!(format!("{err}").contains("1 benchmarks"));
    }

    #[test]
    fn run_suite_smoke_small() {
        // A tiny run over 4 benchmarks with a cheap predictor, checking
        // parallel plumbing and ordering.
        let specs: Vec<_> = cbp4_suite().into_iter().take(4).collect();
        let result = run_suite(
            &|| make_predictor("bimodal").expect("registered"),
            &specs,
            20_000,
        );
        assert_eq!(result.rows.len(), 4);
        for (spec, row) in specs.iter().zip(&result.rows) {
            assert_eq!(spec.name, row.benchmark);
        }
        assert!(result.mean_mpki() > 0.0, "bimodal must miss something");
    }
}
