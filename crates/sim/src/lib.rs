//! Trace-driven branch prediction simulation.
//!
//! This crate drives any [`bp_components::ConditionalPredictor`] over
//! [`bp_trace::Trace`]s with the CBP protocol the paper's evaluation uses
//! (immediate update, §3) and reports **MPKI** — mispredictions per kilo
//! instruction, the paper's accuracy metric.
//!
//! * [`simulate`] / [`simulate_stream`] / [`Mpki`] — single benchmark
//!   runs, over materialized traces or any
//!   [`bp_trace::BranchStream`] in O(1) memory;
//! * [`Engine`] — the parallel (predictor × benchmark) grid runner:
//!   dynamic self-scheduling across worker threads, lazy per-cell
//!   generation, deterministic grid-ordered results, progress
//!   callbacks;
//! * [`run_suite`] / [`SuiteResult`] — whole-suite runs (parallelized
//!   across benchmarks) and suite-vs-suite comparisons;
//! * [`registry`] — every named predictor configuration of the paper's
//!   evaluation as a structured [`PredictorSpec`] (name, family, paper
//!   reference, factory), constructible by string name;
//! * [`run_report`] / [`SuiteReport`] / [`simulate_stream_attributed`]
//!   — the reporting layer: component-attributed simulation with
//!   warmup/steady-state splits, folded into deterministic paper-style
//!   Markdown/JSON documents (`bp report`);
//! * [`speculative_imli_fidelity`] — the speculation-repair harness
//!   behind the paper's §4.2.1/§4.3.2 complexity argument;
//! * [`MispredictionProfile`] — per-static-branch misprediction
//!   attribution (the paper's "few hard branches dominate" analysis);
//! * [`TextTable`] — fixed-width table rendering for the experiment
//!   binaries that regenerate the paper's tables and figures.

#![warn(missing_docs)]

mod analysis;
mod cache;
mod engine;
mod registry;
mod report;
mod run;
mod scenario;
mod speculative;
mod suite;
mod sweep;
mod table;

pub use analysis::{learning_curve, BranchProfile, MispredictionProfile};
pub use bp_components::DriveMode;
pub use cache::{
    grid_cell_key, report_cell_key, scenario_cell_key, CacheKey, CachePolicy, CacheStats,
    CacheStore, GcOutcome, SimCache,
};
pub use engine::{CellUpdate, Engine, GridResult, GridStrategy};
pub use registry::{
    configs, family_members, lookup, make_predictor, paper_report_predictors, registry,
    registry_names, FamilyConfig, PredictorFamily, PredictorSpec, RegistryConfig,
    PAPER_REPORT_NAMES,
};
pub use report::{
    run_report, run_report_with_cache, simulate_stream_attributed,
    simulate_stream_attributed_multi, AttributedRun, AttributionSummary, ComponentTally,
    PhaseSummary, ReportRow, SuiteReport,
};
pub use run::{
    drive_block, drive_block_mode, simulate, simulate_mode, simulate_stream, simulate_stream_mode,
    simulate_stream_multi, simulate_stream_multi_mode, Mpki, SimResult,
};
pub use scenario::{
    adversarial_search, parse_scenario_file, run_scenario, run_scenario_with_cache,
    scenario_by_name, scenario_report_predictors, simulate_scenario, simulate_scenario_multi,
    AdversarialSearchResult, ScenarioFlush, ScenarioReport, ScenarioRow, ScenarioRun, ScenarioSpec,
    TenantSpec, TenantTally, SCENARIO_NAMES, SCENARIO_REPORT_NAMES,
};
pub use speculative::{speculative_imli_fidelity, SpeculationReport};
pub use suite::{run_suite, SuiteComparison, SuiteMismatchError, SuiteResult};
pub use sweep::{
    parse_predictor_file, parse_sweep_file, run_sweep, run_sweep_with_cache, solve_budget,
    SweepFileConfig, SweepReport, SweepRow, BUDGET_TOLERANCE, STANDARD_BUDGETS_KBIT,
    SWEEP_FAMILIES,
};
pub use table::TextTable;
