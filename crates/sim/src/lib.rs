//! Trace-driven branch prediction simulation.
//!
//! This crate drives any [`bp_components::ConditionalPredictor`] over
//! [`bp_trace::Trace`]s with the CBP protocol the paper's evaluation uses
//! (immediate update, §3) and reports **MPKI** — mispredictions per kilo
//! instruction, the paper's accuracy metric.
//!
//! * [`simulate`] / [`Mpki`] — single benchmark runs;
//! * [`run_suite`] / [`SuiteResult`] — whole-suite runs (parallelized
//!   across benchmarks) and suite-vs-suite comparisons;
//! * [`registry`] — every named predictor configuration of the paper's
//!   evaluation, constructible by string name;
//! * [`speculative_imli_fidelity`] — the speculation-repair harness
//!   behind the paper's §4.2.1/§4.3.2 complexity argument;
//! * [`MispredictionProfile`] — per-static-branch misprediction
//!   attribution (the paper's "few hard branches dominate" analysis);
//! * [`TextTable`] — fixed-width table rendering for the experiment
//!   binaries that regenerate the paper's tables and figures.

#![warn(missing_docs)]

mod analysis;
mod registry;
mod run;
mod speculative;
mod suite;
mod table;

pub use analysis::{learning_curve, BranchProfile, MispredictionProfile};
pub use registry::{make_predictor, registry, PredictorFactory};
pub use run::{simulate, Mpki, SimResult};
pub use speculative::{speculative_imli_fidelity, SpeculationReport};
pub use suite::{run_suite, SuiteComparison, SuiteResult};
pub use table::TextTable;
