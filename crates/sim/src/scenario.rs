//! Shared-predictor scenario runs: multi-tenant traffic, context-switch
//! flushes, and adversarial streams, reported per tenant.
//!
//! The paper's grid treats every predictor as private to its benchmark.
//! This module drives registry predictors through the `bp-workloads`
//! combinator layer instead — N tenants interleaved into one fetch
//! stream ([`bp_workloads::interleave`]), periodic context-switch
//! flushes ([`bp_workloads::context_switch`]), adversarial genomes —
//! and reports *per tenant*: each tenant's MPKI plus the same
//! provider/save/loss attribution split the suite report uses (one
//! shared definition: [`PredictionAttribution::classify`]).
//!
//! * [`ScenarioSpec`] — a named scenario (tenants, schedule, flush),
//!   buildable by name ([`scenario_by_name`]) or from a config file
//!   ([`parse_scenario_file`]);
//! * [`run_scenario`] — the engine-scheduled run producing a
//!   [`ScenarioReport`] with byte-deterministic Markdown/JSON
//!   renderings (`bp scenario`), identical across worker counts;
//! * [`simulate_scenario_multi`] — the fused core: every predictor
//!   consumes the one event stream block-wise, applying flush events
//!   in place (partial: [`ConditionalPredictor::flush_history`]; full:
//!   a cold rebuild from the spec);
//! * [`adversarial_search`] — the seeded hill-climb over
//!   [`Genome`]s maximizing MPKI against one registry config. No
//!   wall-clock anywhere in the loop: a fixed seed reproduces the
//!   identical worst-case stream.

use crate::cache::{scenario_cell_key, CacheKey, SimCache};
use crate::engine::{
    auto_fuses, run_columns, run_indexed, transpose_columns, CellLabel, CellUpdate,
};
use crate::registry::{lookup, PredictorSpec};
use crate::report::AttributionSummary;
use crate::run::{simulate_stream, Mpki};
use bp_components::{
    json_string as json_str, ConditionalPredictor, ConfigError, ConfigValue, PredictorStats,
};
use bp_trace::BranchStream;
use bp_workloads::{
    context_switch, find_benchmark, interleave, EventStream, FlushMode, Genome, InterleaveSchedule,
    ScenarioEvent,
};
use std::fmt::Write as _;

/// One tenant of a scenario: a named synthetic benchmark, or an
/// adversarial genome replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantSpec {
    /// A benchmark by suite name (resolved via
    /// [`bp_workloads::find_benchmark`]).
    Benchmark(String),
    /// A seeded adversarial genome ([`Genome::seeded`]).
    Adversarial {
        /// Genome seed.
        seed: u64,
        /// Gene count (>= 1).
        genes: usize,
    },
}

impl TenantSpec {
    /// Stable display label of this tenant.
    pub fn label(&self) -> String {
        match self {
            TenantSpec::Benchmark(name) => name.clone(),
            TenantSpec::Adversarial { seed, genes } => {
                format!("adversarial(seed={seed}, genes={genes})")
            }
        }
    }

    /// Builds this tenant's branch stream. The spec must have passed
    /// [`ScenarioSpec::validate`] (unknown benchmark names panic here).
    pub fn stream(&self, instructions: u64) -> Box<dyn BranchStream + Send> {
        match self {
            TenantSpec::Benchmark(name) => {
                let spec = find_benchmark(name).expect("validated benchmark name");
                Box::new(spec.stream(instructions))
            }
            TenantSpec::Adversarial { seed, genes } => {
                Box::new(Genome::seeded(*seed, *genes).stream(instructions))
            }
        }
    }
}

/// The periodic context-switch setting of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFlush {
    /// Flush period in retired instructions of the combined stream.
    pub period: u64,
    /// What each flush erases.
    pub mode: FlushMode,
}

/// A complete scenario: tenants, schedule, flush policy, and per-tenant
/// instruction budget. Everything is data — the same spec always
/// produces the identical event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario name (artifact stem: `SCENARIO_<name>.md/.json`).
    pub name: String,
    /// The tenants, in id order (tenant `i` gets PC region `i`).
    pub tenants: Vec<TenantSpec>,
    /// Interleave schedule across the tenants.
    pub schedule: InterleaveSchedule,
    /// Periodic context-switch flushes, or `None` for an undisturbed
    /// shared predictor.
    pub flush: Option<ScenarioFlush>,
    /// Instructions per tenant stream.
    pub instructions: u64,
}

impl ScenarioSpec {
    /// Checks the spec is runnable: at least one tenant, resolvable
    /// benchmark names, positive budgets/quanta/periods, and an
    /// artifact-safe name.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!(
                "scenario name `{}` must be non-empty [A-Za-z0-9_-] (it names the artifact files)",
                self.name
            ));
        }
        if self.tenants.is_empty() {
            return Err("scenario needs at least one tenant".to_owned());
        }
        if self.instructions == 0 {
            return Err("scenario needs a positive per-tenant instruction budget".to_owned());
        }
        for tenant in &self.tenants {
            match tenant {
                TenantSpec::Benchmark(name) => {
                    if find_benchmark(name).is_none() {
                        return Err(format!(
                            "unknown benchmark `{name}` (try `bp list benchmarks`)"
                        ));
                    }
                }
                TenantSpec::Adversarial { genes, .. } => {
                    if *genes == 0 {
                        return Err("adversarial tenant needs at least one gene".to_owned());
                    }
                }
            }
        }
        match self.schedule {
            InterleaveSchedule::RoundRobin { quantum } => {
                if quantum == 0 {
                    return Err("round-robin quantum must be >= 1".to_owned());
                }
            }
            InterleaveSchedule::SeededBursts { min, max, .. } => {
                if min == 0 || min > max {
                    return Err("seeded-burst range must satisfy 1 <= min <= max".to_owned());
                }
            }
        }
        if let Some(flush) = &self.flush {
            if flush.period == 0 {
                return Err("flush period must be positive".to_owned());
            }
        }
        Ok(())
    }

    /// Display labels of the tenants, in tenant-id order.
    pub fn tenant_labels(&self) -> Vec<String> {
        self.tenants.iter().map(TenantSpec::label).collect()
    }

    /// Builds the scenario's event stream. Each call starts a fresh,
    /// identical stream (pure function of the spec).
    pub fn events(&self) -> Box<dyn EventStream + Send> {
        let streams: Vec<Box<dyn BranchStream + Send>> = self
            .tenants
            .iter()
            .map(|t| t.stream(self.instructions))
            .collect();
        let mixed = interleave(streams, self.schedule);
        match &self.flush {
            Some(flush) => Box::new(context_switch(mixed, flush.period, flush.mode)),
            None => Box::new(mixed),
        }
    }

    /// Stable one-line schedule label for reports.
    pub fn schedule_label(&self) -> String {
        match self.schedule {
            InterleaveSchedule::RoundRobin { quantum } => {
                format!("round-robin(quantum={quantum})")
            }
            InterleaveSchedule::SeededBursts { seed, min, max } => {
                format!("seeded-bursts(seed={seed}, min={min}, max={max})")
            }
        }
    }

    /// Stable one-line flush label for reports (`"none"` when the
    /// scenario never flushes).
    pub fn flush_label(&self) -> String {
        match &self.flush {
            None => "none".to_owned(),
            Some(f) => format!("{} every {} instructions", f.mode.label(), f.period),
        }
    }

    /// Renders the spec as the canonical `bp scenario --config`
    /// document — [`parse_scenario_file`] round-trips it exactly
    /// (tested). Byte-equal canonical values describe byte-identical
    /// event streams, which makes this rendering the scenario's
    /// *workload identity* for the result cache.
    pub fn to_value(&self) -> ConfigValue {
        let tenants = ConfigValue::List(
            self.tenants
                .iter()
                .map(|t| match t {
                    TenantSpec::Benchmark(name) => {
                        ConfigValue::map().set("benchmark", ConfigValue::str(name.as_str()))
                    }
                    TenantSpec::Adversarial { seed, genes } => ConfigValue::map().set(
                        "adversarial",
                        ConfigValue::map()
                            .set("seed", crate::cache::int_u64(*seed))
                            .set("genes", crate::cache::int_u64(*genes as u64)),
                    ),
                })
                .collect(),
        );
        let schedule = match self.schedule {
            InterleaveSchedule::RoundRobin { quantum } => ConfigValue::map().set(
                "round_robin",
                ConfigValue::map().set("quantum", ConfigValue::int(quantum)),
            ),
            InterleaveSchedule::SeededBursts { seed, min, max } => ConfigValue::map().set(
                "seeded_bursts",
                ConfigValue::map()
                    .set("seed", crate::cache::int_u64(seed))
                    .set("min", ConfigValue::int(min))
                    .set("max", ConfigValue::int(max)),
            ),
        };
        ConfigValue::map()
            .set("name", ConfigValue::str(self.name.as_str()))
            .set("instructions", crate::cache::int_u64(self.instructions))
            .set("tenants", tenants)
            .set("schedule", schedule)
            .set_opt(
                "flush",
                self.flush.as_ref().map(|f| {
                    ConfigValue::map()
                        .set("period", crate::cache::int_u64(f.period))
                        .set("mode", ConfigValue::str(f.mode.label()))
                }),
            )
    }

    /// [`ScenarioSpec::to_value`] rendered as deterministic text.
    pub fn canonical_text(&self) -> String {
        self.to_value().to_text()
    }
}

/// The built-in scenario names, in presentation order.
pub const SCENARIO_NAMES: [&str; 3] = ["paper_mix", "paper_switch", "hostile_mix"];

/// Looks up a built-in scenario by name (see [`SCENARIO_NAMES`]):
///
/// * `paper_mix` — four paper benchmarks round-robin interleaved, no
///   flushes: pure cross-tenant table sharing;
/// * `paper_switch` — the same mix with a partial flush every 50k
///   instructions: the OS context-switch shape (history erased, learned
///   tables survive);
/// * `hostile_mix` — two paper benchmarks co-scheduled with an
///   adversarial genome tenant under seeded bursts plus partial
///   flushes: the hostile end of the axis.
pub fn scenario_by_name(name: &str) -> Option<ScenarioSpec> {
    let bench = |n: &str| TenantSpec::Benchmark(n.to_owned());
    let spec = match name {
        "paper_mix" => ScenarioSpec {
            name: "paper_mix".to_owned(),
            tenants: vec![
                bench("SPEC2K6-04"),
                bench("MM-4"),
                bench("CLIENT02"),
                bench("WS04"),
            ],
            schedule: InterleaveSchedule::RoundRobin { quantum: 64 },
            flush: None,
            instructions: 150_000,
        },
        "paper_switch" => ScenarioSpec {
            name: "paper_switch".to_owned(),
            tenants: vec![
                bench("SPEC2K6-04"),
                bench("MM-4"),
                bench("CLIENT02"),
                bench("WS04"),
            ],
            schedule: InterleaveSchedule::RoundRobin { quantum: 64 },
            flush: Some(ScenarioFlush {
                period: 50_000,
                mode: FlushMode::Partial,
            }),
            instructions: 150_000,
        },
        "hostile_mix" => ScenarioSpec {
            name: "hostile_mix".to_owned(),
            tenants: vec![
                bench("SPEC2K6-04"),
                bench("MM-4"),
                TenantSpec::Adversarial {
                    seed: 0xC0FFEE,
                    genes: 12,
                },
            ],
            schedule: InterleaveSchedule::SeededBursts {
                seed: 0x5EED,
                min: 16,
                max: 256,
            },
            flush: Some(ScenarioFlush {
                period: 50_000,
                mode: FlushMode::Partial,
            }),
            instructions: 150_000,
        },
        _ => return None,
    };
    Some(spec)
}

/// The default predictor set of `bp scenario`: one representative per
/// rung of the configuration ladder, small enough that the committed
/// exemplar artifact regenerates quickly in CI.
pub const SCENARIO_REPORT_NAMES: [&str; 6] = [
    "bimodal",
    "gshare",
    "tage-sc-l",
    "tage-gsc+imli",
    "gehl+imli",
    "perceptron+imli",
];

/// Resolves [`SCENARIO_REPORT_NAMES`] from the registry.
///
/// # Panics
///
/// Panics if a default name is missing from the registry — a workspace
/// bug caught by tests, not a runtime condition.
pub fn scenario_report_predictors() -> Vec<PredictorSpec> {
    SCENARIO_REPORT_NAMES
        .iter()
        .map(|name| lookup(name).expect("scenario default names are registered"))
        .collect()
}

/// One tenant's outcome under one predictor: instruction share,
/// prediction counts, and per-component attribution — the same
/// provider/save/loss split as the suite report, tallied per tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantTally {
    /// Instructions this tenant retired in the combined stream.
    pub instructions: u64,
    /// Prediction counts over this tenant's branches.
    pub stats: PredictorStats,
    /// Per-component attribution of this tenant's predictions.
    pub attribution: AttributionSummary,
}

impl TenantTally {
    /// MPKI over this tenant's slice of the combined stream.
    pub fn mpki(&self) -> f64 {
        Mpki::from_counts(self.stats.mispredicted, self.instructions).value()
    }
}

/// One predictor's complete scenario outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// Display name of the predictor instance.
    pub predictor: String,
    /// Instructions of the combined stream.
    pub instructions: u64,
    /// Branch records of the combined stream.
    pub records: u64,
    /// Combined prediction counts.
    pub stats: PredictorStats,
    /// Context-switch flushes applied.
    pub flushes: u64,
    /// Per-tenant tallies, in tenant-id order. Their stats sum exactly
    /// to `stats` (property-tested conservation).
    pub tenants: Vec<TenantTally>,
}

impl ScenarioRun {
    /// MPKI over the combined stream.
    pub fn mpki(&self) -> f64 {
        Mpki::from_counts(self.stats.mispredicted, self.instructions).value()
    }
}

/// Events pulled per block of the fused pass — same granularity as the
/// record-block fusion in `bp-sim`'s grid core.
const SCENARIO_BLOCK_EVENTS: usize = 4096;

/// Per-predictor accumulation state of one fused scenario pass.
struct ScenarioAccum {
    stats: PredictorStats,
    flushes: u64,
    tenants: Vec<TenantTally>,
}

/// Drives every predictor through **one** pass of the scenario's event
/// stream — the scenario twin of the fused grid path. Events are
/// pulled once in blocks; each predictor consumes the whole block
/// before the next. Flush events apply per predictor in stream
/// position: a partial flush calls
/// [`ConditionalPredictor::flush_history`], a full flush rebuilds the
/// predictor cold from its spec.
///
/// The result is a pure function of `(specs, events)` — identical
/// across runs, worker counts, and against one-predictor-at-a-time
/// simulation of the same events (tested).
pub fn simulate_scenario_multi(
    specs: &[PredictorSpec],
    events: &mut dyn EventStream,
) -> Vec<ScenarioRun> {
    let tenant_count = events.tenant_count() as usize;
    let mut predictors: Vec<Box<dyn ConditionalPredictor + Send>> =
        specs.iter().map(PredictorSpec::make).collect();
    let mut accums: Vec<ScenarioAccum> = specs
        .iter()
        .map(|_| ScenarioAccum {
            stats: PredictorStats::default(),
            flushes: 0,
            tenants: vec![TenantTally::default(); tenant_count],
        })
        .collect();
    let mut block: Vec<ScenarioEvent> = Vec::with_capacity(SCENARIO_BLOCK_EVENTS);
    let mut instructions = 0u64;
    let mut records = 0u64;
    loop {
        block.clear();
        while block.len() < SCENARIO_BLOCK_EVENTS {
            match events.next_event() {
                Some(ev) => block.push(ev),
                None => break,
            }
        }
        if block.is_empty() {
            break;
        }
        for ev in &block {
            if let ScenarioEvent::Record { record, .. } = ev {
                instructions += record.instructions();
                records += 1;
            }
        }
        for ((spec, predictor), accum) in specs
            .iter()
            .zip(predictors.iter_mut())
            .zip(accums.iter_mut())
        {
            for ev in &block {
                match ev {
                    ScenarioEvent::Record { record, tenant } => {
                        let tally = &mut accum.tenants[*tenant as usize];
                        tally.instructions += record.instructions();
                        if record.is_conditional() {
                            let (pred, attribution) = predictor.predict_attributed(record.pc);
                            let correct = pred == record.taken;
                            accum.stats.record(correct);
                            tally.stats.record(correct);
                            tally.attribution.record(&attribution, pred, record.taken);
                            predictor.update(record);
                        } else {
                            predictor.notify_nonconditional(record);
                        }
                    }
                    ScenarioEvent::Flush(FlushMode::Partial) => {
                        predictor.flush_history();
                        accum.flushes += 1;
                    }
                    ScenarioEvent::Flush(FlushMode::Full) => {
                        *predictor = spec.make();
                        accum.flushes += 1;
                    }
                }
            }
        }
        if block.len() < SCENARIO_BLOCK_EVENTS {
            break;
        }
    }
    predictors
        .iter()
        .zip(accums)
        .map(|(predictor, accum)| ScenarioRun {
            predictor: predictor.name().to_owned(),
            instructions,
            records,
            stats: accum.stats,
            flushes: accum.flushes,
            tenants: accum.tenants,
        })
        .collect()
}

/// [`simulate_scenario_multi`] for a single predictor — implemented *as*
/// a one-element fused pass, so the solo and fused paths cannot
/// diverge.
pub fn simulate_scenario(spec: &PredictorSpec, events: &mut dyn EventStream) -> ScenarioRun {
    simulate_scenario_multi(std::slice::from_ref(spec), events)
        .pop()
        .expect("one spec, one run")
}

/// One predictor row of a [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Registry name.
    pub name: String,
    /// Display name of the built instance.
    pub display: String,
    /// Family label.
    pub family: String,
    /// The run outcome.
    pub run: ScenarioRun,
}

/// A complete scenario report: every predictor's combined and
/// per-tenant outcome, plus the scenario's own parameters, rendered as
/// byte-deterministic Markdown/JSON artifacts.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Instructions per tenant stream.
    pub instructions: u64,
    /// Schedule label ([`ScenarioSpec::schedule_label`]).
    pub schedule: String,
    /// Flush label ([`ScenarioSpec::flush_label`]).
    pub flush: String,
    /// Tenant labels, in tenant-id order.
    pub tenants: Vec<String>,
    /// Predictor rows, in input order.
    pub rows: Vec<ScenarioRow>,
    /// Wall seconds per row — throughput telemetry only, never
    /// serialized, excluded from equality.
    pub cell_seconds: Vec<f64>,
}

/// Equality deliberately ignores `cell_seconds`, mirroring
/// [`crate::SuiteReport`]: content is deterministic, wall-clock is not.
impl PartialEq for ScenarioReport {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario
            && self.instructions == other.instructions
            && self.schedule == other.schedule
            && self.flush == other.flush
            && self.tenants == other.tenants
            && self.rows == other.rows
    }
}

/// Runs `predictors` through `scenario` on the engine's scheduling
/// model and folds the outcome into a [`ScenarioReport`].
///
/// Scheduling mirrors the grid: a scenario is one shared event stream
/// (one "column"), so the fused path — every predictor consuming the
/// stream once, block-wise — is taken whenever it can keep the workers
/// busy; otherwise predictors fan out individually, each regenerating
/// the identical stream. Both paths produce the identical report
/// (tested), so worker count never changes a byte of the artifacts.
pub fn run_scenario(
    scenario: &ScenarioSpec,
    predictors: &[PredictorSpec],
    jobs: usize,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> Result<ScenarioReport, String> {
    run_scenario_with_cache(scenario, predictors, jobs, None, progress)
}

/// [`run_scenario`] with an optional result cache. Each predictor's
/// run is keyed on its config text plus the scenario's whole canonical
/// spec text; verified hits are spliced in (progress first, in input
/// order) and only the missing predictors re-consume the event stream
/// — fused together when they can keep the workers busy. The report is
/// bit-identical with the cache absent, cold, or warm.
pub fn run_scenario_with_cache(
    scenario: &ScenarioSpec,
    predictors: &[PredictorSpec],
    jobs: usize,
    cache: Option<&SimCache>,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> Result<ScenarioReport, String> {
    scenario.validate()?;
    if predictors.is_empty() {
        return Err("scenario needs at least one predictor".to_owned());
    }
    let timed: Vec<(ScenarioRun, f64)> = if let Some(cache) = cache.filter(|c| c.enabled()) {
        run_scenario_cached(cache, scenario, predictors, jobs, progress)
    } else if auto_fuses(predictors.len(), 1, jobs) {
        let columns = run_columns(
            jobs,
            1,
            0,
            predictors.len(),
            |_| {
                let mut events = scenario.events();
                let runs = simulate_scenario_multi(predictors, events.as_mut());
                let labels = predictors
                    .iter()
                    .zip(&runs)
                    .map(|(spec, run)| CellLabel {
                        predictor: &spec.name,
                        benchmark: &scenario.name,
                        mpki: run.mpki(),
                    })
                    .collect();
                (runs, labels)
            },
            progress,
        );
        let (cells, seconds) = transpose_columns(columns, predictors.len(), 1);
        cells.into_iter().zip(seconds).collect()
    } else {
        run_indexed(
            jobs,
            predictors.len(),
            0,
            predictors.len(),
            |idx| {
                let spec = &predictors[idx];
                let mut events = scenario.events();
                let run = simulate_scenario(spec, events.as_mut());
                let label = CellLabel {
                    predictor: &spec.name,
                    benchmark: &scenario.name,
                    mpki: run.mpki(),
                };
                (run, label)
            },
            progress,
        )
    };
    let (runs, cell_seconds): (Vec<ScenarioRun>, Vec<f64>) = timed.into_iter().unzip();
    let rows = predictors
        .iter()
        .zip(runs)
        .map(|(spec, run)| ScenarioRow {
            name: spec.name.clone(),
            display: run.predictor.clone(),
            family: spec.family.to_string(),
            run,
        })
        .collect();
    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        instructions: scenario.instructions,
        schedule: scenario.schedule_label(),
        flush: scenario.flush_label(),
        tenants: scenario.tenant_labels(),
        rows,
        cell_seconds,
    })
}

/// The cache-aware scenario dispatch behind
/// [`run_scenario_with_cache`]: probe every predictor's key, splice
/// verified hits (zero wall seconds), then run only the missing
/// predictors over the shared event stream — fused when the miss-set
/// alone satisfies the engine's fusing heuristic, individually
/// otherwise. Computed runs are written back under the policy.
fn run_scenario_cached(
    cache: &SimCache,
    scenario: &ScenarioSpec,
    predictors: &[PredictorSpec],
    jobs: usize,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> Vec<(ScenarioRun, f64)> {
    let total = predictors.len();
    let keys: Vec<CacheKey> = predictors
        .iter()
        .map(|spec| scenario_cell_key(spec, scenario))
        .collect();
    let mut cells: Vec<Option<(ScenarioRun, f64)>> = keys
        .iter()
        .map(|key| {
            cache
                .lookup_scenario(key, scenario.tenants.len())
                .map(|run| (run, 0.0))
        })
        .collect();
    let mut completed = 0usize;
    for (idx, cell) in cells.iter().enumerate() {
        if let Some((run, _)) = cell {
            completed += 1;
            progress(CellUpdate {
                predictor: &predictors[idx].name,
                benchmark: &scenario.name,
                mpki: run.mpki(),
                completed,
                total,
            });
        }
    }
    let misses: Vec<usize> = (0..total).filter(|&idx| cells[idx].is_none()).collect();
    if misses.is_empty() {
        // Every predictor was a verified hit; nothing to simulate.
    } else if auto_fuses(misses.len(), 1, jobs) {
        // Fuse only the missing predictors over one shared stream:
        // fusing a subset is bit-identical to solo runs.
        let miss_specs: Vec<PredictorSpec> =
            misses.iter().map(|&idx| predictors[idx].clone()).collect();
        let columns = run_columns(
            jobs,
            1,
            completed,
            total,
            |_| {
                let mut events = scenario.events();
                let runs = simulate_scenario_multi(&miss_specs, events.as_mut());
                let labels = miss_specs
                    .iter()
                    .zip(&runs)
                    .map(|(spec, run)| CellLabel {
                        predictor: &spec.name,
                        benchmark: &scenario.name,
                        mpki: run.mpki(),
                    })
                    .collect();
                (runs, labels)
            },
            progress,
        );
        let (cell_runs, seconds) = transpose_columns(columns, miss_specs.len(), 1);
        for ((&idx, run), seconds) in misses.iter().zip(cell_runs).zip(seconds) {
            cache.store_scenario(&keys[idx], &run);
            cells[idx] = Some((run, seconds));
        }
    } else {
        let computed = run_indexed(
            jobs,
            misses.len(),
            completed,
            total,
            |j| {
                let spec = &predictors[misses[j]];
                let mut events = scenario.events();
                let run = simulate_scenario(spec, events.as_mut());
                let label = CellLabel {
                    predictor: &spec.name,
                    benchmark: &scenario.name,
                    mpki: run.mpki(),
                };
                (run, label)
            },
            progress,
        );
        for (&idx, (run, seconds)) in misses.iter().zip(computed) {
            cache.store_scenario(&keys[idx], &run);
            cells[idx] = Some((run, seconds));
        }
    }
    cells
        .into_iter()
        .map(|cell| cell.expect("every scenario cell filled"))
        .collect()
}

impl ScenarioReport {
    /// Renders the report as a deterministic JSON document (stable key
    /// order, fixed float precision, no timestamps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"report\": \"bp-scenario\",");
        let _ = writeln!(out, "  \"scenario\": {},", json_str(&self.scenario));
        let _ = writeln!(out, "  \"instructions\": {},", self.instructions);
        let _ = writeln!(out, "  \"schedule\": {},", json_str(&self.schedule));
        let _ = writeln!(out, "  \"flush\": {},", json_str(&self.flush));
        out.push_str("  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(t));
        }
        out.push_str("],\n  \"predictors\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_str(&row.name));
            let _ = writeln!(out, "      \"display\": {},", json_str(&row.display));
            let _ = writeln!(out, "      \"family\": {},", json_str(&row.family));
            let _ = writeln!(out, "      \"mpki\": {:.6},", row.run.mpki());
            let _ = writeln!(out, "      \"instructions\": {},", row.run.instructions);
            let _ = writeln!(out, "      \"records\": {},", row.run.records);
            let _ = writeln!(out, "      \"predicted\": {},", row.run.stats.predicted);
            let _ = writeln!(
                out,
                "      \"mispredicted\": {},",
                row.run.stats.mispredicted
            );
            let _ = writeln!(out, "      \"flushes\": {},", row.run.flushes);
            out.push_str("      \"tenants\": [\n");
            for (t, tally) in row.run.tenants.iter().enumerate() {
                out.push_str("        {");
                let _ = write!(
                    out,
                    "\"label\": {}, \"instructions\": {}, \"predicted\": {}, \
                     \"mispredicted\": {}, \"mpki\": {:.6}, \"attribution\": {}",
                    json_str(&self.tenants[t]),
                    tally.instructions,
                    tally.stats.predicted,
                    tally.stats.mispredicted,
                    tally.mpki(),
                    crate::report::attribution_json(&tally.attribution, "        ")
                );
                out.push_str(if t + 1 < row.run.tenants.len() {
                    "},\n"
                } else {
                    "}\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as deterministic Markdown: the scenario
    /// parameters, the combined/per-tenant MPKI table, and per-tenant
    /// component attribution.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Scenario report — `{}`", self.scenario);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Deterministic output of `bp scenario {} --instr {}`: the same inputs \
             produce a byte-identical report (no timestamps, no wall-clock, identical \
             across `--jobs` settings).",
            self.scenario, self.instructions
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "- tenants: {} × {} instructions each, interleaved into one shared stream",
            self.tenants.len(),
            self.instructions
        );
        for (t, label) in self.tenants.iter().enumerate() {
            let _ = writeln!(out, "  - tenant {t}: {label}");
        }
        let _ = writeln!(out, "- schedule: {}", self.schedule);
        let _ = writeln!(out, "- flush: {}", self.flush);
        let _ = writeln!(out, "- predictors: {}", self.rows.len());
        let _ = writeln!(out);

        let _ = writeln!(out, "## MPKI (combined and per tenant, lower is better)");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Every predictor is shared by all tenants; per-tenant MPKI counts a \
             tenant's mispredictions against its own retired instructions."
        );
        let _ = writeln!(out);
        let mut header = String::from("| config | family | combined | flushes |");
        let mut rule = String::from("|---|---|---:|---:|");
        for t in 0..self.tenants.len() {
            let _ = write!(header, " t{t} |");
            rule.push_str("---:|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = write!(
                out,
                "| `{}` | {} | {:.3} | {} |",
                row.name,
                row.family,
                row.run.mpki(),
                row.run.flushes
            );
            for tally in &row.run.tenants {
                let _ = write!(out, " {:.3} |", tally.mpki());
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Per-tenant component attribution");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Which component provided each tenant's predictions, with the suite \
             report's save/loss split: *saves* are predictions the provider got right \
             while its alternate path would have mispredicted, *losses* the reverse, \
             *net/ki* their difference per kilo instruction of the tenant."
        );
        for row in &self.rows {
            let _ = writeln!(out);
            let _ = writeln!(out, "### `{}` — {}", row.name, row.display);
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "| tenant | component | provided | share | accuracy | saves | losses | net/ki |"
            );
            let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|");
            for (t, tally) in row.run.tenants.iter().enumerate() {
                let total = tally.attribution.total_provided();
                for (key, tallied) in tally.attribution.components() {
                    let share = if total == 0 {
                        0.0
                    } else {
                        tallied.provided as f64 / total as f64 * 100.0
                    };
                    let accuracy = tallied.accuracy().unwrap_or(0.0) * 100.0;
                    let net_per_ki = if tally.instructions == 0 {
                        0.0
                    } else {
                        tallied.net_saves() as f64 * 1000.0 / tally.instructions as f64
                    };
                    let _ = writeln!(
                        out,
                        "| t{t} | {key} | {} | {share:.1} % | {accuracy:.1} % | {} | {} | {net_per_ki:+.3} |",
                        tallied.provided, tallied.saves, tallied.losses
                    );
                }
            }
        }
        out
    }
}

/// Converts a parsed value to `u32` with a range check.
fn as_u32(value: &ConfigValue, what: &str) -> Result<u32, ConfigError> {
    let n = value.as_u64(what)?;
    u32::try_from(n).map_err(|_| ConfigError::new(format!("{what} out of range: {n}")))
}

/// Parses a `bp scenario --config` file: a JSON-subset document of the
/// form
///
/// ```text
/// {
///   "name": "my_mix",
///   "instructions": 150000,
///   "tenants": [
///     {"benchmark": "SPEC2K6-04"},
///     {"adversarial": {"seed": 7, "genes": 12}}
///   ],
///   "schedule": {"round_robin": {"quantum": 64}},
///   "flush": {"period": 50000, "mode": "partial"}
/// }
/// ```
///
/// `instructions` defaults to 150 000; `schedule` defaults to
/// round-robin with quantum 64; `flush` is optional (absent = never
/// flush); `mode` is `"partial"` or `"full"`; `schedule` alternatively
/// takes `{"seeded_bursts": {"seed": N, "min": N, "max": N}}`. The
/// parsed spec is fully validated.
pub fn parse_scenario_file(text: &str) -> Result<ScenarioSpec, ConfigError> {
    let doc = ConfigValue::parse(text)?;
    doc.expect_keys(
        "scenario file",
        &["name", "instructions", "tenants", "schedule", "flush"],
    )?;
    let name = doc.req("name")?.as_str("name")?.to_owned();
    let instructions = match doc.get("instructions") {
        Some(v) => v.as_u64("instructions")?,
        None => 150_000,
    };
    let tenants = doc
        .req("tenants")?
        .as_list("tenants")?
        .iter()
        .map(|entry| -> Result<TenantSpec, ConfigError> {
            entry.expect_keys("tenant entry", &["benchmark", "adversarial"])?;
            match (entry.get("benchmark"), entry.get("adversarial")) {
                (Some(b), None) => Ok(TenantSpec::Benchmark(b.as_str("benchmark")?.to_owned())),
                (None, Some(a)) => {
                    a.expect_keys("adversarial tenant", &["seed", "genes"])?;
                    Ok(TenantSpec::Adversarial {
                        seed: a.req("seed")?.as_u64("seed")?,
                        genes: a.req("genes")?.as_usize("genes")?,
                    })
                }
                _ => Err(ConfigError::new(
                    "tenant entry needs exactly one of `benchmark` or `adversarial`",
                )),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let schedule = match doc.get("schedule") {
        None => InterleaveSchedule::RoundRobin { quantum: 64 },
        Some(s) => {
            s.expect_keys("schedule", &["round_robin", "seeded_bursts"])?;
            match (s.get("round_robin"), s.get("seeded_bursts")) {
                (Some(rr), None) => {
                    rr.expect_keys("round_robin schedule", &["quantum"])?;
                    InterleaveSchedule::RoundRobin {
                        quantum: as_u32(rr.req("quantum")?, "quantum")?,
                    }
                }
                (None, Some(sb)) => {
                    sb.expect_keys("seeded_bursts schedule", &["seed", "min", "max"])?;
                    InterleaveSchedule::SeededBursts {
                        seed: sb.req("seed")?.as_u64("seed")?,
                        min: as_u32(sb.req("min")?, "min")?,
                        max: as_u32(sb.req("max")?, "max")?,
                    }
                }
                _ => {
                    return Err(ConfigError::new(
                        "schedule needs exactly one of `round_robin` or `seeded_bursts`",
                    ))
                }
            }
        }
    };
    let flush = doc
        .get("flush")
        .map(|f| -> Result<ScenarioFlush, ConfigError> {
            f.expect_keys("flush", &["period", "mode"])?;
            let period = f.req("period")?.as_u64("period")?;
            let mode = match f.req("mode")?.as_str("mode")? {
                "partial" => FlushMode::Partial,
                "full" => FlushMode::Full,
                other => {
                    return Err(ConfigError::new(format!(
                        "unknown flush mode `{other}` (partial, full)"
                    )))
                }
            };
            Ok(ScenarioFlush { period, mode })
        })
        .transpose()?;
    let spec = ScenarioSpec {
        name,
        tenants,
        schedule,
        flush,
        instructions,
    };
    spec.validate().map_err(ConfigError::new)?;
    Ok(spec)
}

/// Outcome of an [`adversarial_search`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialSearchResult {
    /// The worst-case genome found. Replaying it
    /// ([`Genome::stream`]) reproduces `mpki` exactly.
    pub genome: Genome,
    /// MPKI of the target config on the worst-case stream.
    pub mpki: f64,
    /// MPKI of the same config on the quiet reference benchmark at the
    /// same instruction budget — the search must end strictly above it.
    pub baseline_mpki: f64,
    /// Streams evaluated (initial genome + one per iteration).
    pub evaluations: u32,
    /// Accepted (strictly improving) mutations.
    pub improvements: u32,
}

/// Seeded hill-climb over branch-pattern [`Genome`]s maximizing the
/// MPKI of one registry config.
///
/// Each iteration proposes one deterministic point mutation of the
/// incumbent ([`Genome::mutated`], seeded from `seed` and the iteration
/// index) and keeps it iff the target predictor — rebuilt cold for
/// every evaluation, per the CBP protocol — mispredicts strictly more
/// per kilo instruction. There is **no wall-clock anywhere in the
/// loop**: the same `(target, seed, genes, instructions, iterations)`
/// always walks the same path to the same worst-case genome, so a
/// reported result is reproducible from its parameters alone.
pub fn adversarial_search(
    target: &PredictorSpec,
    seed: u64,
    genes: usize,
    instructions: u64,
    iterations: u32,
) -> AdversarialSearchResult {
    let eval = |g: &Genome| simulate_stream(target.make().as_mut(), g.stream(instructions)).mpki();
    let mut best = Genome::seeded(seed, genes);
    let mut best_mpki = eval(&best);
    let mut improvements = 0u32;
    for i in 0..iterations {
        let mutation_seed = seed ^ (u64::from(i) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let candidate = best.mutated(mutation_seed);
        let mpki = eval(&candidate);
        if mpki > best_mpki {
            best = candidate;
            best_mpki = mpki;
            improvements += 1;
        }
    }
    let baseline = bp_workloads::quick_benchmark("quiet-baseline", 1, instructions);
    let baseline_mpki = crate::run::simulate(target.make().as_mut(), &baseline).mpki();
    AdversarialSearchResult {
        genome: best,
        mpki: best_mpki,
        baseline_mpki,
        evaluations: iterations + 1,
        improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workloads::SingleTenant;

    fn two_predictors() -> Vec<PredictorSpec> {
        ["bimodal", "tage-gsc+imli"]
            .iter()
            .map(|n| lookup(n).expect("registered"))
            .collect()
    }

    #[test]
    fn builtin_scenarios_validate_and_unknown_is_none() {
        for name in SCENARIO_NAMES {
            let spec = scenario_by_name(name).expect("builtin");
            assert_eq!(spec.name, name);
            spec.validate().expect("builtin scenarios are valid");
        }
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn scenario_default_predictors_resolve() {
        assert_eq!(
            scenario_report_predictors().len(),
            SCENARIO_REPORT_NAMES.len()
        );
    }

    #[test]
    fn single_tenant_scenario_matches_plain_simulation() {
        // The degenerate scenario — one tenant, no flushes — must be
        // bit-identical to simulate_stream on the raw benchmark.
        let bench = find_benchmark("SPEC2K6-04").expect("paper benchmark");
        for spec in two_predictors() {
            let plain = simulate_stream(spec.make().as_mut(), bench.stream(40_000));
            let mut events = SingleTenant::new(bench.stream(40_000));
            let run = simulate_scenario(&spec, &mut events);
            assert_eq!(run.stats, plain.stats, "{}", spec.name);
            assert_eq!(run.instructions, plain.instructions);
            assert_eq!(run.records, plain.records);
            assert_eq!(run.flushes, 0);
            assert_eq!(run.tenants.len(), 1);
            assert_eq!(run.tenants[0].stats, plain.stats);
        }
    }

    #[test]
    fn tenant_tallies_conserve_combined_totals() {
        let scenario = scenario_by_name("paper_mix").expect("builtin");
        for spec in two_predictors() {
            let mut events = scenario.events();
            let run = simulate_scenario(&spec, events.as_mut());
            assert_eq!(run.tenants.len(), scenario.tenants.len());
            let mut stats = PredictorStats::default();
            let mut instructions = 0u64;
            for tally in &run.tenants {
                stats.merge(&tally.stats);
                instructions += tally.instructions;
                assert_eq!(
                    tally.attribution.total_provided(),
                    tally.stats.predicted,
                    "every prediction is attributed to its tenant"
                );
            }
            assert_eq!(
                stats, run.stats,
                "{}: tenant stats must sum exactly",
                spec.name
            );
            assert_eq!(instructions, run.instructions);
        }
    }

    #[test]
    fn fused_and_solo_scenario_runs_are_identical() {
        let scenario = scenario_by_name("paper_switch").expect("builtin");
        let predictors = two_predictors();
        let mut events = scenario.events();
        let fused = simulate_scenario_multi(&predictors, events.as_mut());
        for (spec, fused_run) in predictors.iter().zip(&fused) {
            let mut solo_events = scenario.events();
            let solo = simulate_scenario(spec, solo_events.as_mut());
            assert_eq!(fused_run, &solo, "{} diverged under fusion", spec.name);
        }
    }

    #[test]
    fn scenario_report_is_deterministic_across_jobs() {
        let scenario = scenario_by_name("paper_mix").expect("builtin");
        let predictors = two_predictors();
        let a = run_scenario(&scenario, &predictors, 1, &|_| {}).expect("runs");
        let b = run_scenario(&scenario, &predictors, 8, &|_| {}).expect("runs");
        assert_eq!(a, b, "report must not depend on worker count");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_markdown(), b.to_markdown());
        let md = a.to_markdown();
        assert!(md.contains("## MPKI (combined and per tenant"));
        assert!(md.contains("## Per-tenant component attribution"));
        let json = a.to_json();
        assert!(json.contains("\"report\": \"bp-scenario\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn partial_flushes_fire_and_hurt_accuracy() {
        let quiet = scenario_by_name("paper_mix").expect("builtin");
        let flushed = scenario_by_name("paper_switch").expect("builtin");
        let spec = lookup("tage-gsc+imli").expect("registered");
        let mut quiet_events = quiet.events();
        let quiet_run = simulate_scenario(&spec, quiet_events.as_mut());
        let mut flushed_events = flushed.events();
        let flushed_run = simulate_scenario(&spec, flushed_events.as_mut());
        assert_eq!(quiet_run.flushes, 0);
        assert!(
            flushed_run.flushes >= 10,
            "600k/50k: {}",
            flushed_run.flushes
        );
        assert!(
            flushed_run.stats.mispredicted > quiet_run.stats.mispredicted,
            "history flushes must cost mispredictions ({} vs {})",
            flushed_run.stats.mispredicted,
            quiet_run.stats.mispredicted
        );
    }

    #[test]
    fn full_flush_is_at_least_as_destructive_as_partial() {
        let mut scenario = scenario_by_name("paper_switch").expect("builtin");
        let spec = lookup("tage-gsc+imli").expect("registered");
        let mut partial_events = scenario.events();
        let partial = simulate_scenario(&spec, partial_events.as_mut());
        scenario.flush = Some(ScenarioFlush {
            period: 50_000,
            mode: FlushMode::Full,
        });
        let mut full_events = scenario.events();
        let full = simulate_scenario(&spec, full_events.as_mut());
        assert_eq!(partial.flushes, full.flushes);
        assert!(
            full.stats.mispredicted > partial.stats.mispredicted,
            "cold rebuilds forget learned tables too ({} vs {})",
            full.stats.mispredicted,
            partial.stats.mispredicted
        );
    }

    #[test]
    fn parse_scenario_file_roundtrip_and_errors() {
        let spec = parse_scenario_file(
            r#"{
                "name": "custom",
                "instructions": 60000,
                "tenants": [
                    {"benchmark": "SPEC2K6-04"},
                    {"adversarial": {"seed": 7, "genes": 12}}
                ],
                "schedule": {"seeded_bursts": {"seed": 3, "min": 8, "max": 64}},
                "flush": {"period": 20000, "mode": "full"}
            }"#,
        )
        .expect("valid file");
        assert_eq!(spec.name, "custom");
        assert_eq!(spec.instructions, 60_000);
        assert_eq!(spec.tenants.len(), 2);
        assert_eq!(
            spec.schedule,
            InterleaveSchedule::SeededBursts {
                seed: 3,
                min: 8,
                max: 64
            }
        );
        assert_eq!(
            spec.flush,
            Some(ScenarioFlush {
                period: 20_000,
                mode: FlushMode::Full
            })
        );

        // Defaults: schedule and flush optional.
        let spec = parse_scenario_file(r#"{"name": "d", "tenants": [{"benchmark": "MM-4"}]}"#)
            .expect("defaults");
        assert_eq!(
            spec.schedule,
            InterleaveSchedule::RoundRobin { quantum: 64 }
        );
        assert_eq!(spec.flush, None);
        assert_eq!(spec.instructions, 150_000);

        for bad in [
            r#"{"tenants": [{"benchmark": "MM-4"}]}"#,
            r#"{"name": "x", "tenants": []}"#,
            r#"{"name": "x", "tenants": [{"benchmark": "no-such-benchmark"}]}"#,
            r#"{"name": "x", "tenants": [{"benchmark": "MM-4"}], "flush": {"period": 1, "mode": "sideways"}}"#,
            r#"{"name": "bad name!", "tenants": [{"benchmark": "MM-4"}]}"#,
            r#"{"name": "x", "tenants": [{"benchmark": "MM-4", "adversarial": {"seed": 1, "genes": 2}}]}"#,
        ] {
            assert!(parse_scenario_file(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn adversarial_search_is_reproducible_and_beats_quiet_baseline() {
        let spec = lookup("tage-gsc+imli").expect("registered");
        let a = adversarial_search(&spec, 0xBAD5EED, 8, 20_000, 12);
        let b = adversarial_search(&spec, 0xBAD5EED, 8, 20_000, 12);
        assert_eq!(a, b, "fixed seed must reproduce the identical search");
        assert!(
            a.mpki > a.baseline_mpki,
            "worst case ({:.3} MPKI) must sit strictly above the quiet baseline ({:.3})",
            a.mpki,
            a.baseline_mpki
        );
        // The genome alone reproduces the reported MPKI.
        let replayed = simulate_stream(spec.make().as_mut(), a.genome.stream(20_000)).mpki();
        assert!((replayed - a.mpki).abs() < 1e-12);
        assert_eq!(a.evaluations, 13);
        // A different seed walks a different path.
        let c = adversarial_search(&spec, 0x0DD5EED, 8, 20_000, 12);
        assert_ne!(a.genome, c.genome);
    }
}
