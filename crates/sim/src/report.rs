//! Paper-style reporting: component attribution, storage budgets, and
//! MPKI tables folded into one deterministic document.
//!
//! The IMLI paper's results are ablation tables — predictor × suite
//! MPKI at fixed storage budgets, explained by *which component* fixed
//! *which branches*. This module turns a grid run into that shape:
//!
//! * [`simulate_stream_attributed`] — the CBP protocol driven through
//!   [`ConditionalPredictor::predict_attributed`], folding every
//!   prediction into per-component [`ComponentTally`]s split into
//!   warmup and steady-state phases. Produces bit-identical predictions
//!   to [`crate::simulate_stream`] (property-tested);
//! * [`run_report`] — the parallel (predictor × benchmark) grid of
//!   attributed runs, aggregated per predictor into a [`SuiteReport`];
//! * [`SuiteReport::to_markdown`] / [`SuiteReport::to_json`] —
//!   deterministic renderings (no timestamps, no wall-clock, stable
//!   ordering): the same inputs produce byte-identical reports, which
//!   is what makes them diffable artifacts of record.

use crate::cache::{report_cell_key, CacheKey, SimCache};
use crate::engine::{
    auto_fuses, run_columns, run_indexed, transpose_columns, CellLabel, CellUpdate,
};
use crate::registry::PredictorSpec;
use crate::run::{fill_multi_block, Mpki, SimResult, MULTI_BLOCK_RECORDS};
use bp_components::{ConditionalPredictor, PredictionAttribution, PredictorStats, StorageItem};
use bp_trace::BranchStream;
use bp_workloads::BenchmarkSpec;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-component prediction outcomes over one run (or aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentTally {
    /// Predictions this component provided.
    pub provided: u64,
    /// Provided predictions that were correct.
    pub correct: u64,
    /// Provided predictions made with high confidence.
    pub high_confidence: u64,
    /// "Steals": provided correctly while the alternate path would have
    /// mispredicted — the mispredictions this component removed.
    pub saves: u64,
    /// Provided wrongly while the alternate path would have been
    /// correct — the mispredictions this component introduced.
    pub losses: u64,
}

impl ComponentTally {
    /// Fraction of provided predictions that were correct, or `None`
    /// before any prediction.
    pub fn accuracy(&self) -> Option<f64> {
        (self.provided != 0).then(|| self.correct as f64 / self.provided as f64)
    }

    /// Net mispredictions removed by this component versus its
    /// alternate path (saves − losses) — a per-component ablation
    /// estimate without re-running the grid.
    pub fn net_saves(&self) -> i64 {
        self.saves as i64 - self.losses as i64
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ComponentTally) {
        self.provided += other.provided;
        self.correct += other.correct;
        self.high_confidence += other.high_confidence;
        self.saves += other.saves;
        self.losses += other.losses;
    }
}

/// Prediction attribution folded per component key (see
/// [`bp_components::ProviderComponent::key`]), in deterministic
/// (alphabetical) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionSummary {
    tallies: BTreeMap<&'static str, ComponentTally>,
}

impl AttributionSummary {
    /// Folds one prediction into the summary. `pred` is the final
    /// prediction, `taken` the resolved outcome. The provider/save/loss
    /// split is [`PredictionAttribution::classify`]'s — one definition
    /// shared with the scenario layer's per-tenant tallies.
    pub fn record(&mut self, attribution: &PredictionAttribution, pred: bool, taken: bool) {
        let tally = self.tallies.entry(attribution.component.key()).or_default();
        let outcome = attribution.classify(pred, taken);
        tally.provided += 1;
        tally.correct += u64::from(outcome.correct);
        tally.high_confidence += u64::from(outcome.high_confidence);
        tally.saves += u64::from(outcome.save);
        tally.losses += u64::from(outcome.loss);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &AttributionSummary) {
        for (key, tally) in &other.tallies {
            self.tallies.entry(key).or_default().merge(tally);
        }
    }

    /// The tally of one component key, if it ever provided.
    pub fn get(&self, key: &str) -> Option<&ComponentTally> {
        self.tallies.get(key)
    }

    /// All components that provided at least one prediction, in stable
    /// alphabetical order.
    pub fn components(&self) -> impl Iterator<Item = (&'static str, &ComponentTally)> {
        self.tallies.iter().map(|(k, v)| (*k, v))
    }

    /// Total predictions across all components (equals the number of
    /// conditional branches of the run).
    pub fn total_provided(&self) -> u64 {
        self.tallies.values().map(|t| t.provided).sum()
    }

    /// Rebuilds one component entry from a decoded cache payload. The
    /// key must already be interned ([`intern_component_key`]): cached
    /// entries can only name components that exist in this build.
    pub(crate) fn insert_tally(&mut self, key: &'static str, tally: ComponentTally) {
        self.tallies.insert(key, tally);
    }
}

/// The closed set of provider-component keys
/// ([`bp_components::ProviderComponent::key`] values plus
/// `"unattributed"`), alphabetical. Cache decoding interns parsed
/// attribution keys against this set so an [`AttributionSummary`] keeps
/// its `&'static str` keys; an unknown key means the entry predates (or
/// postdates) this build's component vocabulary and must be recomputed.
pub(crate) const COMPONENT_KEYS: [&str; 7] = [
    "base",
    "corrector",
    "loop",
    "neural",
    "tagged",
    "unattributed",
    "wormhole",
];

/// Interns `key` against [`COMPONENT_KEYS`]; `None` marks the whole
/// cached entry undecodable.
pub(crate) fn intern_component_key(key: &str) -> Option<&'static str> {
    COMPONENT_KEYS.iter().find(|k| **k == key).copied()
}

/// Statistics of one phase (warmup or steady state) of an attributed
/// run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Instructions retired during this phase.
    pub instructions: u64,
    /// Prediction counts of this phase.
    pub stats: PredictorStats,
    /// Per-component attribution of this phase.
    pub attribution: AttributionSummary,
}

impl PhaseSummary {
    /// MPKI over this phase only.
    pub fn mpki(&self) -> f64 {
        Mpki::from_counts(self.stats.mispredicted, self.instructions).value()
    }

    /// Merges another phase summary (e.g. the same phase of another
    /// benchmark) into this one.
    pub fn merge(&mut self, other: &PhaseSummary) {
        self.instructions += other.instructions;
        self.stats.merge(&other.stats);
        self.attribution.merge(&other.attribution);
    }
}

/// The result of one attributed simulation: the plain [`SimResult`]
/// plus warmup/steady-state attribution phases.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedRun {
    /// The plain simulation result — identical to what
    /// [`crate::simulate_stream`] returns for the same stream.
    pub result: SimResult,
    /// The configured warmup boundary in instructions.
    pub warmup_instructions: u64,
    /// The first `warmup_instructions` of the run.
    pub warmup: PhaseSummary,
    /// Everything after the warmup boundary.
    pub steady: PhaseSummary,
}

/// Simulates `predictor` over `stream` with the CBP protocol through
/// the attribution channel, splitting results at `warmup_instructions`
/// retired instructions: a record belongs to warmup while the running
/// instruction count *including that record* stays within the budget,
/// so a record whose retirement crosses the boundary already counts as
/// steady state.
///
/// Predictions are guaranteed identical to [`crate::simulate_stream`]
/// on the same stream: both drive the same prediction path, attribution
/// is a read-only byproduct.
pub fn simulate_stream_attributed<P, S>(
    predictor: &mut P,
    mut stream: S,
    warmup_instructions: u64,
) -> AttributedRun
where
    P: ConditionalPredictor + ?Sized,
    S: BranchStream,
{
    let benchmark = stream.name().to_owned();
    let mut stats = PredictorStats::default();
    let mut instructions = 0u64;
    let mut records = 0u64;
    let mut warmup = PhaseSummary::default();
    let mut steady = PhaseSummary::default();
    while let Some(record) = stream.next_record() {
        instructions += record.instructions();
        records += 1;
        let phase = if instructions <= warmup_instructions {
            &mut warmup
        } else {
            &mut steady
        };
        phase.instructions += record.instructions();
        if record.is_conditional() {
            let (pred, attribution) = predictor.predict_attributed(record.pc);
            let correct = pred == record.taken;
            stats.record(correct);
            phase.stats.record(correct);
            phase.attribution.record(&attribution, pred, record.taken);
            predictor.update(&record);
        } else {
            predictor.notify_nonconditional(&record);
        }
    }
    AttributedRun {
        result: SimResult {
            benchmark,
            predictor: predictor.name().to_owned(),
            instructions,
            records,
            stats,
        },
        warmup_instructions,
        warmup,
        steady,
    }
}

/// Per-predictor accumulation state of one fused attributed pass.
#[derive(Default)]
struct MultiAccum {
    stats: PredictorStats,
    warmup: PhaseSummary,
    steady: PhaseSummary,
}

/// [`simulate_stream_attributed`] for *several* predictors over **one**
/// pass of the stream — the attributed twin of
/// [`crate::simulate_stream_multi`], and the core of the fused report
/// path.
///
/// The stream is pulled once in blocks; each predictor consumes the
/// whole block before the next (cache-friendly, exactly like the plain
/// fused path). The warmup boundary is applied per record from the
/// running instruction total, which is a pure function of the record
/// sequence — so every predictor sees the identical warmup/steady
/// split, and every returned [`AttributedRun`] is bit-identical to a
/// solo [`simulate_stream_attributed`] over an equal stream.
pub fn simulate_stream_attributed_multi<S>(
    predictors: &mut [Box<dyn ConditionalPredictor + Send>],
    mut stream: S,
    warmup_instructions: u64,
) -> Vec<AttributedRun>
where
    S: BranchStream,
{
    let benchmark = stream.name().to_owned();
    let mut accums: Vec<MultiAccum> = predictors.iter().map(|_| MultiAccum::default()).collect();
    let mut instructions = 0u64;
    let mut records = 0u64;
    let mut block = Vec::with_capacity(MULTI_BLOCK_RECORDS);
    loop {
        let block_start = instructions;
        fill_multi_block(&mut stream, &mut block, &mut instructions, &mut records);
        if block.is_empty() {
            break;
        }
        for (predictor, accum) in predictors.iter_mut().zip(accums.iter_mut()) {
            let mut running = block_start;
            for record in &block {
                running += record.instructions();
                let phase = if running <= warmup_instructions {
                    &mut accum.warmup
                } else {
                    &mut accum.steady
                };
                phase.instructions += record.instructions();
                if record.is_conditional() {
                    let (pred, attribution) = predictor.predict_attributed(record.pc);
                    let correct = pred == record.taken;
                    accum.stats.record(correct);
                    phase.stats.record(correct);
                    phase.attribution.record(&attribution, pred, record.taken);
                    predictor.update(record);
                } else {
                    predictor.notify_nonconditional(record);
                }
            }
        }
        if block.len() < MULTI_BLOCK_RECORDS {
            break;
        }
    }
    predictors
        .iter()
        .zip(accums)
        .map(|(predictor, accum)| AttributedRun {
            result: SimResult {
                benchmark: benchmark.clone(),
                predictor: predictor.name().to_owned(),
                instructions,
                records,
                stats: accum.stats,
            },
            warmup_instructions,
            warmup: accum.warmup,
            steady: accum.steady,
        })
        .collect()
}

/// One predictor row of a [`SuiteReport`]: suite-wide MPKI, exact
/// storage itemization, and aggregated attribution phases.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Registry name (`"tage-gsc+imli"`).
    pub name: String,
    /// Configured display name (`"TAGE-GSC+IMLI"`).
    pub display: String,
    /// Host family label.
    pub family: String,
    /// Paper section/table this configuration reproduces.
    pub paper_ref: String,
    /// Exact per-table storage itemization.
    pub storage_items: Vec<StorageItem>,
    /// Total storage in bits (sum of the items).
    pub storage_bits: u64,
    /// Per-benchmark MPKI, in suite order.
    pub mpki: Vec<f64>,
    /// Warmup phase aggregated over the whole suite.
    pub warmup: PhaseSummary,
    /// Steady-state phase aggregated over the whole suite.
    pub steady: PhaseSummary,
}

impl ReportRow {
    /// Arithmetic-mean MPKI over the suite (warmup included), the
    /// paper's headline metric.
    pub fn mean_mpki(&self) -> f64 {
        if self.mpki.is_empty() {
            return 0.0;
        }
        self.mpki.iter().sum::<f64>() / self.mpki.len() as f64
    }

    /// MPKI over the steady-state phase only.
    pub fn steady_mpki(&self) -> f64 {
        self.steady.mpki()
    }

    /// Storage in Kbit.
    pub fn storage_kbit(&self) -> f64 {
        self.storage_bits as f64 / 1024.0
    }
}

/// A complete paper-style report over one suite: every predictor's
/// MPKI, storage budget, and component attribution.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Suite label (`"paper"`, `"cbp4"`, `"cbp3"`).
    pub suite: String,
    /// Instructions per benchmark.
    pub instructions: u64,
    /// Warmup boundary in instructions.
    pub warmup_instructions: u64,
    /// Benchmark names, in suite order.
    pub benchmarks: Vec<String>,
    /// Predictor rows, in input order.
    pub rows: Vec<ReportRow>,
    /// Dynamic branch records of each grid cell, row-major
    /// (`cell_records[p * benchmarks.len() + b]`). Deterministic.
    pub cell_records: Vec<u64>,
    /// Wall seconds spent on each cell, row-major like `cell_records`
    /// (under the fused path: the column's wall time apportioned
    /// evenly). Throughput telemetry only — never serialized into the
    /// deterministic report documents, and excluded from equality.
    pub cell_seconds: Vec<f64>,
}

/// Equality deliberately ignores `cell_seconds`: the report's content
/// is deterministic across worker counts, scheduling strategies, and
/// runs; wall-clock is not. Mirrors [`crate::GridResult`]'s equality.
impl PartialEq for SuiteReport {
    fn eq(&self, other: &Self) -> bool {
        self.suite == other.suite
            && self.instructions == other.instructions
            && self.warmup_instructions == other.warmup_instructions
            && self.benchmarks == other.benchmarks
            && self.rows == other.rows
            && self.cell_records == other.cell_records
    }
}

/// Runs the full attributed (predictor × benchmark) grid and folds it
/// into a [`SuiteReport`]: one fresh cold predictor per cell (the CBP
/// protocol), fanned out over `jobs` workers with the engine's dynamic
/// scheduler. Deterministic: the report depends only on the inputs,
/// never on worker count or scheduling.
///
/// Scheduling follows the engine's auto heuristic: when at least two
/// predictors share each benchmark and the columns can keep every
/// worker busy, whole benchmark columns are fused
/// ([`simulate_stream_attributed_multi`]) so each stream is generated
/// once instead of once per predictor; otherwise cells are scheduled
/// individually. Both paths produce the identical report.
pub fn run_report(
    suite: &str,
    predictors: &[PredictorSpec],
    benchmarks: &[BenchmarkSpec],
    instructions: u64,
    warmup_instructions: u64,
    jobs: usize,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> SuiteReport {
    run_report_with_cache(
        suite,
        predictors,
        benchmarks,
        instructions,
        warmup_instructions,
        jobs,
        None,
        progress,
    )
}

/// [`run_report`] with an optional result cache. Every cell key is
/// probed before any scheduling; verified hits are spliced in (their
/// progress callbacks fire first, in cell order) and only the miss-set
/// is dispatched — under the fused path each benchmark column fuses
/// only its co-resident misses. Computed cells are written back under
/// the policy. The report is bit-identical with the cache absent,
/// cold, or warm.
#[allow(clippy::too_many_arguments)]
pub fn run_report_with_cache(
    suite: &str,
    predictors: &[PredictorSpec],
    benchmarks: &[BenchmarkSpec],
    instructions: u64,
    warmup_instructions: u64,
    jobs: usize,
    cache: Option<&SimCache>,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> SuiteReport {
    let total = predictors.len() * benchmarks.len();
    let fused = auto_fuses(predictors.len(), benchmarks.len(), jobs);
    let timed: Vec<(AttributedRun, f64)> = if let Some(cache) = cache.filter(|c| c.enabled()) {
        run_attributed_cached(
            cache,
            predictors,
            benchmarks,
            instructions,
            warmup_instructions,
            jobs,
            progress,
        )
    } else if fused {
        let columns = run_columns(
            jobs,
            benchmarks.len(),
            0,
            total,
            |b| {
                let bench = &benchmarks[b];
                let mut column: Vec<Box<dyn ConditionalPredictor + Send>> =
                    predictors.iter().map(PredictorSpec::make).collect();
                let runs = simulate_stream_attributed_multi(
                    &mut column,
                    bench.stream(instructions),
                    warmup_instructions,
                );
                let labels = predictors
                    .iter()
                    .zip(&runs)
                    .map(|(spec, run)| CellLabel {
                        predictor: &spec.name,
                        benchmark: &bench.name,
                        mpki: run.result.mpki(),
                    })
                    .collect();
                (runs, labels)
            },
            progress,
        );
        let (cells, seconds) = transpose_columns(columns, predictors.len(), benchmarks.len());
        cells.into_iter().zip(seconds).collect()
    } else {
        run_indexed(
            jobs,
            total,
            0,
            total,
            |idx| {
                let spec = &predictors[idx / benchmarks.len()];
                let bench = &benchmarks[idx % benchmarks.len()];
                let mut predictor = spec.make();
                let run = simulate_stream_attributed(
                    predictor.as_mut(),
                    bench.stream(instructions),
                    warmup_instructions,
                );
                let label = CellLabel {
                    predictor: &spec.name,
                    benchmark: &bench.name,
                    mpki: run.result.mpki(),
                };
                (run, label)
            },
            progress,
        )
    };
    let (runs, cell_seconds): (Vec<AttributedRun>, Vec<f64>) = timed.into_iter().unzip();
    let cell_records: Vec<u64> = runs.iter().map(|r| r.result.records).collect();

    let rows = predictors
        .iter()
        .enumerate()
        .map(|(p, spec)| {
            let instance = spec.make();
            let storage_items = instance.storage_items();
            let storage_bits: u64 = storage_items.iter().map(|i| i.bits).sum();
            let row_runs = &runs[p * benchmarks.len()..(p + 1) * benchmarks.len()];
            let mut warmup = PhaseSummary::default();
            let mut steady = PhaseSummary::default();
            for run in row_runs {
                warmup.merge(&run.warmup);
                steady.merge(&run.steady);
            }
            ReportRow {
                name: spec.name.to_owned(),
                display: instance.name().to_owned(),
                family: spec.family.to_string(),
                paper_ref: spec.paper_ref.to_owned(),
                storage_items,
                storage_bits,
                mpki: row_runs.iter().map(|r| r.result.mpki()).collect(),
                warmup,
                steady,
            }
        })
        .collect();

    SuiteReport {
        suite: suite.to_owned(),
        instructions,
        warmup_instructions,
        benchmarks: benchmarks.iter().map(|b| b.name.clone()).collect(),
        rows,
        cell_records,
        cell_seconds,
    }
}

/// The cache-aware attributed grid dispatch behind
/// [`run_report_with_cache`]: probe every key, splice verified hits
/// (zero wall seconds — no simulation ran), dispatch only the misses,
/// store what was computed. Hits report progress first so `completed`
/// stays monotonic when the schedulers continue from the hit count.
fn run_attributed_cached(
    cache: &SimCache,
    predictors: &[PredictorSpec],
    benchmarks: &[BenchmarkSpec],
    instructions: u64,
    warmup_instructions: u64,
    jobs: usize,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> Vec<(AttributedRun, f64)> {
    let n_b = benchmarks.len();
    let total = predictors.len() * n_b;
    let keys: Vec<CacheKey> = predictors
        .iter()
        .flat_map(|spec| {
            benchmarks
                .iter()
                .map(|bench| report_cell_key(spec, &bench.name, instructions, warmup_instructions))
        })
        .collect();
    let mut cells: Vec<Option<(AttributedRun, f64)>> = keys
        .iter()
        .enumerate()
        .map(|(idx, key)| {
            cache
                .lookup_attributed(key, &benchmarks[idx % n_b].name)
                .map(|run| (run, 0.0))
        })
        .collect();
    let mut completed = 0usize;
    for (idx, cell) in cells.iter().enumerate() {
        if let Some((run, _)) = cell {
            completed += 1;
            progress(CellUpdate {
                predictor: &predictors[idx / n_b].name,
                benchmark: &benchmarks[idx % n_b].name,
                mpki: run.result.mpki(),
                completed,
                total,
            });
        }
    }
    let misses: Vec<usize> = (0..total).filter(|&idx| cells[idx].is_none()).collect();
    if misses.is_empty() {
        // Fall through: every cell was a verified hit.
    } else if auto_fuses(predictors.len(), n_b, jobs) {
        // Fuse only the co-resident misses of each benchmark column:
        // fusing a predictor subset is bit-identical to solo runs
        // (each predictor sees the same stream independently).
        let miss_columns: Vec<(usize, Vec<usize>)> = (0..n_b)
            .filter_map(|b| {
                let preds: Vec<usize> = (0..predictors.len())
                    .filter(|&p| cells[p * n_b + b].is_none())
                    .collect();
                (!preds.is_empty()).then_some((b, preds))
            })
            .collect();
        let columns = run_columns(
            jobs,
            miss_columns.len(),
            completed,
            total,
            |ci| {
                let (b, preds) = &miss_columns[ci];
                let bench = &benchmarks[*b];
                let mut column: Vec<Box<dyn ConditionalPredictor + Send>> =
                    preds.iter().map(|&p| predictors[p].make()).collect();
                let runs = simulate_stream_attributed_multi(
                    &mut column,
                    bench.stream(instructions),
                    warmup_instructions,
                );
                let labels = preds
                    .iter()
                    .zip(&runs)
                    .map(|(&p, run)| CellLabel {
                        predictor: &predictors[p].name,
                        benchmark: &bench.name,
                        mpki: run.result.mpki(),
                    })
                    .collect();
                (runs, labels)
            },
            progress,
        );
        for ((b, preds), (runs, seconds)) in miss_columns.iter().zip(columns) {
            let per_cell = seconds / runs.len().max(1) as f64;
            for (&p, run) in preds.iter().zip(runs) {
                cache.store_attributed(&keys[p * n_b + b], &run);
                cells[p * n_b + b] = Some((run, per_cell));
            }
        }
    } else {
        let computed = run_indexed(
            jobs,
            misses.len(),
            completed,
            total,
            |j| {
                let idx = misses[j];
                let spec = &predictors[idx / n_b];
                let bench = &benchmarks[idx % n_b];
                let mut predictor = spec.make();
                let run = simulate_stream_attributed(
                    predictor.as_mut(),
                    bench.stream(instructions),
                    warmup_instructions,
                );
                let label = CellLabel {
                    predictor: &spec.name,
                    benchmark: &bench.name,
                    mpki: run.result.mpki(),
                };
                (run, label)
            },
            progress,
        );
        for (&idx, (run, seconds)) in misses.iter().zip(computed) {
            cache.store_attributed(&keys[idx], &run);
            cells[idx] = Some((run, seconds));
        }
    }
    cells
        .into_iter()
        .map(|cell| cell.expect("every report cell filled"))
        .collect()
}

use bp_components::json_string as json_str;

pub(crate) fn attribution_json(summary: &AttributionSummary, indent: &str) -> String {
    let mut out = String::from("{");
    for (i, (key, t)) in summary.components().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{indent}  {}: {{\"provided\": {}, \"correct\": {}, \"high_confidence\": {}, \
             \"saves\": {}, \"losses\": {}}}",
            json_str(key),
            t.provided,
            t.correct,
            t.high_confidence,
            t.saves,
            t.losses
        );
    }
    if summary.total_provided() > 0 || summary.components().count() > 0 {
        let _ = write!(out, "\n{indent}");
    }
    out.push('}');
    out
}

impl SuiteReport {
    /// One predictor row's aggregate throughput in records/sec: the
    /// row's total records over its total per-cell wall seconds (0.0
    /// when untimed). Telemetry for the CLI's live summary — never part
    /// of the serialized report.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn row_records_per_sec(&self, p: usize) -> f64 {
        let w = self.benchmarks.len();
        assert!(p < self.rows.len() && (p + 1) * w <= self.cell_records.len());
        let seconds: f64 = self.cell_seconds[p * w..(p + 1) * w].iter().sum();
        if seconds <= 0.0 {
            return 0.0;
        }
        self.cell_records[p * w..(p + 1) * w]
            .iter()
            .map(|&r| r as f64)
            .sum::<f64>()
            / seconds
    }

    /// Renders the report as a deterministic JSON document (stable key
    /// order, fixed float precision, no timestamps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"report\": \"bp-report\",");
        let _ = writeln!(out, "  \"suite\": {},", json_str(&self.suite));
        let _ = writeln!(out, "  \"instructions\": {},", self.instructions);
        let _ = writeln!(
            out,
            "  \"warmup_instructions\": {},",
            self.warmup_instructions
        );
        out.push_str("  \"benchmarks\": [");
        for (i, b) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(b));
        }
        out.push_str("],\n  \"predictors\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_str(&row.name));
            let _ = writeln!(out, "      \"display\": {},", json_str(&row.display));
            let _ = writeln!(out, "      \"family\": {},", json_str(&row.family));
            let _ = writeln!(out, "      \"paper_ref\": {},", json_str(&row.paper_ref));
            let _ = writeln!(out, "      \"storage_bits\": {},", row.storage_bits);
            let _ = writeln!(out, "      \"storage_kbit\": {:.3},", row.storage_kbit());
            out.push_str("      \"storage\": [");
            for (j, item) in row.storage_items.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"label\": {}, \"bits\": {}}}",
                    json_str(&item.label),
                    item.bits
                );
            }
            out.push_str("],\n");
            let _ = writeln!(out, "      \"mean_mpki\": {:.6},", row.mean_mpki());
            let _ = writeln!(out, "      \"steady_mpki\": {:.6},", row.steady_mpki());
            out.push_str("      \"mpki\": [");
            for (j, m) in row.mpki.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{m:.6}");
            }
            out.push_str("],\n");
            let _ = writeln!(
                out,
                "      \"attribution\": {{\n        \"warmup\": {},\n        \"steady\": {}\n      }}",
                attribution_json(&row.warmup.attribution, "        "),
                attribution_json(&row.steady.attribution, "        ")
            );
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as deterministic Markdown in the paper's
    /// table shape: storage budgets, predictor × benchmark MPKI, and
    /// per-component attribution.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# IMLI reproduction report — `{}` suite", self.suite);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Deterministic output of `bp report {} --instr {} --warmup {}`: the same \
             inputs produce a byte-identical report (no timestamps, no wall-clock).",
            self.suite, self.instructions, self.warmup_instructions
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "- benchmarks: {} × {} instructions each (warmup: first {} instructions)",
            self.benchmarks.len(),
            self.instructions,
            self.warmup_instructions
        );
        let _ = writeln!(out, "- predictors: {}", self.rows.len());
        let _ = writeln!(out);

        // Storage budgets, itemized coarsely by top-level component.
        let _ = writeln!(out, "## Storage budgets");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Exact bit accounting from each predictor's `StorageBudget` itemization \
             (the paper quotes Kbit; 1 Kbit = 1024 bits)."
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| config | predictor | family | Kbit | bits | breakdown |"
        );
        let _ = writeln!(out, "|---|---|---|---:|---:|---|");
        for row in &self.rows {
            let mut groups: Vec<(String, u64)> = Vec::new();
            for item in &row.storage_items {
                let group = item
                    .label
                    .split_once('/')
                    .map_or(item.label.as_str(), |(head, _)| head)
                    .to_owned();
                match groups.last_mut() {
                    Some((g, bits)) if *g == group => *bits += item.bits,
                    _ => groups.push((group, item.bits)),
                }
            }
            let breakdown = groups
                .iter()
                .map(|(g, bits)| format!("{g} {:.1}", *bits as f64 / 1024.0))
                .collect::<Vec<_>>()
                .join(" + ");
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {:.1} | {} | {breakdown} |",
                row.name,
                row.display,
                row.family,
                row.storage_kbit(),
                row.storage_bits
            );
        }
        let _ = writeln!(out);

        // MPKI grid.
        let _ = writeln!(out, "## MPKI (predictor × benchmark, lower is better)");
        let _ = writeln!(out);
        let mut header = String::from("| config | mean | steady |");
        let mut rule = String::from("|---|---:|---:|");
        for b in &self.benchmarks {
            let _ = write!(header, " {b} |");
            rule.push_str("---:|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = write!(
                out,
                "| `{}` | {:.3} | {:.3} |",
                row.name,
                row.mean_mpki(),
                row.steady_mpki()
            );
            for m in &row.mpki {
                let _ = write!(out, " {m:.3} |");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);

        // Attribution.
        let _ = writeln!(out, "## Component attribution (steady state)");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Which component provided each prediction after warmup. *Saves* are \
             predictions the provider got right while its alternate path would have \
             mispredicted; *losses* the reverse; *net/ki* is (saves − losses) per kilo \
             instruction — a per-component ablation estimate. *Unattributed* rows come \
             from predictors that do not implement the attribution channel."
        );
        for row in &self.rows {
            let _ = writeln!(out);
            let _ = writeln!(out, "### `{}` — {}", row.name, row.display);
            let _ = writeln!(out);
            let total = row.steady.attribution.total_provided();
            let _ = writeln!(
                out,
                "| component | provided | share | accuracy | high-conf | saves | losses | net/ki |"
            );
            let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|");
            for (key, t) in row.steady.attribution.components() {
                let share = if total == 0 {
                    0.0
                } else {
                    t.provided as f64 / total as f64 * 100.0
                };
                let accuracy = t.accuracy().unwrap_or(0.0) * 100.0;
                let high = if t.provided == 0 {
                    0.0
                } else {
                    t.high_confidence as f64 / t.provided as f64 * 100.0
                };
                let net_per_ki = if row.steady.instructions == 0 {
                    0.0
                } else {
                    t.net_saves() as f64 * 1000.0 / row.steady.instructions as f64
                };
                let _ = writeln!(
                    out,
                    "| {key} | {} | {share:.1} % | {accuracy:.1} % | {high:.1} % | {} | {} | {net_per_ki:+.3} |",
                    t.provided, t.saves, t.losses
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::lookup;
    use crate::run::simulate_stream;
    use bp_workloads::cbp4_suite;

    fn small_inputs() -> (Vec<PredictorSpec>, Vec<BenchmarkSpec>) {
        let predictors: Vec<PredictorSpec> = ["bimodal", "tage-gsc+imli"]
            .iter()
            .map(|n| lookup(n).expect("registered"))
            .collect();
        let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(2).collect();
        (predictors, benchmarks)
    }

    #[test]
    fn attributed_run_matches_plain_simulation() {
        let (predictors, benchmarks) = small_inputs();
        for spec in &predictors {
            let plain = simulate_stream(spec.make().as_mut(), benchmarks[0].stream(30_000));
            let attributed = simulate_stream_attributed(
                spec.make().as_mut(),
                benchmarks[0].stream(30_000),
                10_000,
            );
            assert_eq!(plain, attributed.result, "{}", spec.name);
            // Phases partition the run.
            assert_eq!(
                attributed.warmup.stats.predicted + attributed.steady.stats.predicted,
                plain.stats.predicted
            );
            assert_eq!(
                attributed.warmup.instructions + attributed.steady.instructions,
                plain.instructions
            );
            assert_eq!(
                attributed.warmup.attribution.total_provided(),
                attributed.warmup.stats.predicted
            );
            assert_eq!(
                attributed.steady.attribution.total_provided(),
                attributed.steady.stats.predicted
            );
        }
    }

    #[test]
    fn attributed_components_are_meaningful() {
        let spec = lookup("tage-gsc+imli").expect("registered");
        let run = simulate_stream_attributed(
            spec.make().as_mut(),
            cbp4_suite()[0].stream(100_000),
            20_000,
        );
        // A TAGE-based predictor must attribute, and the tagged banks
        // must provide a real share of steady-state predictions.
        assert!(run.steady.attribution.get("unattributed").is_none());
        let tagged = run.steady.attribution.get("tagged").expect("tagged hits");
        assert!(tagged.provided > 0);
        // Correctness counts never exceed provided counts.
        for (_, t) in run.steady.attribution.components() {
            assert!(t.correct <= t.provided);
            assert!(t.high_confidence <= t.provided);
            assert!(t.saves <= t.correct);
            assert!(t.losses <= t.provided - t.correct);
        }
    }

    #[test]
    fn fused_attributed_runs_match_solo_runs_exactly() {
        let (predictors, benchmarks) = small_inputs();
        let mut column: Vec<Box<dyn ConditionalPredictor + Send>> =
            predictors.iter().map(PredictorSpec::make).collect();
        let fused =
            simulate_stream_attributed_multi(&mut column, benchmarks[0].stream(30_000), 10_000);
        assert_eq!(fused.len(), predictors.len());
        for (spec, run) in predictors.iter().zip(&fused) {
            let solo = simulate_stream_attributed(
                spec.make().as_mut(),
                benchmarks[0].stream(30_000),
                10_000,
            );
            assert_eq!(run, &solo, "{} diverged under fusion", spec.name);
        }
    }

    #[test]
    fn report_throughput_telemetry_is_populated_but_ignored_by_eq() {
        let (predictors, benchmarks) = small_inputs();
        let report = run_report("test", &predictors, &benchmarks, 20_000, 5_000, 1, &|_| {});
        assert_eq!(
            report.cell_records.len(),
            predictors.len() * benchmarks.len()
        );
        assert_eq!(report.cell_seconds.len(), report.cell_records.len());
        assert!(report.cell_records.iter().all(|&r| r > 0));
        for p in 0..report.rows.len() {
            assert!(report.row_records_per_sec(p) >= 0.0);
        }
        let mut other = report.clone();
        other.cell_seconds.iter_mut().for_each(|s| *s += 1.0);
        assert_eq!(report, other, "wall time must not affect equality");
    }

    #[test]
    fn report_is_deterministic_and_well_formed() {
        let (predictors, benchmarks) = small_inputs();
        let run = |jobs| {
            run_report(
                "test",
                &predictors,
                &benchmarks,
                20_000,
                5_000,
                jobs,
                &|_| {},
            )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b, "report must not depend on worker count");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_markdown(), b.to_markdown());
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.benchmarks.len(), 2);
        for row in &a.rows {
            assert_eq!(row.mpki.len(), 2);
            assert!(row.storage_bits > 0);
            assert_eq!(
                row.storage_bits,
                row.storage_items.iter().map(|i| i.bits).sum::<u64>()
            );
        }
        let md = a.to_markdown();
        assert!(md.contains("## Storage budgets"));
        assert!(md.contains("## MPKI"));
        assert!(md.contains("## Component attribution"));
        assert!(md.contains("`tage-gsc+imli`"));
        let json = a.to_json();
        assert!(json.contains("\"report\": \"bp-report\""));
        assert!(json.contains("\"steady_mpki\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn tally_arithmetic() {
        let mut t = ComponentTally::default();
        assert_eq!(t.accuracy(), None);
        t.provided = 10;
        t.correct = 7;
        t.saves = 3;
        t.losses = 1;
        assert!((t.accuracy().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(t.net_saves(), 2);
        let mut u = t;
        u.merge(&t);
        assert_eq!(u.provided, 20);
        assert_eq!(u.net_saves(), 4);
    }
}
