//! Per-static-branch misprediction analysis.
//!
//! The paper's motivation (§6): "most of these mispredictions are
//! encountered due to a small number of hard-to-predict branches". This
//! module attributes a run's mispredictions to static branches so that
//! experiments can show *which* branch class a component fixed.

use bp_components::ConditionalPredictor;
use bp_trace::Trace;
use std::collections::HashMap;
use std::fmt;

/// Misprediction counts for one static branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchProfile {
    /// The branch PC.
    pub pc: u64,
    /// Dynamic occurrences.
    pub occurrences: u64,
    /// Mispredicted occurrences.
    pub mispredictions: u64,
    /// Taken occurrences.
    pub taken: u64,
    /// Whether the (taken-)target lies below the PC.
    pub backward: bool,
}

impl BranchProfile {
    /// Misprediction ratio for this branch.
    pub fn misprediction_rate(&self) -> f64 {
        if self.occurrences == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.occurrences as f64
        }
    }
}

impl fmt::Display for BranchProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#x}{}: {}/{} mispredicted ({:.1} %)",
            self.pc,
            if self.backward { " (backward)" } else { "" },
            self.mispredictions,
            self.occurrences,
            self.misprediction_rate() * 100.0
        )
    }
}

/// A per-static-branch breakdown of one simulation.
#[derive(Debug, Clone)]
pub struct MispredictionProfile {
    profiles: Vec<BranchProfile>,
    instructions: u64,
}

impl MispredictionProfile {
    /// Runs `predictor` over `trace`, attributing every misprediction to
    /// its static branch.
    pub fn collect<P: ConditionalPredictor + ?Sized>(
        predictor: &mut P,
        trace: &Trace,
    ) -> MispredictionProfile {
        let mut map: HashMap<u64, BranchProfile> = HashMap::new();
        for record in trace.iter() {
            if record.is_conditional() {
                let pred = predictor.predict(record.pc);
                let entry = map.entry(record.pc).or_insert(BranchProfile {
                    pc: record.pc,
                    occurrences: 0,
                    mispredictions: 0,
                    taken: 0,
                    backward: record.is_backward(),
                });
                entry.occurrences += 1;
                entry.taken += u64::from(record.taken);
                entry.mispredictions += u64::from(pred != record.taken);
                predictor.update(record);
            } else {
                predictor.notify_nonconditional(record);
            }
        }
        let mut profiles: Vec<BranchProfile> = map.into_values().collect();
        profiles.sort_by(|a, b| {
            b.mispredictions
                .cmp(&a.mispredictions)
                .then(a.pc.cmp(&b.pc))
        });
        MispredictionProfile {
            profiles,
            instructions: trace.instruction_count(),
        }
    }

    /// The `n` static branches with the most mispredictions, descending.
    pub fn top(&self, n: usize) -> &[BranchProfile] {
        &self.profiles[..n.min(self.profiles.len())]
    }

    /// All profiled branches (sorted by mispredictions, descending).
    pub fn all(&self) -> &[BranchProfile] {
        &self.profiles
    }

    /// Total mispredictions across all branches.
    pub fn total_mispredictions(&self) -> u64 {
        self.profiles.iter().map(|p| p.mispredictions).sum()
    }

    /// Fraction of all mispredictions caused by the `n` worst branches —
    /// the paper's "small number of hard-to-predict branches" claim,
    /// quantified.
    pub fn concentration(&self, n: usize) -> f64 {
        let total = self.total_mispredictions();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.top(n).iter().map(|p| p.mispredictions).sum();
        top as f64 / total as f64
    }

    /// Overall MPKI of the profiled run.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_mispredictions() as f64 * 1000.0 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_components::{AlwaysTaken, Bimodal};
    use bp_trace::BranchRecord;

    fn mixed_trace() -> Trace {
        let mut t = Trace::new("mixed");
        for i in 0..300u64 {
            // An easy branch and a hard one.
            t.push(BranchRecord::conditional(0x100, 0x180, true).with_leading_instructions(4));
            t.push(BranchRecord::conditional(0x200, 0x80, i % 2 == 0).with_leading_instructions(4));
        }
        t
    }

    #[test]
    fn attributes_mispredictions_to_the_hard_branch() {
        let profile = MispredictionProfile::collect(&mut Bimodal::new(64), &mixed_trace());
        let top = profile.top(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].pc, 0x200, "the alternating branch is hardest");
        assert!(top[0].backward);
        assert!(top[0].misprediction_rate() > 0.3);
        assert!(!format!("{}", top[0]).is_empty());
    }

    #[test]
    fn concentration_reflects_skew() {
        let profile = MispredictionProfile::collect(&mut Bimodal::new(64), &mixed_trace());
        assert!(
            profile.concentration(1) > 0.9,
            "one branch causes almost all mispredictions: {:.2}",
            profile.concentration(1)
        );
        assert!((profile.concentration(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn totals_match_simulation() {
        let trace = mixed_trace();
        let profile = MispredictionProfile::collect(&mut AlwaysTaken, &trace);
        // AlwaysTaken mispredicts exactly the not-taken halves of 0x200.
        assert_eq!(profile.total_mispredictions(), 150);
        assert!(profile.mpki() > 0.0);
        assert_eq!(profile.all().len(), 2);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let profile = MispredictionProfile::collect(&mut AlwaysTaken, &Trace::new("empty"));
        assert_eq!(profile.total_mispredictions(), 0);
        assert_eq!(profile.concentration(5), 0.0);
        assert_eq!(profile.mpki(), 0.0);
        assert!(profile.top(3).is_empty());
    }
}

/// MPKI over consecutive instruction windows: the predictor's learning
/// curve. Useful for checking that suite budgets run past warm-up.
///
/// Returns one MPKI value per full window of `window_instructions`.
pub fn learning_curve<P: ConditionalPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    window_instructions: u64,
) -> Vec<f64> {
    assert!(window_instructions > 0, "window must be positive");
    let mut curve = Vec::new();
    let mut window_mispredictions = 0u64;
    let mut window_instr = 0u64;
    for record in trace.iter() {
        if record.is_conditional() {
            let pred = predictor.predict(record.pc);
            window_mispredictions += u64::from(pred != record.taken);
            predictor.update(record);
        } else {
            predictor.notify_nonconditional(record);
        }
        window_instr += record.instructions();
        if window_instr >= window_instructions {
            curve.push(window_mispredictions as f64 * 1000.0 / window_instr as f64);
            window_mispredictions = 0;
            window_instr = 0;
        }
    }
    curve
}

#[cfg(test)]
mod curve_tests {
    use super::*;
    use bp_components::Bimodal;
    use bp_trace::BranchRecord;

    #[test]
    fn curve_descends_as_the_predictor_warms_up() {
        let mut t = Trace::new("warmup");
        for _ in 0..4000u64 {
            // 50 distinct biased branches: bimodal needs a while to warm
            // all entries.
            for b in 0..50u64 {
                t.push(
                    BranchRecord::conditional(0x1000 + b * 8, 0x800, b % 5 != 0)
                        .with_leading_instructions(4),
                );
            }
        }
        let curve = learning_curve(&mut Bimodal::new(4096), &t, 50_000);
        assert!(curve.len() >= 10);
        let early = curve[0];
        let late = curve[curve.len() - 1];
        assert!(
            late <= early,
            "curve must not rise after warmup: {early:.3} -> {late:.3}"
        );
        assert_eq!(late, 0.0, "biased branches are perfectly learned");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn curve_rejects_zero_window() {
        let mut p = Bimodal::new(64);
        let _ = learning_curve(&mut p, &Trace::new("x"), 0);
    }
}
