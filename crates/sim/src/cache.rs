//! The simulator's face of the content-addressed result cache.
//!
//! `bp-cache` knows nothing about predictors: it hashes canonical key
//! text and stores opaque payloads with verify-then-trust envelopes.
//! This module supplies the simulator half:
//!
//! * [`SimCache`] — a [`bp_cache::CacheStore`] plus a
//!   [`CachePolicy`] and thread-safe hit/miss/store counters, cloneable
//!   into worker closures;
//! * canonical **key builders** for the three cell kinds the engine
//!   computes — plain grid cells (`"sim"`), attributed report cells
//!   (`"report"`), and scenario runs (`"scenario"`). Keys are built
//!   from the predictor's round-trippable config text and the workload
//!   identity, never from registry display names, worker counts, or
//!   scheduling strategy — so a cache warmed at `--jobs 1` hits at
//!   `--jobs 8`, and a sweep config solved under one budget label hits
//!   under another;
//! * **payload codecs** serializing [`SimResult`], [`AttributedRun`],
//!   and [`ScenarioRun`] through the deterministic
//!   [`ConfigValue`] renderer and parsing them back *strictly*: any
//!   missing field, unknown attribution component, or type mismatch
//!   makes the whole entry a miss to be recomputed — a corrupted
//!   payload can never produce a wrong result or a panic.

use crate::registry::PredictorSpec;
use crate::report::{intern_component_key, AttributedRun, ComponentTally, PhaseSummary};
use crate::run::SimResult;
use crate::scenario::{ScenarioRun, ScenarioSpec, TenantTally};
use bp_components::{ConfigError, ConfigValue, PredictorConfig as _, PredictorStats};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use bp_cache::{CacheKey, CachePolicy, CacheStats, CacheStore, GcOutcome};

/// A `u64` counter as a `ConfigValue` integer. Counters in this
/// workspace never approach `i64::MAX`; saturating keeps the encode
/// path panic-free, and a saturated value simply fails the strict
/// decode on read-back.
pub(crate) fn int_u64(v: u64) -> ConfigValue {
    ConfigValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Cumulative probe/store counters of one [`SimCache`], shared across
/// its clones (worker threads).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

/// The engine's handle on the result cache: store + policy + counters.
///
/// Cloning is cheap and shares the counters, so the engine can hand
/// clones to worker closures and the CLI reads one set of totals at
/// the end.
#[derive(Debug, Clone)]
pub struct SimCache {
    store: CacheStore,
    policy: CachePolicy,
    counters: Arc<CacheCounters>,
}

impl SimCache {
    /// A cache over `dir` under `policy`.
    pub fn new(dir: impl Into<PathBuf>, policy: CachePolicy) -> Self {
        SimCache {
            store: CacheStore::new(dir),
            policy,
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Does this cache participate at all? [`CachePolicy::Off`] makes
    /// every operation a silent no-op, so `Engine` code can hold a
    /// `SimCache` unconditionally.
    pub fn enabled(&self) -> bool {
        self.policy != CachePolicy::Off
    }

    /// Probes verify entries before reuse under this policy
    /// ([`CachePolicy::Refresh`] deliberately ignores them).
    fn reads_enabled(&self) -> bool {
        matches!(self.policy, CachePolicy::ReadWrite | CachePolicy::ReadOnly)
    }

    /// Computed results are written back under this policy.
    fn writes_enabled(&self) -> bool {
        matches!(self.policy, CachePolicy::ReadWrite | CachePolicy::Refresh)
    }

    /// Verified cache hits so far.
    pub fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    /// Probes that missed (absent, unverifiable, or undecodable
    /// entries; every probe under [`CachePolicy::Refresh`]).
    pub fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    /// Entries written back so far.
    pub fn stores(&self) -> u64 {
        self.counters.stores.load(Ordering::Relaxed)
    }

    /// The generic verified probe: load the envelope-checked payload,
    /// parse it, decode it strictly. Every failure mode is a counted
    /// miss; only a fully decoded value is a counted hit.
    fn lookup<T>(
        &self,
        key: &CacheKey,
        decode: impl FnOnce(&ConfigValue) -> Result<T, ConfigError>,
    ) -> Option<T> {
        if !self.enabled() {
            return None;
        }
        let decoded = if self.reads_enabled() {
            self.store
                .load(key)
                .and_then(|payload| ConfigValue::parse(&payload).ok())
                .and_then(|value| decode(&value).ok())
        } else {
            None
        };
        let counter = if decoded.is_some() {
            &self.counters.hits
        } else {
            &self.counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        decoded
    }

    /// Write `payload_value` back under `key` if the policy allows.
    /// Write failures (read-only cache dir, disk full) are swallowed:
    /// the result was computed either way.
    fn store_value(&self, key: &CacheKey, payload_value: &ConfigValue) {
        if !self.writes_enabled() {
            return;
        }
        let text = payload_value.to_text();
        if self.store.save(key, text.trim_end()).is_ok() {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Probe for a plain grid cell. `benchmark` re-checks the decoded
    /// payload's own benchmark field as a final payload-corruption
    /// tripwire on top of the envelope verification.
    pub(crate) fn lookup_sim(&self, key: &CacheKey, benchmark: &str) -> Option<SimResult> {
        self.lookup(key, decode_sim)
            .filter(|r| r.benchmark == benchmark)
    }

    /// Store a plain grid cell.
    pub(crate) fn store_sim(&self, key: &CacheKey, result: &SimResult) {
        self.store_value(key, &sim_to_value(result));
    }

    /// Probe for an attributed report cell.
    pub(crate) fn lookup_attributed(
        &self,
        key: &CacheKey,
        benchmark: &str,
    ) -> Option<AttributedRun> {
        self.lookup(key, decode_attributed)
            .filter(|r| r.result.benchmark == benchmark)
    }

    /// Store an attributed report cell.
    pub(crate) fn store_attributed(&self, key: &CacheKey, run: &AttributedRun) {
        self.store_value(key, &attributed_to_value(run));
    }

    /// Probe for a scenario run.
    pub(crate) fn lookup_scenario(&self, key: &CacheKey, tenants: usize) -> Option<ScenarioRun> {
        self.lookup(key, decode_scenario)
            .filter(|r| r.tenants.len() == tenants)
    }

    /// Store a scenario run.
    pub(crate) fn store_scenario(&self, key: &CacheKey, run: &ScenarioRun) {
        self.store_value(key, &scenario_to_value(run));
    }
}

/// Key of one plain grid cell: the config's canonical text × the
/// benchmark name × the instruction budget. Registry display names and
/// grid position are deliberately absent.
pub fn grid_cell_key(spec: &PredictorSpec, benchmark: &str, instructions: u64) -> CacheKey {
    CacheKey {
        kind: "sim".to_owned(),
        config: spec.config.to_text(),
        workload: benchmark.to_owned(),
        instructions,
        warmup: 0,
    }
}

/// Key of one attributed report cell; the warmup boundary joins the
/// key because it changes the phase split.
pub fn report_cell_key(
    spec: &PredictorSpec,
    benchmark: &str,
    instructions: u64,
    warmup_instructions: u64,
) -> CacheKey {
    CacheKey {
        kind: "report".to_owned(),
        config: spec.config.to_text(),
        workload: benchmark.to_owned(),
        instructions,
        warmup: warmup_instructions,
    }
}

/// Key of one scenario run: the workload identity is the scenario's
/// whole canonical spec text ([`ScenarioSpec::canonical_text`]), so
/// *any* change to tenants, schedule, flush policy, or budget re-keys
/// the run.
pub fn scenario_cell_key(spec: &PredictorSpec, scenario: &ScenarioSpec) -> CacheKey {
    CacheKey {
        kind: "scenario".to_owned(),
        config: spec.config.to_text(),
        workload: scenario.canonical_text(),
        instructions: scenario.instructions,
        warmup: 0,
    }
}

// ---------------------------------------------------------------------
// Payload codecs. Encoders render through ConfigValue::to_text (the
// deterministic serializer every artifact already uses); decoders are
// strict: expect_keys + typed accessors, so any drift or corruption in
// a payload surfaces as Err -> miss -> recompute.
// ---------------------------------------------------------------------

fn stats_set(value: ConfigValue, stats: &PredictorStats) -> ConfigValue {
    value
        .set("predicted", int_u64(stats.predicted))
        .set("mispredicted", int_u64(stats.mispredicted))
}

fn decode_stats(value: &ConfigValue) -> Result<PredictorStats, ConfigError> {
    Ok(PredictorStats {
        predicted: value.req("predicted")?.as_u64("predicted")?,
        mispredicted: value.req("mispredicted")?.as_u64("mispredicted")?,
    })
}

fn sim_to_value(result: &SimResult) -> ConfigValue {
    stats_set(
        ConfigValue::map()
            .set("benchmark", ConfigValue::str(result.benchmark.as_str()))
            .set("predictor", ConfigValue::str(result.predictor.as_str()))
            .set("instructions", int_u64(result.instructions))
            .set("records", int_u64(result.records)),
        &result.stats,
    )
}

fn decode_sim(value: &ConfigValue) -> Result<SimResult, ConfigError> {
    value.expect_keys(
        "cached sim result",
        &[
            "benchmark",
            "predictor",
            "instructions",
            "records",
            "predicted",
            "mispredicted",
        ],
    )?;
    Ok(SimResult {
        benchmark: value.req("benchmark")?.as_str("benchmark")?.to_owned(),
        predictor: value.req("predictor")?.as_str("predictor")?.to_owned(),
        instructions: value.req("instructions")?.as_u64("instructions")?,
        records: value.req("records")?.as_u64("records")?,
        stats: decode_stats(value)?,
    })
}

fn attribution_to_value(summary: &crate::report::AttributionSummary) -> ConfigValue {
    let mut map = ConfigValue::map();
    for (key, tally) in summary.components() {
        map = map.set(
            key,
            ConfigValue::map()
                .set("provided", int_u64(tally.provided))
                .set("correct", int_u64(tally.correct))
                .set("high_confidence", int_u64(tally.high_confidence))
                .set("saves", int_u64(tally.saves))
                .set("losses", int_u64(tally.losses)),
        );
    }
    map
}

fn decode_attribution(
    value: &ConfigValue,
) -> Result<crate::report::AttributionSummary, ConfigError> {
    let ConfigValue::Map(entries) = value else {
        return Err(ConfigError::new("cached attribution must be a map"));
    };
    let mut summary = crate::report::AttributionSummary::default();
    for (key, tally_value) in entries {
        let interned = intern_component_key(key)
            .ok_or_else(|| ConfigError::new(format!("unknown attribution component `{key}`")))?;
        tally_value.expect_keys(
            "cached component tally",
            &["provided", "correct", "high_confidence", "saves", "losses"],
        )?;
        let tally = ComponentTally {
            provided: tally_value.req("provided")?.as_u64("provided")?,
            correct: tally_value.req("correct")?.as_u64("correct")?,
            high_confidence: tally_value
                .req("high_confidence")?
                .as_u64("high_confidence")?,
            saves: tally_value.req("saves")?.as_u64("saves")?,
            losses: tally_value.req("losses")?.as_u64("losses")?,
        };
        summary.insert_tally(interned, tally);
    }
    Ok(summary)
}

fn phase_to_value(phase: &PhaseSummary) -> ConfigValue {
    stats_set(
        ConfigValue::map().set("instructions", int_u64(phase.instructions)),
        &phase.stats,
    )
    .set("attribution", attribution_to_value(&phase.attribution))
}

fn decode_phase(value: &ConfigValue) -> Result<PhaseSummary, ConfigError> {
    value.expect_keys(
        "cached phase summary",
        &["instructions", "predicted", "mispredicted", "attribution"],
    )?;
    Ok(PhaseSummary {
        instructions: value.req("instructions")?.as_u64("instructions")?,
        stats: decode_stats(value)?,
        attribution: decode_attribution(value.req("attribution")?)?,
    })
}

fn attributed_to_value(run: &AttributedRun) -> ConfigValue {
    ConfigValue::map()
        .set("sim", sim_to_value(&run.result))
        .set("warmup_instructions", int_u64(run.warmup_instructions))
        .set("warmup", phase_to_value(&run.warmup))
        .set("steady", phase_to_value(&run.steady))
}

fn decode_attributed(value: &ConfigValue) -> Result<AttributedRun, ConfigError> {
    value.expect_keys(
        "cached attributed run",
        &["sim", "warmup_instructions", "warmup", "steady"],
    )?;
    Ok(AttributedRun {
        result: decode_sim(value.req("sim")?)?,
        warmup_instructions: value
            .req("warmup_instructions")?
            .as_u64("warmup_instructions")?,
        warmup: decode_phase(value.req("warmup")?)?,
        steady: decode_phase(value.req("steady")?)?,
    })
}

fn tenant_to_value(tally: &TenantTally) -> ConfigValue {
    stats_set(
        ConfigValue::map().set("instructions", int_u64(tally.instructions)),
        &tally.stats,
    )
    .set("attribution", attribution_to_value(&tally.attribution))
}

fn decode_tenant(value: &ConfigValue) -> Result<TenantTally, ConfigError> {
    value.expect_keys(
        "cached tenant tally",
        &["instructions", "predicted", "mispredicted", "attribution"],
    )?;
    Ok(TenantTally {
        instructions: value.req("instructions")?.as_u64("instructions")?,
        stats: decode_stats(value)?,
        attribution: decode_attribution(value.req("attribution")?)?,
    })
}

fn scenario_to_value(run: &ScenarioRun) -> ConfigValue {
    stats_set(
        ConfigValue::map()
            .set("predictor", ConfigValue::str(run.predictor.as_str()))
            .set("instructions", int_u64(run.instructions))
            .set("records", int_u64(run.records)),
        &run.stats,
    )
    .set("flushes", int_u64(run.flushes))
    .set(
        "tenants",
        ConfigValue::List(run.tenants.iter().map(tenant_to_value).collect()),
    )
}

fn decode_scenario(value: &ConfigValue) -> Result<ScenarioRun, ConfigError> {
    value.expect_keys(
        "cached scenario run",
        &[
            "predictor",
            "instructions",
            "records",
            "predicted",
            "mispredicted",
            "flushes",
            "tenants",
        ],
    )?;
    Ok(ScenarioRun {
        predictor: value.req("predictor")?.as_str("predictor")?.to_owned(),
        instructions: value.req("instructions")?.as_u64("instructions")?,
        records: value.req("records")?.as_u64("records")?,
        stats: decode_stats(value)?,
        flushes: value.req("flushes")?.as_u64("flushes")?,
        tenants: value
            .req("tenants")?
            .as_list("tenants")?
            .iter()
            .map(decode_tenant)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::lookup;
    use crate::report::simulate_stream_attributed;
    use crate::run::simulate_stream;
    use crate::scenario::{scenario_by_name, simulate_scenario};
    use std::path::Path;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bp-sim-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn nuke(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sim_payload_round_trips() {
        let spec = lookup("tage-gsc+imli").expect("registered");
        let bench = bp_workloads::cbp4_suite().remove(0);
        let result = simulate_stream(spec.make().as_mut(), bench.stream(20_000));
        let decoded =
            decode_sim(&ConfigValue::parse(&sim_to_value(&result).to_text()).expect("parses"))
                .expect("decodes");
        assert_eq!(decoded, result);
    }

    #[test]
    fn attributed_payload_round_trips() {
        let spec = lookup("tage-sc-l+imli").expect("registered");
        let bench = bp_workloads::cbp4_suite().remove(0);
        let run = simulate_stream_attributed(spec.make().as_mut(), bench.stream(30_000), 10_000);
        let decoded = decode_attributed(
            &ConfigValue::parse(&attributed_to_value(&run).to_text()).expect("parses"),
        )
        .expect("decodes");
        assert_eq!(decoded, run);
    }

    #[test]
    fn scenario_payload_round_trips() {
        let scenario = scenario_by_name("hostile_mix").expect("built-in");
        let spec = lookup("gshare").expect("registered");
        let mut events = scenario.events();
        let run = simulate_scenario(&spec, events.as_mut());
        let decoded = decode_scenario(
            &ConfigValue::parse(&scenario_to_value(&run).to_text()).expect("parses"),
        )
        .expect("decodes");
        assert_eq!(decoded, run);
    }

    #[test]
    fn unknown_attribution_component_fails_decode() {
        let payload = ConfigValue::map().set(
            "martian",
            ConfigValue::map()
                .set("provided", ConfigValue::int(1u64))
                .set("correct", ConfigValue::int(1u64))
                .set("high_confidence", ConfigValue::int(0u64))
                .set("saves", ConfigValue::int(0u64))
                .set("losses", ConfigValue::int(0u64)),
        );
        assert!(decode_attribution(&payload).is_err());
    }

    #[test]
    fn cache_policies_gate_reads_and_writes() {
        let dir = scratch("policies");
        let spec = lookup("bimodal").expect("registered");
        let bench = bp_workloads::cbp4_suite().remove(0);
        let result = simulate_stream(spec.make().as_mut(), bench.stream(10_000));
        let key = grid_cell_key(&spec, &bench.name, 10_000);

        let off = SimCache::new(&dir, CachePolicy::Off);
        off.store_sim(&key, &result);
        assert_eq!(off.lookup_sim(&key, &bench.name), None);
        assert_eq!((off.hits(), off.misses(), off.stores()), (0, 0, 0));
        assert!(!off.enabled());

        let ro = SimCache::new(&dir, CachePolicy::ReadOnly);
        ro.store_sim(&key, &result);
        assert_eq!(ro.lookup_sim(&key, &bench.name), None, "ro never wrote");
        assert_eq!((ro.hits(), ro.misses(), ro.stores()), (0, 1, 0));

        let rw = SimCache::new(&dir, CachePolicy::ReadWrite);
        rw.store_sim(&key, &result);
        assert_eq!(rw.lookup_sim(&key, &bench.name).as_ref(), Some(&result));
        assert_eq!((rw.hits(), rw.misses(), rw.stores()), (1, 0, 1));

        // Refresh ignores the now-present entry on read but rewrites.
        let refresh = SimCache::new(&dir, CachePolicy::Refresh);
        assert_eq!(refresh.lookup_sim(&key, &bench.name), None);
        refresh.store_sim(&key, &result);
        assert_eq!(
            (refresh.hits(), refresh.misses(), refresh.stores()),
            (0, 1, 1)
        );

        // A benchmark-name mismatch in the decoded payload is a miss.
        assert_eq!(rw.lookup_sim(&key, "not-this-benchmark"), None);
        nuke(&dir);
    }

    #[test]
    fn keys_separate_kinds_and_budgets() {
        let spec = lookup("gshare").expect("registered");
        let sim = grid_cell_key(&spec, "B", 1000);
        let rep = report_cell_key(&spec, "B", 1000, 0);
        assert_ne!(sim.hash_hex(), rep.hash_hex(), "kind separates entries");
        assert_ne!(
            report_cell_key(&spec, "B", 1000, 100).hash_hex(),
            rep.hash_hex(),
            "warmup separates entries"
        );
        let scenario = scenario_by_name("paper_mix").expect("built-in");
        let scn = scenario_cell_key(&spec, &scenario);
        assert_eq!(scn.workload, scenario.canonical_text());
        assert_ne!(scn.hash_hex(), sim.hash_hex());
    }
}
