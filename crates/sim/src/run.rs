//! Single-benchmark simulation.

use bp_components::{ConditionalPredictor, DriveMode, PredictorStats};
use bp_trace::{BranchStream, Trace};
use std::fmt;

/// The result of simulating one predictor over one benchmark trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Predictor configuration name.
    pub predictor: String,
    /// Retired instructions in the trace.
    pub instructions: u64,
    /// Dynamic branch records consumed from the stream (all kinds, not
    /// just conditionals) — the denominator of records/sec throughput.
    pub records: u64,
    /// Prediction counts.
    pub stats: PredictorStats,
}

impl SimResult {
    /// MPKI of this run.
    pub fn mpki(&self) -> f64 {
        Mpki::of(self).value()
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.3} MPKI ({} mispredictions / {} instructions)",
            self.predictor,
            self.benchmark,
            self.mpki(),
            self.stats.mispredicted,
            self.instructions
        )
    }
}

/// Mispredictions Per Kilo Instructions — the paper's accuracy metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mpki(f64);

impl Mpki {
    /// Computes the MPKI of a simulation result.
    ///
    /// ```
    /// use bp_sim::{Mpki, SimResult};
    /// use bp_components::PredictorStats;
    /// let mut stats = PredictorStats::default();
    /// for i in 0..100 { stats.record(i % 10 != 0); }
    /// let r = SimResult {
    ///     benchmark: "b".into(),
    ///     predictor: "p".into(),
    ///     instructions: 5_000,
    ///     records: 100,
    ///     stats,
    /// };
    /// assert_eq!(Mpki::of(&r).value(), 2.0);
    /// ```
    pub fn of(result: &SimResult) -> Mpki {
        Mpki::from_counts(result.stats.mispredicted, result.instructions)
    }

    /// MPKI from raw counts.
    pub fn from_counts(mispredictions: u64, instructions: u64) -> Mpki {
        if instructions == 0 {
            return Mpki(0.0);
        }
        Mpki(mispredictions as f64 * 1000.0 / instructions as f64)
    }

    /// The numeric value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for Mpki {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Simulates `predictor` over `trace` with the CBP protocol: predict and
/// update every conditional branch, notify non-conditional branches.
///
/// The predictor is *not* reset — callers wanting cold-start behaviour
/// construct a fresh predictor per trace (as [`crate::run_suite`] does).
///
/// Drives the materialized record slice directly through
/// [`drive_block`] — the same CBP protocol and one-record lookahead as
/// [`simulate_stream`], minus the per-record stream-cursor overhead,
/// and bit-identical to it on the equivalent stream (the lookahead
/// peek is `block[i + 1]` either way).
pub fn simulate<P: ConditionalPredictor + ?Sized>(predictor: &mut P, trace: &Trace) -> SimResult {
    simulate_mode(predictor, trace, DriveMode::default())
}

/// [`simulate`] with an explicit [`DriveMode`]: `Pipelined` drives the
/// predictor's planned front-end/back-end block loop
/// ([`ConditionalPredictor::run_block`]), `Scalar` the reference
/// per-record protocol ([`ConditionalPredictor::run_block_scalar`]).
/// The two produce bit-identical results for every predictor in the
/// registry (`tests/pipelined_equivalence.rs`).
// bp-lint: allow-item(hot-path-alloc, "per-run setup and result assembly, once per benchmark; the per-branch loop is drive_block, which is allocation-free (tests/hotpath_allocations.rs)")
pub fn simulate_mode<P: ConditionalPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    mode: DriveMode,
) -> SimResult {
    let records = trace.records();
    let mut stats = PredictorStats::default();
    drive_block_mode(predictor, records, &mut stats, mode);
    SimResult {
        benchmark: trace.name().to_owned(),
        predictor: predictor.name().to_owned(),
        instructions: records
            .iter()
            .map(bp_trace::BranchRecord::instructions)
            .sum(),
        records: records.len() as u64,
        stats,
    }
}

/// Simulates `predictor` over any [`BranchStream`] with the CBP
/// protocol, consuming the stream record-by-record.
///
/// This is the simulator's native entry point: paired with a streaming
/// producer (`bp_workloads::stream_benchmark`, `bp_trace::TraceReader`)
/// it runs a benchmark of any length in O(`MULTI_BLOCK_RECORDS`)
/// memory — the stream is pulled in blocks so the predictor's block
/// drive (pipelined by default, see [`DriveMode`]) gets whole-record
/// slices to plan over. Produces bit-identical [`SimResult`]s to
/// [`simulate`] on the materialized equivalent of the same stream: the
/// only cross-block difference is prefetch-hint timing, and
/// [`ConditionalPredictor::prefetch`] is architecturally a no-op.
pub fn simulate_stream<P, S>(predictor: &mut P, stream: S) -> SimResult
where
    P: ConditionalPredictor + ?Sized,
    S: BranchStream,
{
    simulate_stream_mode(predictor, stream, DriveMode::default())
}

/// [`simulate_stream`] with an explicit [`DriveMode`].
// bp-lint: allow-item(hot-path-alloc, "per-run setup, block buffer, and result assembly, once per benchmark; the per-branch loop is drive_block, which is allocation-free (tests/hotpath_allocations.rs)")
pub fn simulate_stream_mode<P, S>(predictor: &mut P, mut stream: S, mode: DriveMode) -> SimResult
where
    P: ConditionalPredictor + ?Sized,
    S: BranchStream,
{
    let benchmark = stream.name().to_owned();
    let mut stats = PredictorStats::default();
    let mut instructions = 0u64;
    let mut records = 0u64;
    let mut block = Vec::with_capacity(MULTI_BLOCK_RECORDS);
    loop {
        fill_multi_block(&mut stream, &mut block, &mut instructions, &mut records);
        if block.is_empty() {
            break;
        }
        drive_block_mode(predictor, &block, &mut stats, mode);
        if block.len() < MULTI_BLOCK_RECORDS {
            break;
        }
    }
    SimResult {
        benchmark,
        predictor: predictor.name().to_owned(),
        instructions,
        records,
        stats,
    }
}

/// Records per fused block: large enough to amortize the per-block
/// predictor sweep, small enough (≈ 96 KiB of records) that the block
/// plus one predictor's tables stay cache-resident.
pub(crate) const MULTI_BLOCK_RECORDS: usize = 4096;

/// Refills `block` (cleared first) with up to [`MULTI_BLOCK_RECORDS`]
/// records from `stream`, accumulating the running instruction/record
/// totals. Shared by both fused sweeps (plain and attributed) so the
/// block protocol — fill size, counting, and the
/// empty/short-block termination the callers key off — cannot drift
/// between them.
pub(crate) fn fill_multi_block<S: BranchStream>(
    stream: &mut S,
    block: &mut Vec<bp_trace::BranchRecord>,
    instructions: &mut u64,
    records: &mut u64,
) {
    block.clear();
    while block.len() < MULTI_BLOCK_RECORDS {
        match stream.next_record() {
            Some(record) => {
                *instructions += record.instructions();
                *records += 1;
                block.push(record);
            }
            None => break,
        }
    }
}

/// Drives one predictor through one block of records with the CBP
/// protocol, including the one-record lookahead prefetch hint for
/// predictors that opt in (see [`simulate_stream`]). Shared by the
/// fused sweep and the hot-path allocation tests so the steady-state
/// loop they exercise is the one that actually runs.
///
/// Delegates to [`ConditionalPredictor::run_block`]: the loop lives as
/// a provided trait method so every concrete predictor carries a
/// monomorphized copy with `predict`/`update` statically dispatched —
/// driving a `Box<dyn ConditionalPredictor>` costs one virtual call
/// per block here instead of three per record.
#[inline]
pub fn drive_block<P: ConditionalPredictor + ?Sized>(
    predictor: &mut P,
    block: &[bp_trace::BranchRecord],
    stats: &mut PredictorStats,
) {
    predictor.run_block(block, stats);
}

/// [`drive_block`] with an explicit [`DriveMode`]:
/// [`DriveMode::Pipelined`] dispatches the predictor's (possibly
/// overridden, history-ahead) [`ConditionalPredictor::run_block`],
/// [`DriveMode::Scalar`] the reference per-record loop
/// ([`ConditionalPredictor::run_block_scalar`]), which no predictor may
/// override. Bit-identical by contract; `tests/pipelined_equivalence.rs`
/// pins it for every registry configuration.
#[inline]
pub fn drive_block_mode<P: ConditionalPredictor + ?Sized>(
    predictor: &mut P,
    block: &[bp_trace::BranchRecord],
    stats: &mut PredictorStats,
    mode: DriveMode,
) {
    match mode {
        DriveMode::Pipelined => predictor.run_block(block, stats),
        DriveMode::Scalar => predictor.run_block_scalar(block, stats),
    }
}

/// Simulates *several* predictors over **one** pass of a
/// [`BranchStream`] with the CBP protocol — the shared-decode core of
/// the engine's fused column mode.
///
/// The stream is pulled once, in blocks of 4096 records
/// (`MULTI_BLOCK_RECORDS`); each predictor consumes the whole block before the
/// next predictor starts. Per-record broadcast (predictor-inner loop)
/// would touch every predictor's tables on every record and thrash the
/// cache; the blocked sweep keeps one predictor's working set hot for
/// thousands of records while still generating/decoding the stream
/// exactly once instead of `N` times.
///
/// Because the predictors are independent state machines driven with
/// the identical record sequence, the returned results are
/// **bit-identical** to running [`simulate_stream`] once per predictor
/// over equal streams.
///
/// Returns one [`SimResult`] per predictor, in input order.
pub fn simulate_stream_multi<S>(
    predictors: &mut [Box<dyn ConditionalPredictor + Send>],
    stream: S,
) -> Vec<SimResult>
where
    S: BranchStream,
{
    simulate_stream_multi_mode(predictors, stream, DriveMode::default())
}

/// [`simulate_stream_multi`] with an explicit [`DriveMode`].
// bp-lint: allow-item(hot-path-alloc, "per-run block buffer and result assembly, amortized over whole blocks; the per-branch loop is drive_block, which is allocation-free")
pub fn simulate_stream_multi_mode<S>(
    predictors: &mut [Box<dyn ConditionalPredictor + Send>],
    mut stream: S,
    mode: DriveMode,
) -> Vec<SimResult>
where
    S: BranchStream,
{
    let benchmark = stream.name().to_owned();
    let mut stats = vec![PredictorStats::default(); predictors.len()];
    let mut instructions = 0u64;
    let mut records = 0u64;
    let mut block = Vec::with_capacity(MULTI_BLOCK_RECORDS);
    loop {
        fill_multi_block(&mut stream, &mut block, &mut instructions, &mut records);
        if block.is_empty() {
            break;
        }
        for (predictor, stats) in predictors.iter_mut().zip(stats.iter_mut()) {
            drive_block_mode(predictor, &block, stats, mode);
        }
        if block.len() < MULTI_BLOCK_RECORDS {
            break;
        }
    }
    predictors
        .iter()
        .zip(stats)
        .map(|(predictor, stats)| SimResult {
            benchmark: benchmark.clone(),
            predictor: predictor.name().to_owned(),
            instructions,
            records,
            stats,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_components::{AlwaysTaken, Bimodal};
    use bp_trace::BranchRecord;

    fn biased_trace(n: usize, taken: bool) -> Trace {
        let mut t = Trace::new("biased");
        for _ in 0..n {
            t.push(BranchRecord::conditional(0x40, 0x80, taken).with_leading_instructions(9));
        }
        t
    }

    #[test]
    fn always_taken_on_taken_trace_is_perfect() {
        let r = simulate(&mut AlwaysTaken, &biased_trace(100, true));
        assert_eq!(r.stats.mispredicted, 0);
        assert_eq!(r.mpki(), 0.0);
        assert_eq!(r.stats.predicted, 100);
    }

    #[test]
    fn always_taken_on_not_taken_trace_is_all_wrong() {
        let r = simulate(&mut AlwaysTaken, &biased_trace(100, false));
        assert_eq!(r.stats.mispredicted, 100);
        // 100 mispredictions over 1000 instructions = 100 MPKI.
        assert_eq!(r.mpki(), 100.0);
        assert!(format!("{r}").contains("MPKI"));
    }

    #[test]
    fn bimodal_learns_during_simulation() {
        let mut p = Bimodal::new(64);
        let r = simulate(&mut p, &biased_trace(1000, false));
        assert!(r.stats.mispredicted < 5, "only warmup mispredictions");
    }

    #[test]
    fn dyn_predictors_are_supported() {
        let mut boxed: Box<dyn ConditionalPredictor> = Box::new(AlwaysTaken);
        let r = simulate(boxed.as_mut(), &biased_trace(10, true));
        assert_eq!(r.predictor, "always-taken");
    }

    #[test]
    fn nonconditionals_do_not_count() {
        let mut t = biased_trace(10, true);
        t.push(BranchRecord::call(0x100, 0x1000));
        t.push(BranchRecord::ret(0x1008, 0x104));
        let r = simulate(&mut AlwaysTaken, &t);
        assert_eq!(r.stats.predicted, 10);
    }

    #[test]
    fn mpki_handles_empty() {
        assert_eq!(Mpki::from_counts(5, 0).value(), 0.0);
        assert_eq!(format!("{}", Mpki::from_counts(1, 1000)), "1.000");
    }

    #[test]
    fn streamed_and_materialized_results_are_identical() {
        let trace = biased_trace(500, false);
        let materialized = simulate(&mut Bimodal::new(64), &trace);
        let streamed = simulate_stream(&mut Bimodal::new(64), trace.stream());
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn multi_stream_matches_individual_runs_exactly() {
        let mut t = biased_trace(400, true);
        for i in 0..200u64 {
            t.push(BranchRecord::conditional(0x90, 0x40, i % 3 == 0));
            if i % 5 == 0 {
                t.push(BranchRecord::call(0x100, 0x1000));
            }
        }
        let mut predictors: Vec<Box<dyn ConditionalPredictor + Send>> = vec![
            Box::new(AlwaysTaken),
            Box::new(Bimodal::new(64)),
            Box::new(Bimodal::new(1024)),
        ];
        let fused = simulate_stream_multi(&mut predictors, t.stream());
        assert_eq!(fused.len(), 3);
        let solo = [
            simulate(&mut AlwaysTaken, &t),
            simulate(&mut Bimodal::new(64), &t),
            simulate(&mut Bimodal::new(1024), &t),
        ];
        for (f, s) in fused.iter().zip(solo.iter()) {
            assert_eq!(f, s, "fused cell must equal the per-predictor run");
        }
    }

    #[test]
    fn multi_stream_with_no_predictors_is_empty() {
        let t = biased_trace(10, true);
        let mut none: Vec<Box<dyn ConditionalPredictor + Send>> = Vec::new();
        assert!(simulate_stream_multi(&mut none, t.stream()).is_empty());
    }
}
