//! The parallel evaluation-grid engine.
//!
//! The paper's evaluation is a grid: predictor configurations ×
//! benchmarks. [`Engine::run_grid`] fans the (predictor, benchmark)
//! cells out across worker threads with *dynamic self-scheduling*: all
//! workers pull cells from one shared lock-free queue (an atomic
//! cursor), so an idle worker immediately steals the next unclaimed
//! cell instead of idling behind a static partition — cells vary by
//! an order of magnitude in cost (bimodal vs. TAGE-SC-L+IMLI), which
//! makes static chunking badly unbalanced.
//!
//! Each cell generates its benchmark *lazily*
//! ([`bp_workloads::BenchmarkSpec::stream`]) and simulates it with
//! [`simulate_stream`], so per-worker memory stays O(1) in trace
//! length: the whole grid needs `jobs × one-phase buffers`, never
//! `jobs × whole traces`.
//!
//! When several predictors sweep the same benchmarks, regenerating the
//! stream once **per cell** decodes every benchmark `predictors` times.
//! The engine therefore also has a *fused column* mode
//! ([`GridStrategy`]): one work unit per benchmark, generating the
//! stream once and broadcasting every record to all predictors
//! ([`simulate_stream_multi`]), with bit-identical results.
//!
//! Results are written back by cell index, so the returned grid is in
//! deterministic (predictor-major) order regardless of worker count or
//! scheduling: `run_grid` with 1 job and with N jobs return identical
//! [`GridResult`]s.

use crate::cache::{grid_cell_key, CacheKey, SimCache};
use crate::registry::PredictorSpec;
use crate::run::{simulate_stream_mode, simulate_stream_multi_mode, SimResult};
use crate::suite::SuiteResult;
use bp_components::{ConditionalPredictor, DriveMode};
use bp_workloads::BenchmarkSpec;
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How [`Engine::run_grid`] schedules the (predictor × benchmark) grid.
///
/// Both strategies produce **bit-identical** [`GridResult`]s — every
/// cell still runs one fresh cold predictor over the full benchmark
/// stream (the CBP protocol). They differ only in how often each
/// benchmark stream is generated/decoded:
///
/// * [`PerCell`](GridStrategy::PerCell) — one work unit per cell; each
///   cell regenerates its benchmark stream. Maximum parallelism
///   (`predictors × benchmarks` units), maximum redundant decode work
///   (each benchmark is generated once *per predictor*).
/// * [`FusedColumns`](GridStrategy::FusedColumns) — one work unit per
///   *benchmark column*; the column generates its stream **once** and
///   broadcasts every record to all predictors via
///   [`crate::simulate_stream_multi`]. `N`× less generation/decode work, but
///   only `benchmarks` parallel units.
/// * [`Auto`](GridStrategy::Auto) (default) — fuse columns when the
///   shape profits: at least two predictors share each decode and there
///   are enough columns to keep every worker busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridStrategy {
    /// Pick per shape: fused when `predictors >= 2` and the column
    /// count keeps all workers busy, per-cell otherwise.
    #[default]
    Auto,
    /// Always schedule individual cells (the pre-fusion behaviour).
    PerCell,
    /// Always schedule benchmark columns with one shared decode.
    FusedColumns,
}

/// Progress report delivered after each completed grid cell.
#[derive(Debug, Clone, Copy)]
pub struct CellUpdate<'a> {
    /// Registry name of the cell's predictor configuration.
    pub predictor: &'a str,
    /// Benchmark name of the cell.
    pub benchmark: &'a str,
    /// The cell's MPKI.
    pub mpki: f64,
    /// Cells completed so far (including this one).
    pub completed: usize,
    /// Total cells in the grid.
    pub total: usize,
}

/// The parallel grid runner. Construct with [`Engine::new`] (one worker
/// per available core) or [`Engine::with_jobs`].
#[derive(Debug, Clone)]
pub struct Engine {
    jobs: usize,
    strategy: GridStrategy,
    cache: Option<SimCache>,
    drive_mode: DriveMode,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with one worker per available core.
    pub fn new() -> Self {
        Engine {
            jobs: std::thread::available_parallelism().map_or(4, NonZeroUsize::get),
            strategy: GridStrategy::default(),
            cache: None,
            drive_mode: DriveMode::default(),
        }
    }

    /// An engine with exactly `jobs` workers (`jobs == 1` runs on the
    /// calling thread; 0 is clamped to 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            strategy: GridStrategy::default(),
            cache: None,
            drive_mode: DriveMode::default(),
        }
    }

    /// Sets the [`DriveMode`] every grid cell is simulated with
    /// (default: [`DriveMode::Pipelined`]). The two modes are
    /// bit-identical by contract, so this is an escape hatch /
    /// verification knob, not a results knob.
    #[must_use]
    pub fn with_drive_mode(mut self, drive_mode: DriveMode) -> Self {
        self.drive_mode = drive_mode;
        self
    }

    /// The configured drive mode.
    pub fn drive_mode(&self) -> DriveMode {
        self.drive_mode
    }

    /// Sets the grid scheduling strategy (default:
    /// [`GridStrategy::Auto`]).
    #[must_use]
    pub fn with_strategy(mut self, strategy: GridStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Attaches a result cache: every grid cell is probed **before**
    /// scheduling, only the miss-set is dispatched to workers, and the
    /// grid comes back bit-identical to an uncached run (hit cells are
    /// spliced into place, miss cells computed and written back per the
    /// cache's policy).
    #[must_use]
    pub fn with_cache(mut self, cache: Option<SimCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&SimCache> {
        self.cache.as_ref()
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configured scheduling strategy.
    pub fn strategy(&self) -> GridStrategy {
        self.strategy
    }

    /// Whether this grid shape runs fused under the configured
    /// strategy.
    fn fuse_columns(&self, predictors: usize, benchmarks: usize) -> bool {
        match self.strategy {
            GridStrategy::PerCell => false,
            GridStrategy::FusedColumns => true,
            GridStrategy::Auto => auto_fuses(predictors, benchmarks, self.jobs),
        }
    }

    /// Runs the full (predictor × benchmark) grid at `instructions`
    /// retired instructions per benchmark, one fresh cold predictor per
    /// cell (the CBP protocol).
    pub fn run_grid(
        &self,
        predictors: &[PredictorSpec],
        benchmarks: &[BenchmarkSpec],
        instructions: u64,
    ) -> GridResult {
        self.run_grid_with_progress(predictors, benchmarks, instructions, &|_| {})
    }

    /// [`Engine::run_grid`] with a progress callback, invoked once per
    /// completed cell (serialized — callbacks never run concurrently —
    /// but in *completion* order, which varies with scheduling).
    pub fn run_grid_with_progress(
        &self,
        predictors: &[PredictorSpec],
        benchmarks: &[BenchmarkSpec],
        instructions: u64,
        progress: &(dyn Fn(CellUpdate<'_>) + Sync),
    ) -> GridResult {
        if let Some(cache) = self.cache.as_ref().filter(|c| c.enabled()) {
            return self.run_grid_cached(cache, predictors, benchmarks, instructions, progress);
        }
        if self.fuse_columns(predictors.len(), benchmarks.len()) {
            return self.run_grid_fused(predictors, benchmarks, instructions, progress);
        }
        let total = predictors.len() * benchmarks.len();
        let timed = run_indexed(
            self.jobs,
            total,
            0,
            total,
            |idx| {
                let spec = &predictors[idx / benchmarks.len()];
                let bench = &benchmarks[idx % benchmarks.len()];
                let mut predictor = spec.make();
                let result = simulate_stream_mode(
                    predictor.as_mut(),
                    bench.stream(instructions),
                    self.drive_mode,
                );
                let label = CellLabel {
                    predictor: &spec.name,
                    benchmark: &bench.name,
                    mpki: result.mpki(),
                };
                (result, label)
            },
            progress,
        );
        let (cells, cell_seconds) = timed.into_iter().unzip();
        GridResult {
            predictors: predictors.iter().map(|s| s.name.to_owned()).collect(),
            benchmarks: benchmarks.iter().map(|b| b.name.clone()).collect(),
            cells,
            cell_seconds,
        }
    }

    /// The cache-aware grid path: probe every cell key up front, splice
    /// verified hits into place, dispatch **only the miss-set** to the
    /// workers, and write the computed misses back. Duplicate keys
    /// inside one grid (a sweep whose budget solver landed on the same
    /// config twice) are computed once and replicated.
    ///
    /// The result is bit-identical to an uncached run by construction:
    /// hit cells were produced by the same deterministic pipeline that
    /// would recompute them, and miss cells *are* recomputed (fused
    /// dispatch fuses only co-resident misses of a column, which
    /// [`simulate_stream_multi`] guarantees is equivalent to any other
    /// grouping).
    fn run_grid_cached(
        &self,
        cache: &SimCache,
        predictors: &[PredictorSpec],
        benchmarks: &[BenchmarkSpec],
        instructions: u64,
        progress: &(dyn Fn(CellUpdate<'_>) + Sync),
    ) -> GridResult {
        let n_b = benchmarks.len();
        let total = predictors.len() * n_b;
        let keys: Vec<CacheKey> = (0..total)
            .map(|idx| {
                grid_cell_key(
                    &predictors[idx / n_b],
                    &benchmarks[idx % n_b].name,
                    instructions,
                )
            })
            .collect();
        let mut cells: Vec<Option<SimResult>> = vec![None; total];
        let mut cell_seconds = vec![0.0; total];
        for idx in 0..total {
            cells[idx] = cache.lookup_sim(&keys[idx], &benchmarks[idx % n_b].name);
        }

        // In-run dedup among the misses: two cells with byte-equal
        // (config text, benchmark) compute byte-equal results, so only
        // one representative per key group is dispatched.
        let mut dup_of: Vec<Option<usize>> = vec![None; total];
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut representative: BTreeMap<(&str, usize), usize> = BTreeMap::new();
            for (idx, cell) in cells.iter().enumerate() {
                if cell.is_some() {
                    continue;
                }
                match representative.entry((keys[idx].config.as_str(), idx % n_b)) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(idx);
                        misses.push(idx);
                    }
                    std::collections::btree_map::Entry::Occupied(slot) => {
                        dup_of[idx] = Some(*slot.get());
                    }
                }
            }
        }

        // Hits report progress first, in deterministic cell order.
        let mut completed = 0usize;
        for (idx, cell) in cells.iter().enumerate() {
            if let Some(result) = cell {
                completed += 1;
                progress(CellUpdate {
                    predictor: &predictors[idx / n_b].name,
                    benchmark: &benchmarks[idx % n_b].name,
                    mpki: result.mpki(),
                    completed,
                    total,
                });
            }
        }

        // Dispatch the representative misses only.
        if self.fuse_columns(predictors.len(), benchmarks.len()) {
            // Fuse only the co-resident misses of each column.
            let mut column_preds: Vec<Vec<usize>> = vec![Vec::new(); n_b];
            for &idx in &misses {
                column_preds[idx % n_b].push(idx / n_b);
            }
            let miss_columns: Vec<usize> =
                (0..n_b).filter(|&b| !column_preds[b].is_empty()).collect();
            let columns = run_columns(
                self.jobs,
                miss_columns.len(),
                completed,
                total,
                |ci| {
                    let b = miss_columns[ci];
                    let bench = &benchmarks[b];
                    let mut column: Vec<Box<dyn ConditionalPredictor + Send>> = column_preds[b]
                        .iter()
                        .map(|&p| predictors[p].make())
                        .collect();
                    let results = simulate_stream_multi_mode(
                        &mut column,
                        bench.stream(instructions),
                        self.drive_mode,
                    );
                    let labels = column_preds[b]
                        .iter()
                        .zip(&results)
                        .map(|(&p, result)| CellLabel {
                            predictor: &predictors[p].name,
                            benchmark: &bench.name,
                            mpki: result.mpki(),
                        })
                        .collect();
                    (results, labels)
                },
                progress,
            );
            for (ci, (results, seconds)) in columns.into_iter().enumerate() {
                let b = miss_columns[ci];
                let per_cell = seconds / column_preds[b].len().max(1) as f64;
                for (&p, result) in column_preds[b].iter().zip(results) {
                    cells[p * n_b + b] = Some(result);
                    cell_seconds[p * n_b + b] = per_cell;
                }
            }
        } else {
            let timed = run_indexed(
                self.jobs,
                misses.len(),
                completed,
                total,
                |j| {
                    let idx = misses[j];
                    let spec = &predictors[idx / n_b];
                    let bench = &benchmarks[idx % n_b];
                    let mut predictor = spec.make();
                    let result = simulate_stream_mode(
                        predictor.as_mut(),
                        bench.stream(instructions),
                        self.drive_mode,
                    );
                    let label = CellLabel {
                        predictor: &spec.name,
                        benchmark: &bench.name,
                        mpki: result.mpki(),
                    };
                    (result, label)
                },
                progress,
            );
            for (j, (result, seconds)) in timed.into_iter().enumerate() {
                let idx = misses[j];
                cell_seconds[idx] = seconds;
                cells[idx] = Some(result);
            }
        }

        // Write the computed representatives back (policy permitting).
        for &idx in &misses {
            if let Some(result) = &cells[idx] {
                cache.store_sim(&keys[idx], result);
            }
        }

        // Replicate deduplicated cells and close out progress.
        completed += misses.len();
        for idx in 0..total {
            if let Some(source) = dup_of[idx] {
                cells[idx] = cells[source].clone();
                completed += 1;
                if let Some(result) = &cells[idx] {
                    progress(CellUpdate {
                        predictor: &predictors[idx / n_b].name,
                        benchmark: &benchmarks[idx % n_b].name,
                        mpki: result.mpki(),
                        completed,
                        total,
                    });
                }
            }
        }

        GridResult {
            predictors: predictors.iter().map(|s| s.name.to_owned()).collect(),
            benchmarks: benchmarks.iter().map(|b| b.name.clone()).collect(),
            cells: cells
                .into_iter()
                .map(|c| c.expect("every grid cell filled"))
                .collect(),
            cell_seconds,
        }
    }

    /// The fused column path: one work unit per benchmark, each unit
    /// generating its stream once and driving all predictors over it
    /// via [`simulate_stream_multi`]. Cells (and progress callbacks,
    /// one per cell as in the per-cell path) come back in the same
    /// deterministic predictor-major order; the column's wall time is
    /// apportioned evenly across its cells, so `cell_seconds` keeps the
    /// same shape and totals as a per-cell run would report for the
    /// shared work.
    fn run_grid_fused(
        &self,
        predictors: &[PredictorSpec],
        benchmarks: &[BenchmarkSpec],
        instructions: u64,
        progress: &(dyn Fn(CellUpdate<'_>) + Sync),
    ) -> GridResult {
        let columns = run_columns(
            self.jobs,
            benchmarks.len(),
            0,
            predictors.len() * benchmarks.len(),
            |b| {
                let bench = &benchmarks[b];
                let mut column: Vec<Box<dyn ConditionalPredictor + Send>> =
                    predictors.iter().map(PredictorSpec::make).collect();
                let results = simulate_stream_multi_mode(
                    &mut column,
                    bench.stream(instructions),
                    self.drive_mode,
                );
                let labels = predictors
                    .iter()
                    .zip(&results)
                    .map(|(spec, result)| CellLabel {
                        predictor: &spec.name,
                        benchmark: &bench.name,
                        mpki: result.mpki(),
                    })
                    .collect();
                (results, labels)
            },
            progress,
        );
        let (cells, cell_seconds) = transpose_columns(columns, predictors.len(), benchmarks.len());
        GridResult {
            predictors: predictors.iter().map(|s| s.name.to_owned()).collect(),
            benchmarks: benchmarks.iter().map(|b| b.name.clone()).collect(),
            cells,
            cell_seconds,
        }
    }
}

/// The [`GridStrategy::Auto`] fusion predicate, shared by the engine
/// and the attributed report path so the two can never drift: fusing
/// trades parallel grain (cells → columns) for an N-fold cut in stream
/// generation, profitable whenever at least two predictors share each
/// decode and the columns alone can keep every worker busy.
pub(crate) fn auto_fuses(predictors: usize, benchmarks: usize, jobs: usize) -> bool {
    predictors >= 2 && benchmarks >= jobs.max(1)
}

/// Runs `total_columns` benchmark-column work units across `jobs`
/// workers with the same dynamic self-scheduling as [`run_indexed`],
/// returning `(column results, column wall seconds)` in column-index
/// order. The column closure returns one result plus one display label
/// per cell it ran; progress fires once per *cell* (not per column),
/// with a monotonic `completed` counter starting at `progress_base`
/// against `progress_total` — the cache path probes hits before
/// scheduling, so the dispatched miss-set may be a suffix of a larger
/// grid. Shared by the plain fused grid and the fused attributed report
/// path.
pub(crate) fn run_columns<'a, T, F>(
    jobs: usize,
    total_columns: usize,
    progress_base: usize,
    progress_total: usize,
    column: F,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> Vec<(Vec<T>, f64)>
where
    T: Send,
    F: Fn(usize) -> (Vec<T>, Vec<CellLabel<'a>>) + Sync,
{
    let next = AtomicUsize::new(0);
    type Collected<T> = (Vec<(usize, Vec<T>, f64)>, usize);
    // Collected columns plus the monotonic completed-cell counter
    // behind the progress callbacks, under one lock.
    let collected: Mutex<Collected<T>> =
        Mutex::new((Vec::with_capacity(total_columns), progress_base));
    let worker = || loop {
        let b = next.fetch_add(1, Ordering::Relaxed);
        if b >= total_columns {
            break;
        }
        let started = std::time::Instant::now();
        let (results, labels) = column(b);
        let seconds = started.elapsed().as_secs_f64();
        debug_assert_eq!(results.len(), labels.len());
        let mut guard = collected.lock().expect("results lock");
        let (columns, completed) = &mut *guard;
        for label in labels {
            *completed += 1;
            progress(CellUpdate {
                predictor: label.predictor,
                benchmark: label.benchmark,
                mpki: label.mpki,
                completed: *completed,
                total: progress_total,
            });
        }
        columns.push((b, results, seconds));
    };
    if jobs <= 1 || total_columns <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(total_columns) {
                scope.spawn(worker);
            }
        });
    }
    let (mut columns, completed) = collected.into_inner().expect("results lock");
    debug_assert!(completed <= progress_total);
    columns.sort_unstable_by_key(|(b, _, _)| *b);
    columns
        .into_iter()
        .map(|(_, results, seconds)| (results, seconds))
        .collect()
}

/// Transposes benchmark-major column results into the predictor-major
/// cell order grids use, apportioning each column's wall time evenly
/// across its cells.
pub(crate) fn transpose_columns<T>(
    columns: Vec<(Vec<T>, f64)>,
    n_pred: usize,
    n_bench: usize,
) -> (Vec<T>, Vec<f64>) {
    let total_cells = n_pred * n_bench;
    let mut cells: Vec<Option<T>> = (0..total_cells).map(|_| None).collect();
    let mut cell_seconds = vec![0.0; total_cells];
    for (b, (results, seconds)) in columns.into_iter().enumerate() {
        let per_cell = seconds / n_pred.max(1) as f64;
        for (p, result) in results.into_iter().enumerate() {
            cells[p * n_bench + b] = Some(result);
            cell_seconds[p * n_bench + b] = per_cell;
        }
    }
    (
        cells
            .into_iter()
            .map(|c| c.expect("every grid cell filled"))
            .collect(),
        cell_seconds,
    )
}

/// What a cell closure reports about the cell it just ran; the
/// scheduler combines it with its own completion bookkeeping to build
/// the [`CellUpdate`] handed to progress callbacks.
pub(crate) struct CellLabel<'a> {
    pub(crate) predictor: &'a str,
    pub(crate) benchmark: &'a str,
    pub(crate) mpki: f64,
}

/// Runs `total` independent cells across `jobs` workers with dynamic
/// self-scheduling, returning `(result, wall seconds)` pairs in
/// cell-index order. Generic over the cell payload `T` so the same
/// scheduler drives plain [`SimResult`] grids, attributed report runs,
/// and [`crate::run_suite`] rows. The worker closure returns the cell
/// result plus its display label; completion counting happens here,
/// under the collection lock, so progress callbacks observe a strictly
/// increasing `completed` starting at `progress_base` against
/// `progress_total` (the cache path reports probe hits before
/// dispatching the remaining miss-set here). Per-cell wall time is
/// measured around the closure (generation + simulation), outside the
/// lock.
pub(crate) fn run_indexed<'a, T, F>(
    jobs: usize,
    total: usize,
    progress_base: usize,
    progress_total: usize,
    cell: F,
    progress: &(dyn Fn(CellUpdate<'_>) + Sync),
) -> Vec<(T, f64)>
where
    T: Send,
    F: Fn(usize) -> (T, CellLabel<'a>) + Sync,
{
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T, f64)>> = Mutex::new(Vec::with_capacity(total));
    let worker = || loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        if idx >= total {
            break;
        }
        let started = std::time::Instant::now();
        let (result, label) = cell(idx);
        let seconds = started.elapsed().as_secs_f64();
        // One lock serializes the progress callback, makes `completed`
        // monotonic, and collects the result.
        let mut results = collected.lock().expect("results lock");
        progress(CellUpdate {
            predictor: label.predictor,
            benchmark: label.benchmark,
            mpki: label.mpki,
            completed: progress_base + results.len() + 1,
            total: progress_total,
        });
        results.push((idx, result, seconds));
    };
    if jobs <= 1 || total <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(total) {
                scope.spawn(worker);
            }
        });
    }
    let mut results = collected.into_inner().expect("results lock");
    debug_assert_eq!(results.len(), total);
    // Completion order depends on scheduling; cell-index order does not.
    results.sort_unstable_by_key(|(idx, _, _)| *idx);
    results
        .into_iter()
        .map(|(_, result, seconds)| (result, seconds))
        .collect()
}

/// A completed evaluation grid: per-cell [`SimResult`]s in
/// deterministic predictor-major order, plus per-cell wall time.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Registry names of the predictor rows, in input order.
    pub predictors: Vec<String>,
    /// Benchmark names of the columns, in input order.
    pub benchmarks: Vec<String>,
    /// Row-major cells: `cells[p * benchmarks.len() + b]`.
    cells: Vec<SimResult>,
    /// Wall seconds spent on each cell (generation + simulation),
    /// row-major like `cells`.
    cell_seconds: Vec<f64>,
}

/// Equality deliberately ignores `cell_seconds`: simulation output is
/// deterministic across worker counts and runs, wall-clock is not, and
/// the engine's determinism guarantees are stated (and tested) as grid
/// equality.
impl PartialEq for GridResult {
    fn eq(&self, other: &Self) -> bool {
        self.predictors == other.predictors
            && self.benchmarks == other.benchmarks
            && self.cells == other.cells
    }
}

impl GridResult {
    /// The cell for predictor row `p` and benchmark column `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell(&self, p: usize, b: usize) -> &SimResult {
        assert!(p < self.predictors.len() && b < self.benchmarks.len());
        &self.cells[p * self.benchmarks.len() + b]
    }

    /// One predictor's row of per-benchmark results, in suite order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn row(&self, p: usize) -> &[SimResult] {
        let w = self.benchmarks.len();
        &self.cells[p * w..(p + 1) * w]
    }

    /// All cells, row-major.
    pub fn cells(&self) -> &[SimResult] {
        &self.cells
    }

    /// Wall seconds spent on each cell, row-major like
    /// [`GridResult::cells`].
    pub fn cell_seconds(&self) -> &[f64] {
        &self.cell_seconds
    }

    /// End-to-end throughput of one cell in branch records per second
    /// (0.0 if the cell ran too fast to time). The denominator is the
    /// cell's whole wall time — lazy benchmark generation *plus*
    /// simulation — since that is what a grid run actually costs; it is
    /// not comparable to pure simulate-path timings.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn records_per_sec(&self, p: usize, b: usize) -> f64 {
        assert!(p < self.predictors.len() && b < self.benchmarks.len());
        let i = p * self.benchmarks.len() + b;
        let seconds = self.cell_seconds[i];
        if seconds <= 0.0 {
            return 0.0;
        }
        self.cells[i].records as f64 / seconds
    }

    /// One predictor row's aggregate throughput: the row's total
    /// records over its total per-cell wall seconds (0.0 when untimed).
    /// Under the fused strategy the shared column time is apportioned
    /// evenly, so rows reflect the amortized cost.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn row_records_per_sec(&self, p: usize) -> f64 {
        assert!(p < self.predictors.len());
        let w = self.benchmarks.len();
        let seconds: f64 = self.cell_seconds[p * w..(p + 1) * w].iter().sum();
        if seconds <= 0.0 {
            return 0.0;
        }
        self.row(p).iter().map(|c| c.records as f64).sum::<f64>() / seconds
    }

    /// Aggregate end-to-end throughput: total records over total
    /// per-cell wall seconds, generation included (CPU-time-ish: cells
    /// overlap across workers, so this is per-worker throughput, not
    /// wall-clock grid throughput).
    pub fn mean_records_per_sec(&self) -> f64 {
        let seconds: f64 = self.cell_seconds.iter().sum();
        if seconds <= 0.0 {
            return 0.0;
        }
        self.cells.iter().map(|c| c.records as f64).sum::<f64>() / seconds
    }

    /// One predictor's row as a [`SuiteResult`] (the sequential API's
    /// result type), by registry name.
    pub fn suite_result(&self, predictor: &str) -> Option<SuiteResult> {
        let p = self.predictors.iter().position(|n| n == predictor)?;
        Some(SuiteResult {
            predictor: self
                .row(p)
                .first()
                .map_or_else(|| predictor.to_owned(), |r| r.predictor.clone()),
            rows: self.row(p).to_vec(),
        })
    }

    /// Mean MPKI of each predictor row, in row order, as
    /// `(registry name, mean MPKI)`.
    pub fn mean_mpki_rows(&self) -> Vec<(&str, f64)> {
        self.predictors
            .iter()
            .enumerate()
            .map(|(p, name)| {
                let row = self.row(p);
                let mean = if row.is_empty() {
                    0.0
                } else {
                    row.iter().map(SimResult::mpki).sum::<f64>() / row.len() as f64
                };
                (name.as_str(), mean)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{lookup, registry, PredictorFamily};
    use bp_workloads::cbp4_suite;
    use std::sync::atomic::AtomicUsize;

    fn small_grid() -> (Vec<PredictorSpec>, Vec<BenchmarkSpec>) {
        let predictors: Vec<PredictorSpec> = ["bimodal", "gshare"]
            .iter()
            .map(|n| lookup(n).expect("registered"))
            .collect();
        let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(3).collect();
        (predictors, benchmarks)
    }

    #[test]
    fn grid_shape_and_ordering() {
        let (predictors, benchmarks) = small_grid();
        let grid = Engine::with_jobs(4).run_grid(&predictors, &benchmarks, 20_000);
        assert_eq!(grid.predictors, vec!["bimodal", "gshare"]);
        assert_eq!(grid.benchmarks.len(), 3);
        assert_eq!(grid.cells().len(), 6);
        for (p, name) in grid.predictors.iter().enumerate() {
            for (b, bench) in grid.benchmarks.iter().enumerate() {
                let cell = grid.cell(p, b);
                assert_eq!(&cell.benchmark, bench);
                let expected = lookup(name).unwrap().make().name().to_owned();
                assert_eq!(cell.predictor, expected);
            }
        }
    }

    #[test]
    fn parallel_grid_matches_sequential_grid() {
        let (predictors, benchmarks) = small_grid();
        let sequential = Engine::with_jobs(1).run_grid(&predictors, &benchmarks, 20_000);
        let parallel = Engine::with_jobs(8).run_grid(&predictors, &benchmarks, 20_000);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn progress_fires_once_per_cell() {
        let (predictors, benchmarks) = small_grid();
        let fired = AtomicUsize::new(0);
        let grid = Engine::with_jobs(3).run_grid_with_progress(
            &predictors,
            &benchmarks,
            10_000,
            &|update| {
                fired.fetch_add(1, Ordering::Relaxed);
                assert!(update.completed >= 1 && update.completed <= update.total);
                assert_eq!(update.total, 6);
            },
        );
        assert_eq!(fired.load(Ordering::Relaxed), 6);
        assert_eq!(grid.cells().len(), 6);
    }

    #[test]
    fn suite_result_bridge_matches_rows() {
        let (predictors, benchmarks) = small_grid();
        let grid = Engine::with_jobs(2).run_grid(&predictors, &benchmarks, 10_000);
        let suite = grid.suite_result("gshare").expect("row exists");
        assert_eq!(suite.rows, grid.row(1));
        assert!(grid.suite_result("nope").is_none());
        let means = grid.mean_mpki_rows();
        assert_eq!(means.len(), 2);
        assert!((means[1].1 - suite.mean_mpki()).abs() < 1e-12);
    }

    #[test]
    fn per_cell_timings_and_throughput_are_populated() {
        let (predictors, benchmarks) = small_grid();
        let grid = Engine::with_jobs(2).run_grid(&predictors, &benchmarks, 20_000);
        assert_eq!(grid.cell_seconds().len(), grid.cells().len());
        for (p, _) in grid.predictors.iter().enumerate() {
            for (b, _) in grid.benchmarks.iter().enumerate() {
                assert!(grid.cell(p, b).records > 0);
                assert!(grid.records_per_sec(p, b) >= 0.0);
            }
        }
        assert!(grid.mean_records_per_sec() > 0.0);
        // Equality ignores wall time: a re-run with different timings
        // still compares equal cell-for-cell.
        let rerun = Engine::with_jobs(1).run_grid(&predictors, &benchmarks, 20_000);
        assert_eq!(grid, rerun);
    }

    #[test]
    fn fused_grid_is_bit_identical_to_per_cell_grid() {
        let predictors: Vec<PredictorSpec> = ["bimodal", "gshare", "tage-gsc"]
            .iter()
            .map(|n| lookup(n).expect("registered"))
            .collect();
        let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(3).collect();
        let per_cell = Engine::with_jobs(1)
            .with_strategy(GridStrategy::PerCell)
            .run_grid(&predictors, &benchmarks, 20_000);
        for jobs in [1, 8] {
            let fused = Engine::with_jobs(jobs)
                .with_strategy(GridStrategy::FusedColumns)
                .run_grid(&predictors, &benchmarks, 20_000);
            assert_eq!(per_cell, fused, "fused grid diverged at jobs={jobs}");
            assert_eq!(fused.cell_seconds().len(), fused.cells().len());
        }
    }

    #[test]
    fn fused_grid_fires_progress_once_per_cell() {
        let (predictors, benchmarks) = small_grid();
        let fired = AtomicUsize::new(0);
        let grid = Engine::with_jobs(2)
            .with_strategy(GridStrategy::FusedColumns)
            .run_grid_with_progress(&predictors, &benchmarks, 10_000, &|update| {
                fired.fetch_add(1, Ordering::Relaxed);
                assert!(update.completed >= 1 && update.completed <= update.total);
                assert_eq!(update.total, 6);
            });
        assert_eq!(fired.load(Ordering::Relaxed), 6);
        assert_eq!(grid.cells().len(), 6);
    }

    #[test]
    fn auto_strategy_fuses_profitable_shapes_only() {
        let e = Engine::with_jobs(2);
        assert_eq!(e.strategy(), GridStrategy::Auto);
        assert!(e.fuse_columns(12, 8), "many predictors, enough columns");
        assert!(!e.fuse_columns(1, 8), "nothing shares the decode");
        assert!(
            !Engine::with_jobs(16).fuse_columns(12, 8),
            "too few columns"
        );
        assert!(Engine::with_jobs(16)
            .with_strategy(GridStrategy::FusedColumns)
            .fuse_columns(1, 1));
    }

    #[test]
    fn cached_grid_is_bit_identical_off_cold_and_warm() {
        let (predictors, benchmarks) = small_grid();
        let dir = std::env::temp_dir().join(format!("bp-engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let baseline = Engine::with_jobs(2).run_grid(&predictors, &benchmarks, 20_000);
        for strategy in [GridStrategy::PerCell, GridStrategy::FusedColumns] {
            let _ = std::fs::remove_dir_all(&dir);
            let cold_cache = SimCache::new(&dir, crate::CachePolicy::ReadWrite);
            let cold = Engine::with_jobs(2)
                .with_strategy(strategy)
                .with_cache(Some(cold_cache.clone()))
                .run_grid(&predictors, &benchmarks, 20_000);
            assert_eq!(baseline, cold, "cold cached grid diverged ({strategy:?})");
            assert_eq!(cold_cache.hits(), 0);
            assert_eq!(cold_cache.stores(), 6);
            let warm_cache = SimCache::new(&dir, crate::CachePolicy::ReadWrite);
            let fired = AtomicUsize::new(0);
            let warm = Engine::with_jobs(4)
                .with_strategy(strategy)
                .with_cache(Some(warm_cache.clone()))
                .run_grid_with_progress(&predictors, &benchmarks, 20_000, &|update| {
                    fired.fetch_add(1, Ordering::Relaxed);
                    assert_eq!(update.total, 6);
                });
            assert_eq!(baseline, warm, "warm cached grid diverged ({strategy:?})");
            assert_eq!(warm_cache.hits(), 6, "warm run must not simulate");
            assert_eq!(warm_cache.stores(), 0);
            assert_eq!(fired.load(Ordering::Relaxed), 6);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_grid_computes_duplicate_configs_once() {
        let spec = lookup("gshare").expect("registered");
        let twin = PredictorSpec::new("gshare-twin", "same config, different name", {
            spec.config.clone()
        });
        let predictors = vec![spec, twin];
        let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(2).collect();
        let dir = std::env::temp_dir().join(format!("bp-engine-dedup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SimCache::new(&dir, crate::CachePolicy::ReadWrite);
        let grid = Engine::with_jobs(1)
            .with_strategy(GridStrategy::PerCell)
            .with_cache(Some(cache.clone()))
            .run_grid(&predictors, &benchmarks, 10_000);
        // 4 cells, but only 2 distinct (config, benchmark) keys: the
        // twins replicate without simulating or re-storing.
        assert_eq!(cache.stores(), 2);
        assert_eq!(grid.row(0), grid.row(1));
        let baseline = Engine::with_jobs(1)
            .with_strategy(GridStrategy::PerCell)
            .run_grid(&predictors, &benchmarks, 10_000);
        assert_eq!(baseline, grid);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn family_filtered_grids_run() {
        let predictors = crate::registry::family_members(PredictorFamily::Baseline);
        let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(2).collect();
        let grid = Engine::new().run_grid(&predictors, &benchmarks, 10_000);
        assert_eq!(grid.cells().len(), 4);
        assert!(Engine::new().jobs() >= 1);
        assert_eq!(Engine::with_jobs(0).jobs(), 1);
        // Sanity: registry() is the full grid's row source.
        assert!(registry().len() >= 20);
    }
}
