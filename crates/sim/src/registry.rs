//! The named-predictor registry: every configuration of the paper's
//! evaluation, constructible by string name.

use bp_components::{Bimodal, ConditionalPredictor, GShare};
use bp_gehl::Gehl;
use bp_perceptron::HashedPerceptron;
use bp_tage::TageSc;
use bp_wormhole::WormholeAugmented;
use std::fmt;

/// A factory producing fresh predictor instances.
pub type PredictorFactory = fn() -> Box<dyn ConditionalPredictor + Send>;

/// The host family a registered configuration belongs to — the grouping
/// the paper's tables use (Table 1 is the TAGE family, Table 2 the
/// GEHL/FTL family, §1's generality claim the perceptron family, plus
/// the calibration baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredictorFamily {
    /// TAGE hosts (TAGE-GSC, TAGE-SC-L and their IMLI/WH/loop variants).
    Tage,
    /// GEHL and FTL hosts.
    Gehl,
    /// Hashed-perceptron hosts.
    Perceptron,
    /// Calibration baselines (gshare, bimodal).
    Baseline,
}

impl PredictorFamily {
    /// All families, in table order.
    pub const ALL: [PredictorFamily; 4] = [
        PredictorFamily::Tage,
        PredictorFamily::Gehl,
        PredictorFamily::Perceptron,
        PredictorFamily::Baseline,
    ];
}

impl fmt::Display for PredictorFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredictorFamily::Tage => "tage",
            PredictorFamily::Gehl => "gehl",
            PredictorFamily::Perceptron => "perceptron",
            PredictorFamily::Baseline => "baseline",
        })
    }
}

/// One registered predictor configuration: its registry name, host
/// family, the paper section/table it reproduces, and a factory for
/// fresh instances.
#[derive(Clone)]
pub struct PredictorSpec {
    /// Registry name, e.g. `"tage-gsc+imli"`.
    pub name: &'static str,
    /// Host family (for grid filtering and table grouping).
    pub family: PredictorFamily,
    /// Where in the paper this configuration appears.
    pub paper_ref: &'static str,
    /// Builds a fresh, cold instance.
    pub factory: PredictorFactory,
}

impl PredictorSpec {
    const fn new(
        name: &'static str,
        family: PredictorFamily,
        paper_ref: &'static str,
        factory: PredictorFactory,
    ) -> Self {
        PredictorSpec {
            name,
            family,
            paper_ref,
            factory,
        }
    }

    /// Constructs a fresh, cold predictor instance.
    pub fn make(&self) -> Box<dyn ConditionalPredictor + Send> {
        (self.factory)()
    }

    /// Storage budget of this configuration in bits (constructs a
    /// throwaway instance; budgets are static per configuration).
    pub fn storage_bits(&self) -> u64 {
        self.make().storage_bits()
    }

    /// Storage budget in Kbit, the unit the paper quotes.
    pub fn storage_kbit(&self) -> f64 {
        self.storage_bits() as f64 / 1024.0
    }
}

impl fmt::Debug for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredictorSpec")
            .field("name", &self.name)
            .field("family", &self.family)
            .field("paper_ref", &self.paper_ref)
            .finish_non_exhaustive()
    }
}

/// The registry of named predictor configurations.
///
/// | name | paper reference |
/// |---|---|
/// | `tage-gsc` | §3.2.1 base (Table 1 "Base") |
/// | `tage-gsc+sic` | §4.2.2 IMLI-SIC alone |
/// | `tage-gsc+oh` | IMLI-OH alone (Figure 13 analysis) |
/// | `tage-gsc+imli` | Table 1 "+I" |
/// | `tage-gsc+wh` | §3.3 TAGE-GSC+WH |
/// | `tage-gsc+sic+wh` | §4.3 WH on top of IMLI-SIC |
/// | `tage-sc-l` | Table 1 "+L" |
/// | `tage-sc-l+imli` | Table 1 "+I+L" / §5 record |
/// | `gehl`, `gehl+sic`, `gehl+oh`, `gehl+imli`, `gehl+wh`, `gehl+sic+wh` | Table 2 / Figures 10-13 |
/// | `ftl`, `ftl+imli` | Table 2 "+L" / "+I+L" |
/// | `perceptron`, `perceptron+imli`, `perceptron+wh` | generality check: the §1 claim that IMLI plugs into any neural-inspired predictor |
/// | `gshare`, `bimodal` | calibration baselines |
pub fn registry() -> Vec<PredictorSpec> {
    use PredictorFamily::{Baseline, Gehl as GehlF, Perceptron, Tage};
    vec![
        PredictorSpec::new("tage-gsc", Tage, "§3.2.1 base (Table 1 \"Base\")", || {
            Box::new(TageSc::tage_gsc())
        }),
        PredictorSpec::new("tage-gsc+sic", Tage, "§4.2.2 IMLI-SIC alone", || {
            Box::new(TageSc::tage_gsc_sic())
        }),
        PredictorSpec::new("tage-gsc+oh", Tage, "IMLI-OH alone (Figure 13)", || {
            Box::new(TageSc::new(bp_tage::TageScConfig::gsc_oh_only()))
        }),
        PredictorSpec::new("tage-gsc+imli", Tage, "Table 1 \"+I\"", || {
            Box::new(TageSc::tage_gsc_imli())
        }),
        PredictorSpec::new("tage-gsc+wh", Tage, "§3.3 TAGE-GSC+WH", || {
            Box::new(WormholeAugmented::new(TageSc::tage_gsc()))
        }),
        PredictorSpec::new(
            "tage-gsc+sic+wh",
            Tage,
            "§4.3 WH on top of IMLI-SIC",
            || Box::new(WormholeAugmented::new(TageSc::tage_gsc_sic())),
        ),
        PredictorSpec::new(
            "tage-gsc+loop",
            Tage,
            "§4.2.2 loop-predictor ablation",
            || Box::new(TageSc::new(bp_tage::TageScConfig::gsc_loop())),
        ),
        PredictorSpec::new(
            "tage-gsc+sic+loop",
            Tage,
            "§4.2.2 SIC + loop-predictor ablation",
            || Box::new(TageSc::new(bp_tage::TageScConfig::gsc_sic_loop())),
        ),
        PredictorSpec::new("tage-sc-l", Tage, "Table 1 \"+L\"", || {
            Box::new(TageSc::tage_sc_l())
        }),
        PredictorSpec::new(
            "tage-sc-l+imli",
            Tage,
            "Table 1 \"+I+L\" / §5 record",
            || Box::new(TageSc::tage_sc_l_imli()),
        ),
        PredictorSpec::new("gehl", GehlF, "Table 2 base", || Box::new(Gehl::gehl())),
        PredictorSpec::new("gehl+sic", GehlF, "Figures 10-11", || {
            Box::new(Gehl::gehl_sic())
        }),
        PredictorSpec::new("gehl+oh", GehlF, "Figures 12-13", || {
            Box::new(Gehl::gehl_oh())
        }),
        PredictorSpec::new("gehl+imli", GehlF, "Table 2 \"+I\"", || {
            Box::new(Gehl::gehl_imli())
        }),
        PredictorSpec::new("gehl+wh", GehlF, "Figures 12-13 (WH)", || {
            Box::new(WormholeAugmented::new(Gehl::gehl()))
        }),
        PredictorSpec::new("gehl+sic+wh", GehlF, "§4.3 WH on top of IMLI-SIC", || {
            Box::new(WormholeAugmented::new(Gehl::gehl_sic()))
        }),
        PredictorSpec::new("ftl", GehlF, "Table 2 \"+L\"", || Box::new(Gehl::ftl())),
        PredictorSpec::new("ftl+imli", GehlF, "Table 2 \"+I+L\"", || {
            Box::new(Gehl::ftl_imli())
        }),
        PredictorSpec::new("perceptron", Perceptron, "§1 generality base", || {
            Box::new(HashedPerceptron::base())
        }),
        PredictorSpec::new(
            "perceptron+imli",
            Perceptron,
            "§1 generality \"+I\"",
            || Box::new(HashedPerceptron::with_imli()),
        ),
        PredictorSpec::new("perceptron+wh", Perceptron, "§1 generality (WH)", || {
            Box::new(WormholeAugmented::new(HashedPerceptron::base()))
        }),
        PredictorSpec::new("gshare", Baseline, "calibration baseline", || {
            Box::new(GShare::new(14, 12))
        }),
        PredictorSpec::new("bimodal", Baseline, "calibration baseline", || {
            Box::new(Bimodal::new(16384))
        }),
    ]
}

/// The default configuration set of `bp report paper` and the
/// simulator benchmark's grid leg: the Table 1/2 ablation ladders plus
/// the WH comparison points, in table order.
pub const PAPER_REPORT_NAMES: [&str; 12] = [
    "tage-gsc",
    "tage-gsc+sic",
    "tage-gsc+imli",
    "tage-gsc+wh",
    "tage-sc-l",
    "tage-sc-l+imli",
    "gehl",
    "gehl+imli",
    "gehl+wh",
    "ftl",
    "ftl+imli",
    "perceptron+imli",
];

/// The 12 predictor configurations of the paper report
/// ([`PAPER_REPORT_NAMES`]) as resolved registry specs.
pub fn paper_report_predictors() -> Vec<PredictorSpec> {
    PAPER_REPORT_NAMES
        .iter()
        .map(|n| lookup(n).expect("paper report predictors are registered"))
        .collect()
}

/// Looks a configuration up by registry name.
///
/// ```
/// use bp_sim::{lookup, PredictorFamily};
/// let spec = lookup("tage-gsc+imli").expect("registered");
/// assert_eq!(spec.family, PredictorFamily::Tage);
/// assert!(lookup("nope").is_none());
/// ```
pub fn lookup(name: &str) -> Option<PredictorSpec> {
    registry().into_iter().find(|spec| spec.name == name)
}

/// All registered configurations of one family, in registry order.
pub fn family_members(family: PredictorFamily) -> Vec<PredictorSpec> {
    registry()
        .into_iter()
        .filter(|spec| spec.family == family)
        .collect()
}

/// Constructs a fresh predictor by registry name, or `None` for unknown
/// names.
///
/// ```
/// use bp_sim::make_predictor;
/// let p = make_predictor("tage-gsc+imli").expect("registered");
/// assert_eq!(p.name(), "TAGE-GSC+IMLI");
/// assert!(make_predictor("nope").is_none());
/// ```
pub fn make_predictor(name: &str) -> Option<Box<dyn ConditionalPredictor + Send>> {
    lookup(name).map(|spec| spec.make())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_predictors_construct_and_predict() {
        for spec in registry() {
            let mut p = spec.make();
            let _ = p.predict(0x4000);
            p.update(&bp_trace::BranchRecord::conditional(0x4000, 0x4100, true));
            assert!(p.storage_bits() > 0, "{} has an empty budget", spec.name);
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = registry().into_iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn storage_budgets_follow_the_paper_ordering() {
        let bits = |name: &str| lookup(name).unwrap().storage_bits();
        // Table 1 ordering: Base < +I < +L < +I+L.
        assert!(bits("tage-gsc") < bits("tage-gsc+imli"));
        assert!(bits("tage-gsc+imli") < bits("tage-sc-l"));
        assert!(bits("tage-sc-l") < bits("tage-sc-l+imli"));
        // Table 2 ordering.
        assert!(bits("gehl") < bits("gehl+imli"));
        assert!(bits("gehl+imli") < bits("ftl"));
        assert!(bits("ftl") < bits("ftl+imli"));
        // GEHL base is exactly 204 Kbit.
        assert_eq!(bits("gehl"), 204 * 1024);
        assert!((lookup("gehl").unwrap().storage_kbit() - 204.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(make_predictor("gehl+wh").is_some());
        assert!(make_predictor("unknown").is_none());
        assert!(lookup("gshare").is_some());
    }

    #[test]
    fn families_partition_the_registry() {
        let total: usize = PredictorFamily::ALL
            .iter()
            .map(|&f| family_members(f).len())
            .sum();
        assert_eq!(total, registry().len());
        assert!(family_members(PredictorFamily::Tage).len() >= 10);
        assert_eq!(family_members(PredictorFamily::Baseline).len(), 2);
        assert!(family_members(PredictorFamily::Gehl)
            .iter()
            .all(|s| s.name.starts_with("gehl") || s.name.starts_with("ftl")));
    }

    #[test]
    fn paper_report_set_resolves_in_table_order() {
        let specs = paper_report_predictors();
        assert_eq!(specs.len(), PAPER_REPORT_NAMES.len());
        for (spec, name) in specs.iter().zip(PAPER_REPORT_NAMES) {
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn specs_carry_paper_references() {
        for spec in registry() {
            assert!(
                !spec.paper_ref.is_empty(),
                "{} lacks a paper ref",
                spec.name
            );
        }
        let debug = format!("{:?}", lookup("gehl").unwrap());
        assert!(debug.contains("gehl") && debug.contains("Gehl"));
    }
}
