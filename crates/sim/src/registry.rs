//! The named-predictor registry: every configuration of the paper's
//! evaluation, constructible by string name — and, since the
//! config-layer refactor, *from data*: each entry is a
//! [`RegistryConfig`] value (validate / build / serialize / exact
//! storage accounting) instead of an opaque factory closure.

use bp_components::{
    BimodalConfig, ConditionalPredictor, ConfigError, ConfigValue, GShareConfig, PredictorConfig,
};
use bp_gehl::GehlConfig;
use bp_perceptron::PerceptronConfig;
use bp_tage::TageScConfig;
use bp_wormhole::{WormholeAugmented, WormholeConfig};
use std::fmt;

/// The host family a registered configuration belongs to — the grouping
/// the paper's tables use (Table 1 is the TAGE family, Table 2 the
/// GEHL/FTL family, §1's generality claim the perceptron family, plus
/// the calibration baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredictorFamily {
    /// TAGE hosts (TAGE-GSC, TAGE-SC-L and their IMLI/WH/loop variants).
    Tage,
    /// GEHL and FTL hosts.
    Gehl,
    /// Hashed-perceptron hosts.
    Perceptron,
    /// Calibration baselines (gshare, bimodal).
    Baseline,
}

impl PredictorFamily {
    /// All families, in table order.
    pub const ALL: [PredictorFamily; 4] = [
        PredictorFamily::Tage,
        PredictorFamily::Gehl,
        PredictorFamily::Perceptron,
        PredictorFamily::Baseline,
    ];
}

impl fmt::Display for PredictorFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredictorFamily::Tage => "tage",
            PredictorFamily::Gehl => "gehl",
            PredictorFamily::Perceptron => "perceptron",
            PredictorFamily::Baseline => "baseline",
        })
    }
}

/// A host-family predictor configuration: the typed config of one of
/// the five buildable predictor kinds. This is the data the registry
/// stores per entry and the budget solver scales.
#[derive(Debug, Clone)]
pub enum FamilyConfig {
    /// A composed TAGE + statistical corrector (+ loop) predictor.
    TageSc(TageScConfig),
    /// A GEHL/FTL predictor.
    Gehl(GehlConfig),
    /// A hashed perceptron.
    Perceptron(PerceptronConfig),
    /// The bimodal baseline.
    Bimodal(BimodalConfig),
    /// The gshare baseline.
    GShare(GShareConfig),
}

impl FamilyConfig {
    /// The serialization tag (`"kind"` field) of this family.
    pub fn kind(&self) -> &'static str {
        match self {
            FamilyConfig::TageSc(_) => "tage-sc",
            FamilyConfig::Gehl(_) => "gehl",
            FamilyConfig::Perceptron(_) => "perceptron",
            FamilyConfig::Bimodal(_) => "bimodal",
            FamilyConfig::GShare(_) => "gshare",
        }
    }

    /// The registry grouping this family belongs to.
    pub fn family(&self) -> PredictorFamily {
        match self {
            FamilyConfig::TageSc(_) => PredictorFamily::Tage,
            FamilyConfig::Gehl(_) => PredictorFamily::Gehl,
            FamilyConfig::Perceptron(_) => PredictorFamily::Perceptron,
            FamilyConfig::Bimodal(_) | FamilyConfig::GShare(_) => PredictorFamily::Baseline,
        }
    }
}

impl PredictorConfig for FamilyConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            FamilyConfig::TageSc(c) => PredictorConfig::validate(c),
            FamilyConfig::Gehl(c) => PredictorConfig::validate(c),
            FamilyConfig::Perceptron(c) => PredictorConfig::validate(c),
            FamilyConfig::Bimodal(c) => PredictorConfig::validate(c),
            FamilyConfig::GShare(c) => PredictorConfig::validate(c),
        }
    }

    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        match self {
            FamilyConfig::TageSc(c) => c.build(),
            FamilyConfig::Gehl(c) => c.build(),
            FamilyConfig::Perceptron(c) => c.build(),
            FamilyConfig::Bimodal(c) => c.build(),
            FamilyConfig::GShare(c) => c.build(),
        }
    }

    fn storage_bits_estimate(&self) -> u64 {
        match self {
            FamilyConfig::TageSc(c) => c.storage_bits_estimate(),
            FamilyConfig::Gehl(c) => c.storage_bits_estimate(),
            FamilyConfig::Perceptron(c) => c.storage_bits_estimate(),
            FamilyConfig::Bimodal(c) => c.storage_bits_estimate(),
            FamilyConfig::GShare(c) => c.storage_bits_estimate(),
        }
    }

    fn to_value(&self) -> ConfigValue {
        match self {
            FamilyConfig::TageSc(c) => c.to_value(),
            FamilyConfig::Gehl(c) => c.to_value(),
            FamilyConfig::Perceptron(c) => c.to_value(),
            FamilyConfig::Bimodal(c) => c.to_value(),
            FamilyConfig::GShare(c) => c.to_value(),
        }
    }

    /// Not directly parseable: the family tag lives one level up, in
    /// [`RegistryConfig`]'s `"kind"` field. Always errors.
    fn from_value(_value: &ConfigValue) -> Result<Self, ConfigError> {
        Err(ConfigError::new(
            "family configs parse through RegistryConfig (need the `kind` tag)",
        ))
    }
}

/// A complete registry-level predictor configuration: a host-family
/// config plus an optional wormhole side-predictor wrap (the paper's
/// §3.3 "+WH" evaluation points).
///
/// Serialized shape (the `bp` config-file format):
///
/// ```json
/// {
///   "kind": "tage-sc" | "gehl" | "perceptron" | "bimodal" | "gshare",
///   "config": { ...family fields... },
///   "wormhole": { ...optional WormholeConfig... }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// The host predictor configuration.
    pub base: FamilyConfig,
    /// Optional wormhole wrap ([`WormholeAugmented`]); the wrapper's
    /// trip-count loop predictor is always the default geometry, as in
    /// the paper's isolation of WH.
    pub wormhole: Option<WormholeConfig>,
}

impl RegistryConfig {
    /// A plain (unwrapped) host configuration.
    pub fn plain(base: FamilyConfig) -> Self {
        RegistryConfig {
            base,
            wormhole: None,
        }
    }

    /// A host wrapped with the default wormhole side predictor.
    pub fn with_wormhole(base: FamilyConfig) -> Self {
        RegistryConfig {
            base,
            wormhole: Some(WormholeConfig::default()),
        }
    }
}

impl PredictorConfig for RegistryConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        PredictorConfig::validate(&self.base)?;
        if let Some(wh) = &self.wormhole {
            wh.check()?;
        }
        Ok(())
    }

    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        let base = self.base.build();
        match &self.wormhole {
            None => base,
            Some(wh) => Box::new(WormholeAugmented::with_config(base, *wh)),
        }
    }

    fn storage_bits_estimate(&self) -> u64 {
        let mut bits = self.base.storage_bits_estimate();
        if let Some(wh) = &self.wormhole {
            // The wrapper adds the wormhole entry array plus its
            // default-geometry trip-count loop predictor.
            bits +=
                wh.storage_bits() + bp_components::LoopPredictorConfig::default().storage_bits();
        }
        bits
    }

    fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("kind", ConfigValue::str(self.base.kind()))
            .set("config", self.base.to_value())
            .set_opt(
                "wormhole",
                self.wormhole.as_ref().map(WormholeConfig::to_value),
            )
    }

    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys("predictor config", &["kind", "config", "wormhole"])?;
        let kind = value.req("kind")?.as_str("kind")?;
        let config = value.req("config")?;
        let base = match kind {
            "tage-sc" => FamilyConfig::TageSc(TageScConfig::from_value(config)?),
            "gehl" => FamilyConfig::Gehl(GehlConfig::from_value(config)?),
            "perceptron" => FamilyConfig::Perceptron(PerceptronConfig::from_value(config)?),
            "bimodal" => FamilyConfig::Bimodal(BimodalConfig::from_value(config)?),
            "gshare" => FamilyConfig::GShare(GShareConfig::from_value(config)?),
            other => {
                return Err(ConfigError::new(format!(
                    "unknown predictor kind `{other}` (expected tage-sc, gehl, perceptron, \
                     bimodal, or gshare)"
                )))
            }
        };
        Ok(RegistryConfig {
            base,
            wormhole: value
                .get("wormhole")
                .map(WormholeConfig::from_value)
                .transpose()?,
        })
    }
}

/// One registered predictor configuration: its registry name, host
/// family, the paper section/table it reproduces, and the typed
/// configuration value fresh instances are built from.
#[derive(Debug, Clone)]
pub struct PredictorSpec {
    /// Registry name, e.g. `"tage-gsc+imli"`.
    pub name: String,
    /// Host family (for grid filtering and table grouping).
    pub family: PredictorFamily,
    /// Where in the paper this configuration appears.
    pub paper_ref: String,
    /// The configuration fresh instances are built from.
    pub config: RegistryConfig,
}

impl PredictorSpec {
    /// Builds a spec; the family is derived from the configuration.
    pub fn new(
        name: impl Into<String>,
        paper_ref: impl Into<String>,
        config: RegistryConfig,
    ) -> Self {
        PredictorSpec {
            name: name.into(),
            family: config.base.family(),
            paper_ref: paper_ref.into(),
            config,
        }
    }

    /// Constructs a fresh, cold predictor instance.
    pub fn make(&self) -> Box<dyn ConditionalPredictor + Send> {
        self.config.build()
    }

    /// Storage budget of this configuration in bits — the exact
    /// config-level accounting ([`PredictorConfig::storage_bits_estimate`],
    /// property-tested equal to the built predictor's itemized total).
    pub fn storage_bits(&self) -> u64 {
        self.config.storage_bits_estimate()
    }

    /// Storage budget in Kbit, the unit the paper quotes.
    pub fn storage_kbit(&self) -> f64 {
        self.storage_bits() as f64 / 1024.0
    }
}

/// The canonical (paper-exact) configurations behind every registry
/// name, as named constructors over the typed config layer. These are
/// the constants the rest of the workspace sweeps, scales, and
/// serializes — `registry()` is just this table plus names.
pub mod configs {
    use super::*;
    use bp_tage::TageScConfig;

    /// `tage-gsc` — §3.2.1 base (Table 1 "Base").
    pub fn tage_gsc() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::gsc()))
    }

    /// `tage-gsc+sic` — §4.2.2 IMLI-SIC alone.
    pub fn tage_gsc_sic() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::gsc_sic_only()))
    }

    /// `tage-gsc+oh` — IMLI-OH alone (Figure 13).
    pub fn tage_gsc_oh() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::gsc_oh_only()))
    }

    /// `tage-gsc+imli` — Table 1 "+I".
    pub fn tage_gsc_imli() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::gsc_imli()))
    }

    /// `tage-gsc+wh` — §3.3 TAGE-GSC+WH.
    pub fn tage_gsc_wh() -> RegistryConfig {
        RegistryConfig::with_wormhole(FamilyConfig::TageSc(TageScConfig::gsc()))
    }

    /// `tage-gsc+sic+wh` — §4.3 WH on top of IMLI-SIC.
    pub fn tage_gsc_sic_wh() -> RegistryConfig {
        RegistryConfig::with_wormhole(FamilyConfig::TageSc(TageScConfig::gsc_sic_only()))
    }

    /// `tage-gsc+loop` — §4.2.2 loop-predictor ablation.
    pub fn tage_gsc_loop() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::gsc_loop()))
    }

    /// `tage-gsc+sic+loop` — §4.2.2 SIC + loop-predictor ablation.
    pub fn tage_gsc_sic_loop() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::gsc_sic_loop()))
    }

    /// `tage-sc-l` — Table 1 "+L".
    pub fn tage_sc_l() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::sc_l()))
    }

    /// `tage-sc-l+imli` — Table 1 "+I+L" / §5 record.
    pub fn tage_sc_l_imli() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::TageSc(TageScConfig::sc_l_imli()))
    }

    /// `gehl` — Table 2 base.
    pub fn gehl() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Gehl(GehlConfig::base()))
    }

    /// `gehl+sic` — Figures 10-11.
    pub fn gehl_sic() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Gehl(GehlConfig::sic_only()))
    }

    /// `gehl+oh` — Figures 12-13.
    pub fn gehl_oh() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Gehl(GehlConfig::oh_only()))
    }

    /// `gehl+imli` — Table 2 "+I".
    pub fn gehl_imli() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Gehl(GehlConfig::imli()))
    }

    /// `gehl+wh` — Figures 12-13 (WH).
    pub fn gehl_wh() -> RegistryConfig {
        RegistryConfig::with_wormhole(FamilyConfig::Gehl(GehlConfig::base()))
    }

    /// `gehl+sic+wh` — §4.3 WH on top of IMLI-SIC.
    pub fn gehl_sic_wh() -> RegistryConfig {
        RegistryConfig::with_wormhole(FamilyConfig::Gehl(GehlConfig::sic_only()))
    }

    /// `ftl` — Table 2 "+L".
    pub fn ftl() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Gehl(GehlConfig::ftl()))
    }

    /// `ftl+imli` — Table 2 "+I+L".
    pub fn ftl_imli() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Gehl(GehlConfig::ftl_imli()))
    }

    /// `perceptron` — §1 generality base.
    pub fn perceptron() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Perceptron(PerceptronConfig::base()))
    }

    /// `perceptron+imli` — §1 generality "+I".
    pub fn perceptron_imli() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Perceptron(PerceptronConfig::imli()))
    }

    /// `perceptron+wh` — §1 generality (WH).
    pub fn perceptron_wh() -> RegistryConfig {
        RegistryConfig::with_wormhole(FamilyConfig::Perceptron(PerceptronConfig::base()))
    }

    /// `gshare` — calibration baseline.
    pub fn gshare() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::GShare(GShareConfig::base()))
    }

    /// `bimodal` — calibration baseline.
    pub fn bimodal() -> RegistryConfig {
        RegistryConfig::plain(FamilyConfig::Bimodal(BimodalConfig::base()))
    }
}

/// The registry of named predictor configurations.
///
/// | name | paper reference |
/// |---|---|
/// | `tage-gsc` | §3.2.1 base (Table 1 "Base") |
/// | `tage-gsc+sic` | §4.2.2 IMLI-SIC alone |
/// | `tage-gsc+oh` | IMLI-OH alone (Figure 13 analysis) |
/// | `tage-gsc+imli` | Table 1 "+I" |
/// | `tage-gsc+wh` | §3.3 TAGE-GSC+WH |
/// | `tage-gsc+sic+wh` | §4.3 WH on top of IMLI-SIC |
/// | `tage-sc-l` | Table 1 "+L" |
/// | `tage-sc-l+imli` | Table 1 "+I+L" / §5 record |
/// | `gehl`, `gehl+sic`, `gehl+oh`, `gehl+imli`, `gehl+wh`, `gehl+sic+wh` | Table 2 / Figures 10-13 |
/// | `ftl`, `ftl+imli` | Table 2 "+L" / "+I+L" |
/// | `perceptron`, `perceptron+imli`, `perceptron+wh` | generality check: the §1 claim that IMLI plugs into any neural-inspired predictor |
/// | `gshare`, `bimodal` | calibration baselines |
pub fn registry() -> Vec<PredictorSpec> {
    vec![
        PredictorSpec::new(
            "tage-gsc",
            "§3.2.1 base (Table 1 \"Base\")",
            configs::tage_gsc(),
        ),
        PredictorSpec::new(
            "tage-gsc+sic",
            "§4.2.2 IMLI-SIC alone",
            configs::tage_gsc_sic(),
        ),
        PredictorSpec::new(
            "tage-gsc+oh",
            "IMLI-OH alone (Figure 13)",
            configs::tage_gsc_oh(),
        ),
        PredictorSpec::new("tage-gsc+imli", "Table 1 \"+I\"", configs::tage_gsc_imli()),
        PredictorSpec::new("tage-gsc+wh", "§3.3 TAGE-GSC+WH", configs::tage_gsc_wh()),
        PredictorSpec::new(
            "tage-gsc+sic+wh",
            "§4.3 WH on top of IMLI-SIC",
            configs::tage_gsc_sic_wh(),
        ),
        PredictorSpec::new(
            "tage-gsc+loop",
            "§4.2.2 loop-predictor ablation",
            configs::tage_gsc_loop(),
        ),
        PredictorSpec::new(
            "tage-gsc+sic+loop",
            "§4.2.2 SIC + loop-predictor ablation",
            configs::tage_gsc_sic_loop(),
        ),
        PredictorSpec::new("tage-sc-l", "Table 1 \"+L\"", configs::tage_sc_l()),
        PredictorSpec::new(
            "tage-sc-l+imli",
            "Table 1 \"+I+L\" / §5 record",
            configs::tage_sc_l_imli(),
        ),
        PredictorSpec::new("gehl", "Table 2 base", configs::gehl()),
        PredictorSpec::new("gehl+sic", "Figures 10-11", configs::gehl_sic()),
        PredictorSpec::new("gehl+oh", "Figures 12-13", configs::gehl_oh()),
        PredictorSpec::new("gehl+imli", "Table 2 \"+I\"", configs::gehl_imli()),
        PredictorSpec::new("gehl+wh", "Figures 12-13 (WH)", configs::gehl_wh()),
        PredictorSpec::new(
            "gehl+sic+wh",
            "§4.3 WH on top of IMLI-SIC",
            configs::gehl_sic_wh(),
        ),
        PredictorSpec::new("ftl", "Table 2 \"+L\"", configs::ftl()),
        PredictorSpec::new("ftl+imli", "Table 2 \"+I+L\"", configs::ftl_imli()),
        PredictorSpec::new("perceptron", "§1 generality base", configs::perceptron()),
        PredictorSpec::new(
            "perceptron+imli",
            "§1 generality \"+I\"",
            configs::perceptron_imli(),
        ),
        PredictorSpec::new(
            "perceptron+wh",
            "§1 generality (WH)",
            configs::perceptron_wh(),
        ),
        PredictorSpec::new("gshare", "calibration baseline", configs::gshare()),
        PredictorSpec::new("bimodal", "calibration baseline", configs::bimodal()),
    ]
}

/// The default configuration set of `bp report paper` and the
/// simulator benchmark's grid leg: the Table 1/2 ablation ladders plus
/// the WH comparison points, in table order.
pub const PAPER_REPORT_NAMES: [&str; 12] = [
    "tage-gsc",
    "tage-gsc+sic",
    "tage-gsc+imli",
    "tage-gsc+wh",
    "tage-sc-l",
    "tage-sc-l+imli",
    "gehl",
    "gehl+imli",
    "gehl+wh",
    "ftl",
    "ftl+imli",
    "perceptron+imli",
];

/// The 12 predictor configurations of the paper report
/// ([`PAPER_REPORT_NAMES`]) as resolved registry specs.
pub fn paper_report_predictors() -> Vec<PredictorSpec> {
    PAPER_REPORT_NAMES
        .iter()
        // bp-lint: allow(panic-surface, "PAPER_REPORT_NAMES is a const list checked by the paper_report_set_resolves_in_table_order test; a miss is a registry bug, not input-dependent")
        .map(|n| lookup(n).expect("paper report predictors are registered"))
        .collect()
}

/// Looks a configuration up by registry name.
///
/// ```
/// use bp_sim::{lookup, PredictorFamily};
/// let spec = lookup("tage-gsc+imli").expect("registered");
/// assert_eq!(spec.family, PredictorFamily::Tage);
/// assert!(lookup("nope").is_none());
/// ```
pub fn lookup(name: &str) -> Option<PredictorSpec> {
    registry().into_iter().find(|spec| spec.name == name)
}

/// All registered configurations of one family, in registry order.
pub fn family_members(family: PredictorFamily) -> Vec<PredictorSpec> {
    registry()
        .into_iter()
        .filter(|spec| spec.family == family)
        .collect()
}

/// All registry names, in registry order — the discoverability list
/// error messages quote.
pub fn registry_names() -> Vec<String> {
    registry().into_iter().map(|spec| spec.name).collect()
}

/// Constructs a fresh predictor by registry name, or `None` for unknown
/// names.
///
/// ```
/// use bp_sim::make_predictor;
/// let p = make_predictor("tage-gsc+imli").expect("registered");
/// assert_eq!(p.name(), "TAGE-GSC+IMLI");
/// assert!(make_predictor("nope").is_none());
/// ```
pub fn make_predictor(name: &str) -> Option<Box<dyn ConditionalPredictor + Send>> {
    lookup(name).map(|spec| spec.make())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_predictors_construct_and_predict() {
        for spec in registry() {
            PredictorConfig::validate(&spec.config)
                .unwrap_or_else(|e| panic!("{} config invalid: {e}", spec.name));
            let mut p = spec.make();
            let _ = p.predict(0x4000);
            p.update(&bp_trace::BranchRecord::conditional(0x4000, 0x4100, true));
            assert!(p.storage_bits() > 0, "{} has an empty budget", spec.name);
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names = registry_names();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn storage_budgets_follow_the_paper_ordering() {
        let bits = |name: &str| lookup(name).unwrap().storage_bits();
        // Table 1 ordering: Base < +I < +L < +I+L.
        assert!(bits("tage-gsc") < bits("tage-gsc+imli"));
        assert!(bits("tage-gsc+imli") < bits("tage-sc-l"));
        assert!(bits("tage-sc-l") < bits("tage-sc-l+imli"));
        // Table 2 ordering.
        assert!(bits("gehl") < bits("gehl+imli"));
        assert!(bits("gehl+imli") < bits("ftl"));
        assert!(bits("ftl") < bits("ftl+imli"));
        // GEHL base is exactly 204 Kbit.
        assert_eq!(bits("gehl"), 204 * 1024);
        assert!((lookup("gehl").unwrap().storage_kbit() - 204.0).abs() < 1e-9);
    }

    #[test]
    fn spec_storage_matches_built_instance_exactly() {
        for spec in registry() {
            assert_eq!(
                spec.storage_bits(),
                spec.make().storage_bits(),
                "{}: config estimate diverges from built itemization",
                spec.name
            );
        }
    }

    #[test]
    fn configs_round_trip_through_text() {
        for spec in registry() {
            let text = spec.config.to_text();
            let parsed = RegistryConfig::from_text(&text)
                .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", spec.name));
            assert_eq!(
                parsed.storage_bits_estimate(),
                spec.config.storage_bits_estimate(),
                "{}",
                spec.name
            );
            assert_eq!(parsed.build().name(), spec.make().name(), "{}", spec.name);
            // Deterministic: serializing the parse reproduces the bytes.
            assert_eq!(parsed.to_text(), text, "{}", spec.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(make_predictor("gehl+wh").is_some());
        assert!(make_predictor("unknown").is_none());
        assert!(lookup("gshare").is_some());
    }

    #[test]
    fn families_partition_the_registry() {
        let total: usize = PredictorFamily::ALL
            .iter()
            .map(|&f| family_members(f).len())
            .sum();
        assert_eq!(total, registry().len());
        assert!(family_members(PredictorFamily::Tage).len() >= 10);
        assert_eq!(family_members(PredictorFamily::Baseline).len(), 2);
        assert!(family_members(PredictorFamily::Gehl)
            .iter()
            .all(|s| s.name.starts_with("gehl") || s.name.starts_with("ftl")));
    }

    #[test]
    fn paper_report_set_resolves_in_table_order() {
        let specs = paper_report_predictors();
        assert_eq!(specs.len(), PAPER_REPORT_NAMES.len());
        for (spec, name) in specs.iter().zip(PAPER_REPORT_NAMES) {
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn specs_carry_paper_references() {
        for spec in registry() {
            assert!(
                !spec.paper_ref.is_empty(),
                "{} lacks a paper ref",
                spec.name
            );
        }
        let debug = format!("{:?}", lookup("gehl").unwrap());
        assert!(debug.contains("gehl") && debug.contains("Gehl"));
    }

    #[test]
    fn unknown_kind_and_bad_fields_error_descriptively() {
        let err = RegistryConfig::from_text("{\"kind\": \"zap\", \"config\": {}}").unwrap_err();
        assert!(err.to_string().contains("unknown predictor kind `zap`"));
        let err = RegistryConfig::from_text("{\"kind\": \"bimodal\", \"config\": {\"log\": 3}}")
            .unwrap_err();
        assert!(err.to_string().contains("unknown bimodal config field"));
    }
}
