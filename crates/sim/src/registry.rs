//! The named-predictor registry: every configuration of the paper's
//! evaluation, constructible by string name.

use bp_components::{Bimodal, ConditionalPredictor, GShare};
use bp_gehl::Gehl;
use bp_perceptron::HashedPerceptron;
use bp_tage::TageSc;
use bp_wormhole::WormholeAugmented;

/// A factory producing fresh predictor instances.
pub type PredictorFactory = fn() -> Box<dyn ConditionalPredictor + Send>;

/// The registry of named predictor configurations.
///
/// | name | paper reference |
/// |---|---|
/// | `tage-gsc` | §3.2.1 base (Table 1 "Base") |
/// | `tage-gsc+sic` | §4.2.2 IMLI-SIC alone |
/// | `tage-gsc+oh` | IMLI-OH alone (Figure 13 analysis) |
/// | `tage-gsc+imli` | Table 1 "+I" |
/// | `tage-gsc+wh` | §3.3 TAGE-GSC+WH |
/// | `tage-gsc+sic+wh` | §4.3 WH on top of IMLI-SIC |
/// | `tage-sc-l` | Table 1 "+L" |
/// | `tage-sc-l+imli` | Table 1 "+I+L" / §5 record |
/// | `gehl`, `gehl+sic`, `gehl+oh`, `gehl+imli`, `gehl+wh`, `gehl+sic+wh` | Table 2 / Figures 10-13 |
/// | `ftl`, `ftl+imli` | Table 2 "+L" / "+I+L" |
/// | `perceptron`, `perceptron+imli`, `perceptron+wh` | generality check: the §1 claim that IMLI plugs into any neural-inspired predictor |
/// | `gshare`, `bimodal` | calibration baselines |
pub fn registry() -> Vec<(&'static str, PredictorFactory)> {
    vec![
        ("tage-gsc", || Box::new(TageSc::tage_gsc())),
        ("tage-gsc+sic", || Box::new(TageSc::tage_gsc_sic())),
        ("tage-gsc+oh", || {
            Box::new(TageSc::new(bp_tage::TageScConfig::gsc_oh_only()))
        }),
        ("tage-gsc+imli", || Box::new(TageSc::tage_gsc_imli())),
        ("tage-gsc+wh", || {
            Box::new(WormholeAugmented::new(TageSc::tage_gsc()))
        }),
        ("tage-gsc+sic+wh", || {
            Box::new(WormholeAugmented::new(TageSc::tage_gsc_sic()))
        }),
        ("tage-gsc+loop", || {
            Box::new(TageSc::new(bp_tage::TageScConfig::gsc_loop()))
        }),
        ("tage-gsc+sic+loop", || {
            Box::new(TageSc::new(bp_tage::TageScConfig::gsc_sic_loop()))
        }),
        ("tage-sc-l", || Box::new(TageSc::tage_sc_l())),
        ("tage-sc-l+imli", || Box::new(TageSc::tage_sc_l_imli())),
        ("gehl", || Box::new(Gehl::gehl())),
        ("gehl+sic", || Box::new(Gehl::gehl_sic())),
        ("gehl+oh", || Box::new(Gehl::gehl_oh())),
        ("gehl+imli", || Box::new(Gehl::gehl_imli())),
        ("gehl+wh", || Box::new(WormholeAugmented::new(Gehl::gehl()))),
        ("gehl+sic+wh", || {
            Box::new(WormholeAugmented::new(Gehl::gehl_sic()))
        }),
        ("ftl", || Box::new(Gehl::ftl())),
        ("ftl+imli", || Box::new(Gehl::ftl_imli())),
        ("perceptron", || Box::new(HashedPerceptron::base())),
        (
            "perceptron+imli",
            || Box::new(HashedPerceptron::with_imli()),
        ),
        ("perceptron+wh", || {
            Box::new(WormholeAugmented::new(HashedPerceptron::base()))
        }),
        ("gshare", || Box::new(GShare::new(14, 12))),
        ("bimodal", || Box::new(Bimodal::new(16384))),
    ]
}

/// Constructs a fresh predictor by registry name, or `None` for unknown
/// names.
///
/// ```
/// use bp_sim::make_predictor;
/// let p = make_predictor("tage-gsc+imli").expect("registered");
/// assert_eq!(p.name(), "TAGE-GSC+IMLI");
/// assert!(make_predictor("nope").is_none());
/// ```
pub fn make_predictor(name: &str) -> Option<Box<dyn ConditionalPredictor + Send>> {
    registry()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_predictors_construct_and_predict() {
        for (name, factory) in registry() {
            let mut p = factory();
            let _ = p.predict(0x4000);
            p.update(&bp_trace::BranchRecord::conditional(0x4000, 0x4100, true));
            assert!(p.storage_bits() > 0 || name == "always-taken", "{name}");
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = registry().into_iter().map(|(n, _)| n).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn storage_budgets_follow_the_paper_ordering() {
        let bits = |name: &str| make_predictor(name).unwrap().storage_bits();
        // Table 1 ordering: Base < +I < +L < +I+L.
        assert!(bits("tage-gsc") < bits("tage-gsc+imli"));
        assert!(bits("tage-gsc+imli") < bits("tage-sc-l"));
        assert!(bits("tage-sc-l") < bits("tage-sc-l+imli"));
        // Table 2 ordering.
        assert!(bits("gehl") < bits("gehl+imli"));
        assert!(bits("gehl+imli") < bits("ftl"));
        assert!(bits("ftl") < bits("ftl+imli"));
        // GEHL base is exactly 204 Kbit.
        assert_eq!(bits("gehl"), 204 * 1024);
    }

    #[test]
    fn lookup_by_name() {
        assert!(make_predictor("gehl+wh").is_some());
        assert!(make_predictor("unknown").is_none());
    }
}
