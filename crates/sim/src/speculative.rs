//! Speculation-repair fidelity for the IMLI state (paper §4.2.1/§4.3.2).
//!
//! The paper's hardware argument is that the IMLI components' speculative
//! state is only the IMLI counter (10 bits) and the PIPE vector (16
//! bits): after a misprediction, restoring that checkpoint resumes fetch
//! with exactly the right state, while the outer-history *bit table* can
//! be left stale (it is written at commit, so the wrong path never
//! touches it). This harness models that pipeline: it runs a trace
//! through an [`ImliState`] while injecting wrong-path excursions
//! (checkpoint → fetch fake wrong-path branches speculatively → restore)
//! and compares the speculating machine against a golden,
//! never-speculating copy after every record.

use bp_trace::{BranchKind, BranchRecord, Trace};
use imli::{ImliConfig, ImliState};
use std::fmt;

/// Outcome of a speculative-fidelity run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationReport {
    /// Branch records processed.
    pub records: u64,
    /// Wrong-path excursions injected.
    pub excursions: u64,
    /// Wrong-path records fetched in total.
    pub wrong_path_records: u64,
    /// Records after which the speculative IMLI counter or PIPE differed
    /// from the golden machine (must be 0 — this is the claim).
    pub divergences: u64,
    /// Checkpoint width in bits (10 + 16 for the default configuration).
    pub checkpoint_bits: u64,
}

impl fmt::Display for SpeculationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records, {} excursions ({} wrong-path records), {} divergences, {}-bit checkpoint",
            self.records,
            self.excursions,
            self.wrong_path_records,
            self.divergences,
            self.checkpoint_bits
        )
    }
}

/// Deterministic wrong-path record generator: plausible-looking but
/// incorrect branches (the kind a fetch engine runs after a mispredicted
/// branch), roughly half of them backward so they do move the counter.
fn wrong_path_record(seed: u64, i: u64) -> BranchRecord {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let pc = 0x7000_0000 + (x % 512) * 4;
    let backward = x & 8 == 0;
    let target = if backward { pc - 0x80 } else { pc + 0x80 };
    BranchRecord {
        pc,
        target,
        kind: BranchKind::Conditional,
        taken: x & 16 == 0,
        leading_instructions: 3,
    }
}

/// Runs `trace` through a speculating IMLI machine and a golden one.
///
/// Every `every` records, a wrong-path excursion of `depth` fake
/// branches is fetched speculatively (advancing the fetch-time IMLI
/// counter via [`ImliState::observe_speculative`]) and then repaired
/// from the 26-bit checkpoint. The report counts any post-repair
/// divergence of the architectural speculative state (counter + PIPE);
/// the paper's claim is that this is always zero because those two
/// structures are exactly what the checkpoint covers.
///
/// # Panics
///
/// Panics if `every` is 0.
pub fn speculative_imli_fidelity(
    trace: &Trace,
    config: &ImliConfig,
    every: u64,
    depth: u64,
) -> SpeculationReport {
    assert!(every > 0, "excursion period must be positive");
    let mut golden = ImliState::new(config);
    let mut spec = ImliState::new(config);
    let mut report = SpeculationReport {
        records: 0,
        excursions: 0,
        wrong_path_records: 0,
        divergences: 0,
        checkpoint_bits: spec.checkpoint_bits(),
    };
    for (i, record) in trace.iter().enumerate() {
        let i = i as u64;
        if i % every == every - 1 {
            // Misprediction: fetch down the wrong path. Only fetch-time
            // state (the counter) advances; commit-time structures (the
            // outer-history table and PIPE) are never written by
            // wrong-path branches.
            let cp = spec.checkpoint();
            report.excursions += 1;
            for w in 0..depth {
                spec.observe_speculative(&wrong_path_record(i, w));
                report.wrong_path_records += 1;
            }
            // ...and the checkpoint repairs the fetch state.
            spec.restore(&cp);
        }
        golden.observe(record);
        spec.observe(record);
        report.records += 1;
        if golden.counter().value() != spec.counter().value()
            || golden.outer_history().pipe() != spec.outer_history().pipe()
        {
            report.divergences += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workloads::quick_benchmark;

    #[test]
    fn repair_keeps_speculative_state_exact() {
        let trace = quick_benchmark("spec-fidelity", 99, 60_000);
        let report = speculative_imli_fidelity(&trace, &ImliConfig::default(), 37, 24);
        assert_eq!(report.divergences, 0, "{report}");
        assert!(report.excursions > 100);
        assert_eq!(report.checkpoint_bits, 26);
        assert!(format!("{report}").contains("26-bit"));
    }

    #[test]
    fn deep_excursions_are_still_repaired() {
        let trace = quick_benchmark("spec-deep", 7, 30_000);
        let report = speculative_imli_fidelity(&trace, &ImliConfig::default(), 11, 200);
        assert_eq!(report.divergences, 0);
        assert_eq!(report.wrong_path_records, report.excursions * 200);
    }

    #[test]
    fn without_repair_the_state_would_diverge() {
        // Sanity check that the harness is actually sensitive: skipping
        // the restore produces divergences (so the zero above is
        // meaningful).
        let trace = quick_benchmark("spec-control", 5, 20_000);
        let config = ImliConfig::default();
        let mut golden = ImliState::new(&config);
        let mut spec = ImliState::new(&config);
        let mut diverged = 0u64;
        for (i, record) in trace.iter().enumerate() {
            if i % 37 == 36 {
                for w in 0..8 {
                    spec.observe_speculative(&wrong_path_record(i as u64, w));
                }
                // No restore.
            }
            golden.observe(record);
            spec.observe(record);
            if golden.counter().value() != spec.counter().value() {
                diverged += 1;
            }
        }
        assert!(diverged > 0, "harness must detect unrepaired speculation");
    }

    #[test]
    #[should_panic(expected = "excursion period")]
    fn rejects_zero_period() {
        let trace = quick_benchmark("z", 1, 1_000);
        let _ = speculative_imli_fidelity(&trace, &ImliConfig::default(), 0, 1);
    }
}
