//! The storage-budget sweep subsystem.
//!
//! The paper's comparisons are made at *fixed storage points* (the
//! 64-Kbit and 256-Kbit configurations of its §5 discussion). This
//! module turns those points into a first-class experiment:
//!
//! * [`solve_budget`] — the budget solver: scales a predictor family's
//!   log-sizes and table counts to hit a target budget, searching a
//!   family-specific candidate lattice and picking the geometry whose
//!   **exact** config-level storage
//!   ([`PredictorConfig::storage_bits_estimate`], property-tested equal
//!   to the built predictor's itemized `storage_items()` sum) lands
//!   nearest the target. The candidate lattice is independent of the
//!   target, which makes the solver *monotone*: a larger budget never
//!   yields a smaller predictor (property-tested);
//! * [`run_sweep`] — the (budget × family × benchmark) MPKI grid on
//!   the engine's fused-column path (each benchmark stream decoded
//!   once for all swept configurations), folded into a [`SweepReport`];
//! * [`SweepReport::to_markdown`] / [`SweepReport::to_json`] —
//!   byte-deterministic renderings (no timestamps, stable ordering,
//!   fixed precision), the `SWEEP_<suite>.md` / `.json` artifacts of
//!   `bp sweep`;
//! * [`parse_predictor_file`] / [`parse_sweep_file`] — the `--config`
//!   file formats of `bp grid` / `bp report` / `bp sweep`, parsed with
//!   the same hand-rolled JSON subset as the config layer.

use crate::engine::{Engine, GridStrategy};
use crate::registry::{FamilyConfig, PredictorSpec, RegistryConfig};
use bp_components::{
    BimodalConfig, ConfigError, ConfigValue, GShareConfig, LoopPredictorConfig, PredictorConfig,
};
use bp_gehl::GehlConfig;
use bp_perceptron::PerceptronConfig;
use bp_tage::{LocalScConfig, ScConfig, TageConfig, TageScConfig};
use bp_workloads::BenchmarkSpec;
use imli::ImliConfig;
use std::fmt::Write as _;

/// Relative budget tolerance of the solver: every solved configuration's
/// exact storage lands within this fraction of the target.
pub const BUDGET_TOLERANCE: f64 = 0.02;

/// The standard sweep budgets in Kbit — the paper's 64/256-Kbit points
/// embedded in a power-of-two ladder.
pub const STANDARD_BUDGETS_KBIT: [u64; 6] = [8, 16, 32, 64, 128, 256];

/// The predictor families the default sweep scales, in report order:
/// both baselines, the perceptron host, the GEHL host with and without
/// IMLI, and the TAGE ladder (Base, +I, +L, +I+L) up to the paper's §5
/// record configuration.
pub const SWEEP_FAMILIES: [&str; 9] = [
    "bimodal",
    "gshare",
    "perceptron",
    "gehl",
    "gehl+imli",
    "tage-gsc",
    "tage-gsc+imli",
    "tage-sc-l",
    "tage-sc-l+imli",
];

/// The canonical TAGE tag-width ladder the solver subsamples when it
/// scales the tagged-table count (the default 12-table geometry's
/// widths).
const TAG_LADDER: [usize; 12] = [8, 8, 9, 10, 10, 11, 11, 12, 12, 13, 14, 15];

/// A strictly increasing geometric-ish series of `n` history segment
/// lengths from `min` to `max` (used for perceptron segments and SC
/// global lengths, which cost no storage but must be well-formed).
fn geometric_lengths(min: usize, max: usize, n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let v = if n == 1 {
            max
        } else {
            let ratio = (max as f64 / min as f64).powf(i as f64 / (n as f64 - 1.0));
            ((min as f64 * ratio) + 0.5) as usize
        };
        // Force strict monotonicity after rounding.
        let floor = out.last().map_or(0, |&p: &usize| p + 1);
        out.push(v.max(floor));
    }
    out
}

/// Tag widths for an `n`-table TAGE, subsampled from the canonical
/// 12-table ladder.
fn tag_bits_for(n: usize) -> Vec<usize> {
    if n == 1 {
        return vec![12];
    }
    (0..n)
        .map(|i| TAG_LADDER[(i * (TAG_LADDER.len() - 1)) / (n - 1).max(1)])
        .collect()
}

/// Tracks the best candidate seen so far.
///
/// Selection is two-tiered: among candidates whose storage lands within
/// [`BUDGET_TOLERANCE`] of the target, the highest `quality` score wins
/// (a per-family, *target-independent* prior toward canonical-shaped
/// geometries — pure nearest-storage selection was observed to pick
/// degenerate shapes such as 2-table or 39-table GEHLs, whose MPKI gets
/// *worse* as the budget grows). Ties break toward the smaller storage,
/// then first-seen (the enumeration order is deterministic). When no
/// candidate lands in the window, the nearest-storage candidate is
/// returned so [`solve_budget`]'s tolerance check can report the miss.
///
/// Monotonicity in the target is preserved: for targets `a <= b` with
/// windows `Wa`, `Wb`, any candidate of `Wb` smaller than `b`'s pick
/// that also lies in `Wa` would have been `a`'s pick too (same quality
/// order, same tie-break), and candidates of `Wb \ Wa` all sit above
/// `Wa`'s upper edge — so the picked storage never decreases
/// (property-tested over arbitrary budget pairs).
struct Best<K> {
    target: i128,
    /// Nearest-storage fallback (only used when the window is empty).
    near_bits: u64,
    near_error: i128,
    near_knobs: Option<K>,
    /// Highest-quality candidate within the tolerance window.
    win_bits: u64,
    win_quality: i64,
    win_knobs: Option<K>,
}

impl<K: Copy> Best<K> {
    fn new(target_bits: u64) -> Self {
        Best {
            target: target_bits as i128,
            near_bits: 0,
            near_error: i128::MAX,
            near_knobs: None,
            win_bits: 0,
            win_quality: i64::MIN,
            win_knobs: None,
        }
    }

    fn offer(&mut self, bits: u64, quality: i64, knobs: K) {
        let error = (bits as i128 - self.target).abs();
        if error < self.near_error || (error == self.near_error && bits < self.near_bits) {
            self.near_error = error;
            self.near_bits = bits;
            self.near_knobs = Some(knobs);
        }
        // `error <= target * tolerance`, in exact integer arithmetic
        // (tolerance is 2% = 1/50).
        debug_assert!((BUDGET_TOLERANCE - 0.02).abs() < 1e-12);
        if error * 50 > self.target {
            return;
        }
        if self.win_knobs.is_none()
            || quality > self.win_quality
            || (quality == self.win_quality && bits < self.win_bits)
        {
            self.win_quality = quality;
            self.win_bits = bits;
            self.win_knobs = Some(knobs);
        }
    }

    /// The selected knobs: the quality winner within the tolerance
    /// window, or the nearest-storage fallback. Errs if the candidate
    /// lattice produced no offer at all (a solver bug, surfaced as a
    /// [`ConfigError`] instead of a panic so `solve_budget` reports it).
    fn take(self, family: &str) -> Result<K, ConfigError> {
        self.win_knobs
            .or(self.near_knobs)
            .ok_or_else(|| ConfigError::new(format!("{family}: empty candidate lattice")))
    }
}

/// Fixed (non-scaled) pieces of an IMLI-carrying configuration: the
/// paper treats the IMLI components as a fixed ~708-byte design point,
/// so the solver never scales them.
fn imli_bits() -> u64 {
    ImliConfig::default().state_storage_bits()
}

/// Quality prior of a multi-table neural-style geometry: prefer the
/// canonical shape (8 tables, 6-bit counters — the paper's GEHL / FTL /
/// hashed-perceptron designs all sit there), and among equally-shaped
/// candidates the larger tables (fewer index conflicts). Target-
/// independent, as [`Best`]'s monotonicity argument requires.
fn neural_quality(tables: usize, counter_bits: usize, log_entries: usize) -> i64 {
    -((tables as i64 - 8).abs() * 100 + (counter_bits as i64 - 6).abs() * 10) + log_entries as i64
}

fn solve_bimodal(target_bits: u64) -> Result<BimodalConfig, ConfigError> {
    let mut best = Best::new(target_bits);
    for log_entries in 2..=24usize {
        best.offer((1u64 << log_entries) * 2, 0, log_entries);
    }
    Ok(BimodalConfig {
        log_entries: best.take("bimodal")?,
    })
}

fn solve_gshare(target_bits: u64) -> Result<GShareConfig, ConfigError> {
    let mut best = Best::new(target_bits);
    for log_entries in 4..=24usize {
        let history_bits = (log_entries - 2).min(24);
        best.offer(
            (1u64 << log_entries) * 2 + history_bits as u64,
            0,
            (log_entries, history_bits),
        );
    }
    let (log_entries, history_bits) = best.take("gshare")?;
    Ok(GShareConfig {
        log_entries,
        history_bits,
    })
}

fn solve_perceptron(target_bits: u64) -> Result<PerceptronConfig, ConfigError> {
    let mut best = Best::new(target_bits);
    for tables in 2..=24usize {
        for weight_bits in 4..=7usize {
            for log_entries in 6..=16usize {
                let bits = tables as u64 * weight_bits as u64 * (1u64 << log_entries);
                best.offer(
                    bits,
                    neural_quality(tables, weight_bits, log_entries),
                    (tables, weight_bits, log_entries),
                );
            }
        }
    }
    let (tables, weight_bits, log_entries) = best.take("perceptron")?;
    let mut segments = vec![0];
    segments.extend(geometric_lengths(4, 256, tables - 1));
    Ok(PerceptronConfig {
        log_entries,
        weight_bits,
        segments,
        name: format!("HP/{}Kb", (target_bits + 512) / 1024),
        ..PerceptronConfig::base()
    })
}

fn solve_gehl(target_bits: u64, with_imli: bool) -> Result<GehlConfig, ConfigError> {
    let fixed = if with_imli { imli_bits() } else { 0 };
    let mut best = Best::new(target_bits);
    for tables in 2..=40usize {
        for counter_bits in 3..=7usize {
            for log_entries in 6..=16usize {
                let bits = fixed + tables as u64 * counter_bits as u64 * (1u64 << log_entries);
                best.offer(
                    bits,
                    neural_quality(tables, counter_bits, log_entries),
                    (tables, counter_bits, log_entries),
                );
            }
        }
    }
    let (num_tables, counter_bits, log_entries) = best.take("gehl")?;
    let suffix = if with_imli { "+IMLI" } else { "" };
    Ok(GehlConfig {
        log_entries,
        counter_bits,
        num_tables,
        imli: with_imli.then(ImliConfig::default),
        name: format!("GEHL{suffix}/{}Kb", (target_bits + 512) / 1024),
        ..GehlConfig::base()
    })
}

/// Which optional components a solved TAGE configuration carries.
#[derive(Clone, Copy)]
struct TageVariant {
    imli: bool,
    /// Local SC components + loop predictor (the "+L" shape).
    local: bool,
}

/// One point of `solve_tage`'s candidate lattice, fully materialized as
/// a config. The solver costs every candidate with the config layer's
/// own [`PredictorConfig::storage_bits_estimate`] (allocation-free
/// arithmetic), so the lattice can never drift from the real
/// accounting.
fn tage_candidate(
    variant: TageVariant,
    knobs: (usize, usize, usize, usize, usize),
    name: String,
) -> TageScConfig {
    let (n_tables, t_log, sc_log, globals, loop_log) = knobs;
    let sc_entries = 1usize << sc_log;
    TageScConfig {
        tage: TageConfig {
            base_log_entries: (t_log + 3).min(24),
            tagged_log_entries: t_log,
            tag_bits: tag_bits_for(n_tables),
            ..TageConfig::default()
        },
        sc: ScConfig {
            bias_entries: sc_entries,
            table_entries: sc_entries,
            global_lengths: geometric_lengths(3, 33, globals),
            imli: variant.imli.then(ImliConfig::default),
            imli_in_global_indices: variant.imli,
            local: variant.local.then(|| LocalScConfig {
                history_entries: sc_entries.min(256),
                history_width: 16,
                table_entries: sc_entries,
                lengths: vec![4, 8, 12, 16],
            }),
            ..ScConfig::default()
        },
        loop_predictor: variant.local.then(|| LoopPredictorConfig {
            log_entries: loop_log,
            ..LoopPredictorConfig::default()
        }),
        name,
    }
}

fn solve_tage(target_bits: u64, variant: TageVariant) -> Result<TageScConfig, ConfigError> {
    let mut best = Best::new(target_bits);
    let loop_logs: &[usize] = if variant.local { &[2, 4, 6] } else { &[0] };
    for n_tables in 2..=12usize {
        for t_log in 2..=13usize {
            for sc_log in 2..=12usize {
                for globals in 2..=5usize {
                    for &loop_log in loop_logs {
                        let knobs = (n_tables, t_log, sc_log, globals, loop_log);
                        let candidate = tage_candidate(variant, knobs, String::new());
                        // TAGE quality grows with tagged-table count
                        // and table size (the canonical design is 12
                        // tables and spends most of its budget there);
                        // the SC size is a tie-breaker.
                        let quality = n_tables as i64 * 100 + t_log as i64 * 10 + sc_log as i64;
                        best.offer(candidate.storage_bits_estimate(), quality, knobs);
                    }
                }
            }
        }
    }
    let knobs = best.take("tage")?;
    let label = match (variant.local, variant.imli) {
        (false, false) => "TAGE-GSC",
        (false, true) => "TAGE-GSC+IMLI",
        (true, false) => "TAGE-SC-L",
        (true, true) => "TAGE-SC-L+IMLI",
    };
    Ok(tage_candidate(
        variant,
        knobs,
        format!("{label}/{}Kb", (target_bits + 512) / 1024),
    ))
}

/// Solves one sweep family for a target budget: returns a configuration
/// whose exact storage ([`PredictorConfig::storage_bits_estimate`] ==
/// built `storage_items()` sum) lands within [`BUDGET_TOLERANCE`] of
/// `target_bits`, or an error naming the family and the miss.
///
/// The family names are the [`SWEEP_FAMILIES`] set. The candidate
/// lattice searched per family does not depend on the target, so for
/// any two targets `a <= b`, `solve_budget(f, a)` never returns more
/// storage than `solve_budget(f, b)` (monotonicity; property-tested).
pub fn solve_budget(family: &str, target_bits: u64) -> Result<RegistryConfig, ConfigError> {
    let config = match family {
        "bimodal" => RegistryConfig::plain(FamilyConfig::Bimodal(solve_bimodal(target_bits)?)),
        "gshare" => RegistryConfig::plain(FamilyConfig::GShare(solve_gshare(target_bits)?)),
        "perceptron" => {
            RegistryConfig::plain(FamilyConfig::Perceptron(solve_perceptron(target_bits)?))
        }
        "gehl" => RegistryConfig::plain(FamilyConfig::Gehl(solve_gehl(target_bits, false)?)),
        "gehl+imli" => RegistryConfig::plain(FamilyConfig::Gehl(solve_gehl(target_bits, true)?)),
        "tage-gsc" => RegistryConfig::plain(FamilyConfig::TageSc(solve_tage(
            target_bits,
            TageVariant {
                imli: false,
                local: false,
            },
        )?)),
        "tage-gsc+imli" => RegistryConfig::plain(FamilyConfig::TageSc(solve_tage(
            target_bits,
            TageVariant {
                imli: true,
                local: false,
            },
        )?)),
        "tage-sc-l" => RegistryConfig::plain(FamilyConfig::TageSc(solve_tage(
            target_bits,
            TageVariant {
                imli: false,
                local: true,
            },
        )?)),
        "tage-sc-l+imli" => RegistryConfig::plain(FamilyConfig::TageSc(solve_tage(
            target_bits,
            TageVariant {
                imli: true,
                local: true,
            },
        )?)),
        other => {
            return Err(ConfigError::new(format!(
                "unknown sweep family `{other}` (available: {})",
                SWEEP_FAMILIES.join(", ")
            )))
        }
    };
    PredictorConfig::validate(&config).map_err(|e| {
        ConfigError::new(format!("solver produced an invalid {family} config: {e}"))
    })?;
    let bits = config.storage_bits_estimate();
    let error = (bits as f64 - target_bits as f64).abs() / target_bits as f64;
    if error > BUDGET_TOLERANCE {
        return Err(ConfigError::new(format!(
            "no {family} geometry within {:.1}% of {target_bits} bits (best: {bits} bits, \
             {:.2}% off)",
            BUDGET_TOLERANCE * 100.0,
            error * 100.0
        )));
    }
    Ok(config)
}

/// One swept configuration's results: the solved geometry, its exact
/// storage, and its per-benchmark MPKI.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Sweep family name (e.g. `"tage-sc-l+imli"`).
    pub family: String,
    /// Target budget in Kbit.
    pub budget_kbit: u64,
    /// Exact storage of the solved configuration in bits.
    pub storage_bits: u64,
    /// The solved configuration.
    pub config: RegistryConfig,
    /// The built predictor's display name.
    pub display: String,
    /// Per-benchmark MPKI, in suite order.
    pub mpki: Vec<f64>,
}

impl SweepRow {
    /// Target budget in bits.
    pub fn target_bits(&self) -> u64 {
        self.budget_kbit * 1024
    }

    /// Signed relative budget error (`+` over, `-` under target).
    pub fn budget_error(&self) -> f64 {
        (self.storage_bits as f64 - self.target_bits() as f64) / self.target_bits() as f64
    }

    /// Arithmetic-mean MPKI over the suite.
    pub fn mean_mpki(&self) -> f64 {
        if self.mpki.is_empty() {
            return 0.0;
        }
        self.mpki.iter().sum::<f64>() / self.mpki.len() as f64
    }
}

/// A complete budget sweep over one suite: (budget × family) solved
/// configurations and their per-benchmark MPKI.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Suite label (`"paper"`, `"cbp4"`, `"cbp3"`).
    pub suite: String,
    /// Instructions per benchmark.
    pub instructions: u64,
    /// Target budgets in Kbit, ascending.
    pub budgets_kbit: Vec<u64>,
    /// Families swept, in input order.
    pub families: Vec<String>,
    /// Benchmark names, in suite order.
    pub benchmarks: Vec<String>,
    /// One row per (budget, family), budget-major.
    pub rows: Vec<SweepRow>,
}

/// Runs the full budget sweep: solves every (budget, family) pair,
/// builds the solved configurations into registry specs named
/// `family@budget`, and runs the (config × benchmark) grid on the
/// engine's **fused-column** strategy (each benchmark stream decoded
/// once for all swept configurations). Deterministic: the report
/// depends only on its inputs, never on worker count or scheduling.
pub fn run_sweep(
    suite: &str,
    benchmarks: &[BenchmarkSpec],
    budgets_kbit: &[u64],
    families: &[String],
    instructions: u64,
    jobs: usize,
    progress: &(dyn Fn(crate::engine::CellUpdate<'_>) + Sync),
) -> Result<SweepReport, ConfigError> {
    run_sweep_with_cache(
        suite,
        benchmarks,
        budgets_kbit,
        families,
        instructions,
        jobs,
        None,
        progress,
    )
}

/// [`run_sweep`] with an optional result cache, handed to the
/// [`Engine`] so only missing grid cells simulate. Cache keys are the
/// *solved* configuration texts, not the `family@budget` labels — two
/// budgets solving to the same configuration share one entry, and a
/// cache warmed by `bp grid` on the same config hits here too.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_with_cache(
    suite: &str,
    benchmarks: &[BenchmarkSpec],
    budgets_kbit: &[u64],
    families: &[String],
    instructions: u64,
    jobs: usize,
    cache: Option<&crate::cache::SimCache>,
    progress: &(dyn Fn(crate::engine::CellUpdate<'_>) + Sync),
) -> Result<SweepReport, ConfigError> {
    for (i, budget) in budgets_kbit.iter().enumerate() {
        if budgets_kbit[..i].contains(budget) {
            return Err(ConfigError::new(format!("duplicate budget {budget} Kbit")));
        }
    }
    for (i, family) in families.iter().enumerate() {
        if families[..i].contains(family) {
            return Err(ConfigError::new(format!("duplicate family `{family}`")));
        }
    }
    let mut specs = Vec::with_capacity(budgets_kbit.len() * families.len());
    for &budget in budgets_kbit {
        if budget == 0 {
            return Err(ConfigError::new("budgets must be positive Kbit values"));
        }
        for family in families {
            let config = solve_budget(family, budget * 1024)?;
            specs.push(PredictorSpec::new(
                format!("{family}@{budget}"),
                format!("budget sweep: {budget} Kbit target"),
                config,
            ));
        }
    }
    let grid = Engine::with_jobs(jobs)
        .with_strategy(GridStrategy::FusedColumns)
        .with_cache(cache.cloned())
        .run_grid_with_progress(&specs, benchmarks, instructions, progress);
    let rows = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let budget = budgets_kbit[i / families.len()];
            let family = families[i % families.len()].clone();
            SweepRow {
                family,
                budget_kbit: budget,
                storage_bits: spec.storage_bits(),
                config: spec.config.clone(),
                display: grid
                    .row(i)
                    .first()
                    .map_or_else(String::new, |cell| cell.predictor.clone()),
                mpki: grid.row(i).iter().map(|cell| cell.mpki()).collect(),
            }
        })
        .collect();
    Ok(SweepReport {
        suite: suite.to_owned(),
        instructions,
        budgets_kbit: budgets_kbit.to_vec(),
        families: families.to_vec(),
        benchmarks: benchmarks.iter().map(|b| b.name.clone()).collect(),
        rows,
    })
}

use bp_components::json_string as json_str;

/// Re-indents a serialized [`ConfigValue`] document so it nests inside
/// a larger JSON document at `indent` spaces.
fn indent_config(text: &str, indent: usize) -> String {
    let pad = " ".repeat(indent);
    text.trim_end()
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 0 {
                line.to_owned()
            } else {
                format!("{pad}{line}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

impl SweepReport {
    fn row(&self, budget_idx: usize, family_idx: usize) -> &SweepRow {
        &self.rows[budget_idx * self.families.len() + family_idx]
    }

    /// Renders the sweep as a deterministic JSON document (stable key
    /// order, fixed float precision, no timestamps), with every solved
    /// configuration embedded in the config-file format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"report\": \"bp-sweep\",");
        let _ = writeln!(out, "  \"suite\": {},", json_str(&self.suite));
        let _ = writeln!(out, "  \"instructions\": {},", self.instructions);
        let _ = writeln!(out, "  \"tolerance_pct\": {:.1},", BUDGET_TOLERANCE * 100.0);
        out.push_str("  \"budgets_kbit\": [");
        for (i, b) in self.budgets_kbit.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("],\n  \"families\": [");
        for (i, f) in self.families.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(f));
        }
        out.push_str("],\n  \"benchmarks\": [");
        for (i, b) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(b));
        }
        out.push_str("],\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"family\": {},", json_str(&row.family));
            let _ = writeln!(out, "      \"budget_kbit\": {},", row.budget_kbit);
            let _ = writeln!(out, "      \"target_bits\": {},", row.target_bits());
            let _ = writeln!(out, "      \"storage_bits\": {},", row.storage_bits);
            // No `+` sign here: JSON numbers may not carry one.
            let _ = writeln!(
                out,
                "      \"budget_error_pct\": {:.4},",
                row.budget_error() * 100.0
            );
            let _ = writeln!(out, "      \"display\": {},", json_str(&row.display));
            let _ = writeln!(out, "      \"mean_mpki\": {:.6},", row.mean_mpki());
            out.push_str("      \"mpki\": [");
            for (j, m) in row.mpki.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{m:.6}");
            }
            out.push_str("],\n");
            let _ = writeln!(
                out,
                "      \"config\": {}",
                indent_config(&row.config.to_text(), 6)
            );
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the sweep as deterministic Markdown: the MPKI-vs-budget
    /// matrix (the paper's "what does each component buy per bit"
    /// question), the exact-storage matrix, and a per-configuration
    /// detail table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Storage-budget sweep — `{}` suite", self.suite);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Deterministic output of `bp sweep {} --instr {}`: the same inputs produce a \
             byte-identical sweep (no timestamps, no wall-clock). Every configuration below \
             was produced by the budget solver and its **exact** `storage_items()` total lands \
             within {:.0}% of the target budget.",
            self.suite,
            self.instructions,
            BUDGET_TOLERANCE * 100.0
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "- benchmarks: {} × {} instructions each",
            self.benchmarks.len(),
            self.instructions
        );
        let _ = writeln!(
            out,
            "- budgets (Kbit): {}",
            self.budgets_kbit
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "- families: {}", self.families.join(", "));
        let _ = writeln!(out);

        let _ = writeln!(out, "## Mean MPKI by budget (lower is better)");
        let _ = writeln!(out);
        let mut header = String::from("| family |");
        let mut rule = String::from("|---|");
        for b in &self.budgets_kbit {
            let _ = write!(header, " {b} Kbit |");
            rule.push_str("---:|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for (f, family) in self.families.iter().enumerate() {
            let _ = write!(out, "| `{family}` |");
            for b in 0..self.budgets_kbit.len() {
                let _ = write!(out, " {:.3} |", self.row(b, f).mean_mpki());
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Exact storage of each solved configuration (Kbit)");
        let _ = writeln!(out);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for (f, family) in self.families.iter().enumerate() {
            let _ = write!(out, "| `{family}` |");
            for b in 0..self.budgets_kbit.len() {
                let row = self.row(b, f);
                let _ = write!(
                    out,
                    " {:.2} ({:+.2}%) |",
                    row.storage_bits as f64 / 1024.0,
                    row.budget_error() * 100.0
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Per-benchmark MPKI");
        let _ = writeln!(out);
        let mut header = String::from("| config | storage | mean |");
        let mut rule = String::from("|---|---:|---:|");
        for b in &self.benchmarks {
            let _ = write!(header, " {b} |");
            rule.push_str("---:|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = write!(
                out,
                "| `{}@{}` | {:.2} Kbit | {:.3} |",
                row.family,
                row.budget_kbit,
                row.storage_bits as f64 / 1024.0,
                row.mean_mpki()
            );
            for m in &row.mpki {
                let _ = write!(out, " {m:.3} |");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Parses a `--config` predictor file for `bp grid` / `bp report`:
///
/// ```json
/// {
///   "predictors": [
///     {"name": "my-tage", "paper_ref": "custom", "config": {"kind": "tage-sc", ...}}
///   ]
/// }
/// ```
///
/// `paper_ref` is optional (defaults to `"config file"`); each `config`
/// is the [`RegistryConfig`] format. Every configuration is validated.
pub fn parse_predictor_file(text: &str) -> Result<Vec<PredictorSpec>, ConfigError> {
    let doc = ConfigValue::parse(text)?;
    doc.expect_keys("config file", &["predictors"])?;
    let entries = doc.req("predictors")?.as_list("predictors")?;
    if entries.is_empty() {
        return Err(ConfigError::new("config file lists no predictors"));
    }
    let mut specs = Vec::with_capacity(entries.len());
    for entry in entries {
        entry.expect_keys("predictor entry", &["name", "paper_ref", "config"])?;
        let name = entry.req("name")?.as_str("name")?.to_owned();
        let paper_ref = match entry.get("paper_ref") {
            Some(v) => v.as_str("paper_ref")?.to_owned(),
            None => "config file".to_owned(),
        };
        let config = RegistryConfig::from_value(entry.req("config")?)?;
        PredictorConfig::validate(&config)
            .map_err(|e| ConfigError::new(format!("predictor `{name}`: {e}")))?;
        if specs.iter().any(|s: &PredictorSpec| s.name == name) {
            return Err(ConfigError::new(format!(
                "duplicate predictor name `{name}`"
            )));
        }
        specs.push(PredictorSpec::new(name, paper_ref, config));
    }
    Ok(specs)
}

/// Parsed `bp sweep --config` parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepFileConfig {
    /// Budgets in Kbit (`None` = the standard ladder).
    pub budgets_kbit: Option<Vec<u64>>,
    /// Families to sweep (`None` = [`SWEEP_FAMILIES`]).
    pub families: Option<Vec<String>>,
}

/// Parses a `bp sweep --config` file:
///
/// ```json
/// {"budgets_kbit": [64, 256], "families": ["gehl", "tage-sc-l+imli"]}
/// ```
///
/// Both fields are optional; family names are checked against the
/// solver's [`SWEEP_FAMILIES`] set.
pub fn parse_sweep_file(text: &str) -> Result<SweepFileConfig, ConfigError> {
    let doc = ConfigValue::parse(text)?;
    doc.expect_keys("sweep config file", &["budgets_kbit", "families"])?;
    let budgets_kbit = doc
        .get("budgets_kbit")
        .map(|v| -> Result<Vec<u64>, ConfigError> {
            v.as_list("budgets_kbit")?
                .iter()
                .map(|b| b.as_u64("budgets_kbit"))
                .collect()
        })
        .transpose()?;
    let families = doc
        .get("families")
        .map(|v| -> Result<Vec<String>, ConfigError> {
            v.as_list("families")?
                .iter()
                .map(|f| f.as_str("families").map(str::to_owned))
                .collect()
        })
        .transpose()?;
    if let Some(families) = &families {
        for family in families {
            if !SWEEP_FAMILIES.contains(&family.as_str()) {
                return Err(ConfigError::new(format!(
                    "unknown sweep family `{family}` (available: {})",
                    SWEEP_FAMILIES.join(", ")
                )));
            }
        }
    }
    Ok(SweepFileConfig {
        budgets_kbit,
        families,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workloads::paper_suite;

    #[test]
    fn solver_hits_every_standard_budget_for_every_family() {
        for family in SWEEP_FAMILIES {
            for kbit in STANDARD_BUDGETS_KBIT {
                let target = kbit * 1024;
                let config =
                    solve_budget(family, target).unwrap_or_else(|e| panic!("{family}@{kbit}: {e}"));
                let bits = config.storage_bits_estimate();
                let error = (bits as f64 - target as f64).abs() / target as f64;
                assert!(
                    error <= BUDGET_TOLERANCE,
                    "{family}@{kbit}: {bits} bits is {:.2}% off",
                    error * 100.0
                );
            }
        }
    }

    #[test]
    fn solver_estimate_matches_built_storage_exactly() {
        for family in SWEEP_FAMILIES {
            for kbit in [8, 64, 256] {
                let config = solve_budget(family, kbit * 1024).expect("solvable");
                assert_eq!(
                    config.storage_bits_estimate(),
                    config.build().storage_bits(),
                    "{family}@{kbit}"
                );
            }
        }
    }

    #[test]
    fn solver_is_monotone_in_budget() {
        for family in SWEEP_FAMILIES {
            let mut last = 0u64;
            for kbit in STANDARD_BUDGETS_KBIT {
                let bits = solve_budget(family, kbit * 1024)
                    .expect("solvable")
                    .storage_bits_estimate();
                assert!(
                    bits >= last,
                    "{family}: storage shrank from {last} to {bits} at {kbit} Kbit"
                );
                last = bits;
            }
        }
    }

    #[test]
    fn solver_rejects_unknown_families() {
        let err = solve_budget("nope", 64 * 1024).unwrap_err();
        assert!(err.to_string().contains("unknown sweep family"));
        assert!(err.to_string().contains("tage-sc-l+imli"));
    }

    #[test]
    fn sweep_report_is_deterministic_and_well_formed() {
        let benchmarks: Vec<BenchmarkSpec> = paper_suite().into_iter().take(2).collect();
        let families: Vec<String> = vec!["bimodal".to_owned(), "gshare".to_owned()];
        let run = |jobs| {
            run_sweep(
                "test",
                &benchmarks,
                &[16, 64],
                &families,
                20_000,
                jobs,
                &|_| {},
            )
            .expect("sweep runs")
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.to_json(), b.to_json(), "sweep must not depend on jobs");
        assert_eq!(a.to_markdown(), b.to_markdown());
        assert_eq!(a.rows.len(), 4);
        for row in &a.rows {
            assert_eq!(row.mpki.len(), 2);
            assert!(row.budget_error().abs() <= BUDGET_TOLERANCE);
            assert!(!row.display.is_empty());
        }
        let md = a.to_markdown();
        assert!(md.contains("## Mean MPKI by budget"));
        assert!(md.contains("`bimodal@16`"));
        let json = a.to_json();
        assert!(json.contains("\"report\": \"bp-sweep\""));
        assert!(json.contains("\"budget_error_pct\""));
        assert!(json.ends_with("}\n"));
        // Embedded configs re-parse.
        for row in &a.rows {
            let text = row.config.to_text();
            RegistryConfig::from_text(&text).expect("embedded config re-parses");
        }
    }

    #[test]
    fn sweep_rejects_duplicate_budgets_and_families() {
        let benchmarks: Vec<BenchmarkSpec> = paper_suite().into_iter().take(1).collect();
        let families: Vec<String> = vec!["bimodal".to_owned(), "bimodal".to_owned()];
        let err = run_sweep("test", &benchmarks, &[16], &families, 1_000, 1, &|_| {}).unwrap_err();
        assert!(err.to_string().contains("duplicate family"), "{err}");
        let families = vec!["bimodal".to_owned()];
        let err =
            run_sweep("test", &benchmarks, &[16, 16], &families, 1_000, 1, &|_| {}).unwrap_err();
        assert!(err.to_string().contains("duplicate budget"), "{err}");
    }

    #[test]
    fn predictor_file_round_trip() {
        let spec = crate::registry::lookup("tage-gsc+imli").expect("registered");
        let mut file = String::from("{\"predictors\": [\n  {\"name\": \"custom\", \"config\": ");
        file.push_str(spec.config.to_text().trim_end());
        file.push_str("}\n]}\n");
        let specs = parse_predictor_file(&file).expect("parses");
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "custom");
        assert_eq!(specs[0].paper_ref, "config file");
        assert_eq!(specs[0].make().name(), "TAGE-GSC+IMLI");
        assert!(parse_predictor_file("{\"predictors\": []}").is_err());
        assert!(parse_predictor_file("{\"preds\": []}").is_err());
    }

    #[test]
    fn sweep_file_parses_and_validates() {
        let parsed = parse_sweep_file("{\"budgets_kbit\": [64, 256], \"families\": [\"gehl\"]}")
            .expect("parses");
        assert_eq!(parsed.budgets_kbit, Some(vec![64, 256]));
        assert_eq!(parsed.families, Some(vec!["gehl".to_owned()]));
        assert_eq!(
            parse_sweep_file("{}").expect("empty ok"),
            SweepFileConfig::default()
        );
        assert!(parse_sweep_file("{\"families\": [\"zap\"]}").is_err());
    }
}
