//! Fixed-width text tables for the experiment binaries.

use std::fmt;

/// A simple column-aligned text table, used by the `exp_*` binaries to
/// print rows in the same layout as the paper's tables.
///
/// ```
/// use bp_sim::TextTable;
/// let mut t = TextTable::new(vec!["config", "CBP4", "CBP3"]);
/// t.row(vec!["TAGE-GSC".into(), "2.473".into(), "3.902".into()]);
/// let s = t.to_string();
/// assert!(s.contains("TAGE-GSC"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                if i + 1 == widths.len() {
                    writeln!(f, "{cell:<width$}")?;
                } else {
                    write!(f, "{cell:<width$}  ")?;
                }
            }
            Ok(())
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "mpki"]);
        t.row(vec!["short".into(), "1.0".into()]);
        t.row(vec!["a-much-longer-name".into(), "12.345".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All mpki cells start at the same column.
        let col = lines[0].find("mpki").unwrap();
        assert_eq!(lines[2].find("1.0").unwrap(), col);
        assert_eq!(lines[3].find("12.345").unwrap(), col);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_render_empty_cells() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.to_string().contains('x'));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn rejects_oversized_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_headers() {
        let _ = TextTable::new(Vec::<String>::new());
    }
}
