//! The wormhole (WH) side predictor (Albericio, San Miguel, Enright
//! Jerger, Moshovos; MICRO 2014), as characterized in §2.2.2 and §3.3 of
//! the IMLI paper.
//!
//! WH targets branches encapsulated in multidimensional loops whose
//! outcome correlates with the *same branch in neighbouring inner
//! iterations of the previous outer iteration*: `Out[N][M]` vs
//! `Out[N-1][M+D]` for small `D`. It keeps a long per-entry local history
//! and, knowing the inner loop's constant trip count `Ni` (from a loop
//! predictor), retrieves the bits `Ni-1±1` positions back — precisely the
//! previous-outer-iteration neighbourhood — to index a small array of
//! confidence counters.
//!
//! The IMLI paper's point (reproduced by this crate's tests and the
//! workspace benchmarks): WH works only for loops with *constant* trip
//! counts and branches executed on *every* iteration, and its speculative
//! state (long per-branch local histories) is prohibitively expensive,
//! while IMLI-OH captures the same correlation with a 26-bit checkpoint.

#![warn(missing_docs)]

mod predictor;
mod wrapper;

pub use predictor::{Wormhole, WormholeConfig, WormholePrediction};
pub use wrapper::WormholeAugmented;
