//! The tagged wormhole entry array.

use bp_components::{pc_bits, ConfigError, ConfigValue, SaturatingCounter};

/// Configuration of the [`Wormhole`] predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormholeConfig {
    /// Number of fully-associative entries (the CBP4 design used 7).
    pub entries: usize,
    /// Tag bits per entry.
    pub tag_bits: usize,
    /// Local history bits kept per entry.
    pub history_bits: usize,
    /// Width of the confidence counters.
    pub counter_bits: usize,
    /// Confidence (distance from the weak states) required before WH
    /// overrides the main prediction.
    pub confidence_threshold: u8,
}

impl Default for WormholeConfig {
    /// The CBP4-like design: 7 entries, 128-bit local histories, 3-bit
    /// counters.
    fn default() -> Self {
        WormholeConfig {
            entries: 7,
            tag_bits: 14,
            history_bits: 128,
            counter_bits: 3,
            confidence_threshold: 2,
        }
    }
}

impl WormholeConfig {
    /// Checks the geometry, returning the first violation (the
    /// non-panicking twin of the constructor's assertions).
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(1..=1 << 20).contains(&self.entries) {
            return Err("entries must be in 1..=2^20".into());
        }
        if !(3..=128).contains(&self.history_bits) {
            return Err("history bits must be in 3..=128".into());
        }
        if !(1..=31).contains(&self.tag_bits) {
            return Err("tag bits must be in 1..=31".into());
        }
        if !(1..=7).contains(&self.counter_bits) {
            return Err("counter width must be in 1..=7".into());
        }
        // A counter_bits-wide saturating counter's confidence tops out
        // at 2^(counter_bits-1) - 1; a threshold above that would make
        // the side predictor silently inert.
        let max_confidence = (1u8 << (self.counter_bits - 1)) - 1;
        if self.confidence_threshold > max_confidence {
            return Err(format!(
                "confidence_threshold {} is unreachable for a {}-bit counter (max {})",
                self.confidence_threshold, self.counter_bits, max_confidence
            )
            .into());
        }
        Ok(())
    }

    /// Exact storage in bits of the built [`Wormhole`]
    /// (`entries × (tag + valid + history + 8 counters + age)` — the
    /// same formula as [`Wormhole::storage_bits`]).
    pub fn storage_bits(&self) -> u64 {
        let per_entry =
            self.tag_bits as u64 + 1 + self.history_bits as u64 + 8 * self.counter_bits as u64 + 8;
        self.entries as u64 * per_entry
    }

    /// Serializes as a [`ConfigValue`] object.
    pub fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("entries", ConfigValue::int(self.entries))
            .set("tag_bits", ConfigValue::int(self.tag_bits))
            .set("history_bits", ConfigValue::int(self.history_bits))
            .set("counter_bits", ConfigValue::int(self.counter_bits))
            .set(
                "confidence_threshold",
                ConfigValue::int(self.confidence_threshold),
            )
    }

    /// Parses from a [`ConfigValue`] object (strict keys).
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "wormhole config",
            &[
                "entries",
                "tag_bits",
                "history_bits",
                "counter_bits",
                "confidence_threshold",
            ],
        )?;
        Ok(WormholeConfig {
            entries: value.req("entries")?.as_usize("entries")?,
            tag_bits: value.req("tag_bits")?.as_usize("tag_bits")?,
            history_bits: value.req("history_bits")?.as_usize("history_bits")?,
            counter_bits: value.req("counter_bits")?.as_usize("counter_bits")?,
            confidence_threshold: value
                .req("confidence_threshold")?
                .as_u8("confidence_threshold")?,
        })
    }
}

/// One wormhole prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormholePrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether confidence is high enough to override the main predictor.
    pub confident: bool,
}

#[derive(Debug, Clone)]
struct WhEntry {
    tag: u32,
    valid: bool,
    history: u128,
    counters: Vec<SaturatingCounter>,
    /// Meta counter gating overrides: trained on disagreements with the
    /// main predictor, so WH only subsumes once it has proven better for
    /// this branch (the paper's "subsumes the main prediction only in
    /// the case of high confidence").
    meta: SaturatingCounter,
    age: u8,
    /// Cached (counter index, WH direction, main direction) between
    /// predict and update.
    pending: Option<(usize, bool, bool)>,
}

impl WhEntry {
    fn new(counter_bits: usize) -> Self {
        WhEntry {
            tag: 0,
            valid: false,
            history: 0,
            counters: vec![SaturatingCounter::new(counter_bits); 8],
            meta: SaturatingCounter::new_weak(4, false),
            age: 0,
            pending: None,
        }
    }
}

/// The wormhole side predictor: a handful of tagged entries, each holding
/// a long local history of one hard multidimensional-loop branch and a
/// small array of confidence counters indexed by the previous-outer-
/// iteration neighbourhood bits.
#[derive(Debug, Clone)]
pub struct Wormhole {
    config: WormholeConfig,
    entries: Vec<WhEntry>,
}

impl Wormhole {
    /// Builds the predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0, `history_bits` exceeds 128, or
    /// `counter_bits` is outside `1..=7`.
    pub fn new(config: WormholeConfig) -> Self {
        assert!(config.entries > 0, "need at least one entry");
        assert!(
            (3..=128).contains(&config.history_bits),
            "history bits must be in 3..=128"
        );
        Wormhole {
            entries: (0..config.entries)
                .map(|_| WhEntry::new(config.counter_bits))
                .collect(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WormholeConfig {
        &self.config
    }

    #[inline]
    fn tag(&self, pc: u64) -> u32 {
        (pc_bits(pc) as u32) & ((1u32 << self.config.tag_bits) - 1)
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let tag = self.tag(pc);
        self.entries.iter().position(|e| e.valid && e.tag == tag)
    }

    /// Extracts the 3-bit neighbourhood `{Out[N-1][M+1], Out[N-1][M],
    /// Out[N-1][M-1]}` from a local history, given the inner trip count.
    ///
    /// Bit `k` of the history is the outcome `k+1` occurrences ago, so
    /// with one occurrence per inner iteration, `Out[N-1][M]` sits at bit
    /// `trip - 1`.
    #[inline]
    fn neighbourhood(history: u128, trip: u32) -> Option<usize> {
        let base = trip.checked_sub(2)?; // Out[N-1][M+1] at trip-2
        if base + 2 >= 128 {
            return None;
        }
        Some(((history >> base) & 0b111) as usize)
    }

    /// Predicts `pc` given the loop predictor's constant trip count for
    /// the current inner loop (None = no regular loop detected → no
    /// prediction) and the main predictor's direction (for the
    /// meta-gating that decides whether WH may override). Caches the
    /// lookup for the matching [`Wormhole::update`].
    pub fn predict(
        &mut self,
        pc: u64,
        trip_count: Option<u32>,
        main_pred: bool,
    ) -> Option<WormholePrediction> {
        let slot = self.find(pc)?;
        let trip = trip_count?;
        let entry = &mut self.entries[slot];
        let idx = Self::neighbourhood(entry.history, trip)?;
        let c = &entry.counters[idx];
        let taken = c.is_taken();
        entry.pending = Some((idx, taken, main_pred));
        Some(WormholePrediction {
            taken,
            confident: c.confidence() >= self.config.confidence_threshold && entry.meta.is_taken(),
        })
    }

    /// Trains with the resolved outcome. `allocate` should be true when
    /// the overall prediction was wrong and the branch sits in a regular
    /// loop (`trip_count` known) — the paper's allocation rule.
    pub fn update(&mut self, pc: u64, taken: bool, allocate: bool, trip_count: Option<u32>) {
        if let Some(slot) = self.find(pc) {
            let entry = &mut self.entries[slot];
            if let Some((idx, wh_pred, main_pred)) = entry.pending.take() {
                let was_correct = wh_pred == taken;
                let was_confident =
                    entry.counters[idx].confidence() >= self.config.confidence_threshold;
                entry.counters[idx].train(taken);
                if wh_pred != main_pred {
                    // A disagreement decides whether WH has earned the
                    // right to override this branch.
                    entry.meta.train(was_correct);
                }
                if was_confident {
                    entry.age = if was_correct {
                        entry.age.saturating_add(1)
                    } else {
                        entry.age.saturating_sub(1)
                    };
                }
            }
            // Shift the outcome into the long local history.
            entry.history = (entry.history << 1) | u128::from(taken);
            if self.config.history_bits < 128 {
                entry.history &= (1u128 << self.config.history_bits) - 1;
            }
        } else if allocate && trip_count.is_some() {
            // Victim: invalid entry, else minimum age.
            let victim = (0..self.entries.len())
                .min_by_key(|&i| {
                    let e = &self.entries[i];
                    (u32::from(e.valid) << 16) + u32::from(e.age)
                })
                .expect("at least one entry");
            let tag = self.tag(pc);
            let counter_bits = self.config.counter_bits;
            let e = &mut self.entries[victim];
            if e.valid && e.age > 0 {
                e.age -= 1;
            } else {
                *e = WhEntry::new(counter_bits);
                e.tag = tag;
                e.valid = true;
                e.age = 2;
                e.history = u128::from(taken);
            }
        }
    }

    /// Number of live entries (for tests and occupancy stats).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Storage in bits: per entry, tag + valid + long local history + 8
    /// counters + age.
    pub fn storage_bits(&self) -> u64 {
        let per_entry = self.config.tag_bits as u64
            + 1
            + self.config.history_bits as u64
            + 8 * self.config.counter_bits as u64
            + 8;
        self.entries.len() as u64 * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one branch through `outer` outer iterations of an
    /// `trip`-iteration inner loop, with outcome = `pattern[m + shift*n]`
    /// (a diagonal correlation when `shift == 1`).
    fn run_diagonal(wh: &mut Wormhole, trip: u32, outer: usize, shift: usize) -> f64 {
        let pc = 0x4040;
        let mut pattern: Vec<bool> = (0..trip as usize + outer * shift + 2)
            .map(|i| (i * 31) % 7 < 3)
            .collect();
        pattern[0] = true;
        let mut correct = 0usize;
        let mut counted = 0usize;
        for n in 0..outer {
            for m in 0..trip as usize {
                let taken = pattern[m + shift * n];
                let pred = wh.predict(pc, Some(trip), false);
                if n > outer / 2 {
                    if let Some(p) = pred {
                        if p.confident {
                            counted += 1;
                            correct += usize::from(p.taken == taken);
                        }
                    }
                }
                // Allocate on "mispredict" (always allow in this harness).
                wh.update(pc, taken, true, Some(trip));
            }
        }
        if counted == 0 {
            return 0.0;
        }
        correct as f64 / counted as f64
    }

    #[test]
    fn captures_diagonal_correlation() {
        let mut wh = Wormhole::new(WormholeConfig::default());
        let acc = run_diagonal(&mut wh, 20, 200, 1);
        assert!(acc > 0.9, "diagonal accuracy {acc:.3}");
        assert_eq!(wh.occupancy(), 1);
    }

    #[test]
    fn captures_repeating_outer_pattern() {
        // shift == 0: Out[N][M] == Out[N-1][M], also in WH's reach.
        let mut wh = Wormhole::new(WormholeConfig::default());
        let acc = run_diagonal(&mut wh, 16, 200, 0);
        assert!(acc > 0.9, "same-iteration accuracy {acc:.3}");
    }

    #[test]
    fn no_prediction_without_trip_count() {
        let mut wh = Wormhole::new(WormholeConfig::default());
        wh.update(0x40, true, true, Some(8));
        assert!(wh.predict(0x40, None, false).is_none());
        // And no allocation without a regular loop.
        wh.update(0x80, true, true, None);
        assert_eq!(wh.occupancy(), 1);
    }

    #[test]
    fn trip_count_too_long_for_history_gives_no_prediction() {
        let mut wh = Wormhole::new(WormholeConfig::default());
        wh.update(0x40, true, true, Some(8));
        assert!(wh.predict(0x40, Some(500), false).is_none());
        assert!(
            wh.predict(0x40, Some(1), false).is_none(),
            "trip-1 underflows"
        );
    }

    #[test]
    fn capacity_is_bounded_with_age_replacement() {
        let mut wh = Wormhole::new(WormholeConfig::default());
        for b in 0..20u64 {
            let pc = 0x1000 + b * 4;
            for _ in 0..4 {
                wh.update(pc, true, true, Some(8));
            }
        }
        assert!(wh.occupancy() <= 7);
    }

    #[test]
    fn storage_matches_cbp4_scale() {
        let wh = Wormhole::new(WormholeConfig::default());
        // 7 × (14 + 1 + 128 + 24 + 8) = 7 × 175 = 1225 bits ≈ 153 bytes.
        assert_eq!(wh.storage_bits(), 7 * 175);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_entries() {
        let _ = Wormhole::new(WormholeConfig {
            entries: 0,
            ..WormholeConfig::default()
        });
    }
}
