//! Bolting the wormhole side predictor onto a main predictor.

use crate::predictor::{Wormhole, WormholeConfig};
use bp_components::{
    ConditionalPredictor, ConfidenceBucket, LoopPredictor, LoopPredictorConfig,
    PredictionAttribution, ProviderComponent, StorageBudget, StorageItem,
};
use bp_trace::BranchRecord;

/// A main predictor augmented with the wormhole side predictor, as in the
/// paper's §3.3 evaluation (TAGE-GSC+WH, GEHL+WH).
///
/// The wrapper owns a loop predictor used *only* to learn inner-loop trip
/// counts (the paper isolates WH the same way: "the loop predictor
/// outcome was not used for prediction but only for determining this
/// number of iterations"). The current inner loop is identified by the
/// most recent backward conditional branch, and a confident WH prediction
/// subsumes the main prediction.
pub struct WormholeAugmented<P> {
    main: P,
    wormhole: Wormhole,
    loops: LoopPredictor,
    last_backward_pc: Option<u64>,
    last_pred: bool,
    last_trip: Option<u32>,
    name: String,
}

impl<P: ConditionalPredictor> WormholeAugmented<P> {
    /// Wraps `main` with a default-geometry wormhole predictor.
    pub fn new(main: P) -> Self {
        Self::with_config(main, WormholeConfig::default())
    }

    /// Wraps `main` with an explicit wormhole geometry.
    pub fn with_config(main: P, config: WormholeConfig) -> Self {
        let name = format!("{}+WH", main.name());
        WormholeAugmented {
            main,
            wormhole: Wormhole::new(config),
            loops: LoopPredictor::new(LoopPredictorConfig::default()),
            last_backward_pc: None,
            last_pred: false,
            last_trip: None,
            name,
        }
    }

    /// The wrapped main predictor.
    pub fn main(&self) -> &P {
        &self.main
    }

    /// The wormhole side predictor.
    pub fn wormhole(&self) -> &Wormhole {
        &self.wormhole
    }

    /// Occurrences of a body branch per outer iteration of the loop the
    /// fetch engine is currently inside. The loop predictor counts the
    /// *taken* occurrences of the loop-closing branch; the body executes
    /// once more (the exit iteration), hence the `+ 1`.
    fn current_trip(&self) -> Option<u32> {
        Some(self.loops.trip_count(self.last_backward_pc?)? + 1)
    }

    /// The shared prediction path behind both [`predict`] and
    /// [`predict_attributed`] — one flow, so they can never diverge.
    /// The wrapped main predictor is driven through its own attributed
    /// path, which it guarantees identical to its plain path.
    ///
    /// [`predict`]: ConditionalPredictor::predict
    /// [`predict_attributed`]: ConditionalPredictor::predict_attributed
    #[inline]
    fn predict_full(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let (main_pred, main_attr) = self.main.predict_attributed(pc);
        let trip = self.current_trip();
        self.last_trip = trip;
        let (pred, attribution) = match self.wormhole.predict(pc, trip, main_pred) {
            // A confident wormhole hit subsumes the main prediction,
            // which becomes the alternate.
            Some(wh) if wh.confident => (
                wh.taken,
                PredictionAttribution::new(
                    ProviderComponent::Wormhole,
                    Some(main_pred),
                    ConfidenceBucket::High,
                ),
            ),
            _ => (main_pred, main_attr),
        };
        self.last_pred = pred;
        (pred, attribution)
    }
}

impl<P: ConditionalPredictor> ConditionalPredictor for WormholeAugmented<P> {
    fn predict(&mut self, pc: u64) -> bool {
        self.predict_full(pc).0
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        self.predict_full(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        let mispredicted = self.last_pred != record.taken;
        self.wormhole
            .update(record.pc, record.taken, mispredicted, self.last_trip);
        // The loop predictor learns trip counts of every regular loop;
        // it trains on loop-closing (backward) branches.
        if record.is_backward() {
            self.loops.update(record.pc, record.taken, true);
            self.last_backward_pc = Some(record.pc);
        }
        self.main.update(record);
    }

    fn flush_history(&mut self) {
        // The wormhole/loop structures are learned per-branch tables
        // (trip counts, inner-history patterns), which survive a
        // partial flush like any other SRAM content; only the wrapped
        // predictor's history state and the fetch-local "which backward
        // branch ran last" register are erased.
        self.last_backward_pc = None;
        self.main.flush_history();
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        self.main.notify_nonconditional(record);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<P: ConditionalPredictor> StorageBudget for WormholeAugmented<P> {
    fn storage_items(&self) -> Vec<StorageItem> {
        let mut items = self.main.storage_items();
        items.push(StorageItem::new("wormhole", self.wormhole.storage_bits()));
        items.push(StorageItem::new("wh-loop", self.loops.storage_bits()));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_components::AlwaysTaken;

    /// A 2-D nest whose body branch follows Out[N][M] = Out[N-1][M-1].
    /// The main predictor (AlwaysTaken) is useless; WH must pick it up.
    #[test]
    fn wormhole_rescues_diagonal_branch_over_weak_main() {
        let mut p = WormholeAugmented::new(AlwaysTaken);
        let body = 0x4008u64;
        let back = 0x4010u64;
        let trip = 24usize;
        let outer = 400usize;
        let mut pattern: Vec<bool> = (0..trip + outer + 2).map(|i| (i * 13) % 5 < 2).collect();
        pattern[0] = false;
        let mut correct = 0usize;
        let mut counted = 0usize;
        for n in 0..outer {
            for m in 0..trip {
                let taken = pattern[m + (outer - n)]; // diagonal shift by -1
                let pred = p.predict(body);
                if n > outer / 2 {
                    counted += 1;
                    correct += usize::from(pred == taken);
                }
                p.update(&BranchRecord::conditional(body, body + 0x40, taken));
                let bt = m + 1 < trip;
                let bp = p.predict(back);
                let _ = bp;
                p.update(&BranchRecord::conditional(back, 0x4000, bt));
            }
        }
        let acc = correct as f64 / counted as f64;
        assert!(acc > 0.85, "WH should fix the diagonal branch: {acc:.3}");
    }

    #[test]
    fn variable_trip_count_defeats_wormhole() {
        // The paper's structural limitation (§2.2.2): if the trip count
        // varies, the loop predictor rarely reports a stable `Ni`, the
        // retrieved history bits are misaligned, and WH provides no
        // rescue — accuracy stays at the weak main predictor's level.
        // (IMLI-SIC handles exactly this workload; see bp-gehl's tests.)
        let mut p = WormholeAugmented::new(AlwaysTaken);
        let body = 0x4008u64;
        let back = 0x4010u64;
        let mut rng = 77u64;
        let mut correct = 0usize;
        let mut counted = 0usize;
        let mut outer = 0usize;
        for _ in 0..300 {
            outer += 1;
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let trip = 8 + (rng % 16) as usize;
            for m in 0..trip {
                let taken = m % 2 == 0;
                let pred = p.predict(body);
                if outer > 150 {
                    counted += 1;
                    correct += usize::from(pred == taken);
                }
                p.update(&BranchRecord::conditional(body, body + 0x40, taken));
                let bt = m + 1 < trip;
                let _ = p.predict(back);
                p.update(&BranchRecord::conditional(back, 0x4000, bt));
            }
        }
        let acc = correct as f64 / counted as f64;
        assert!(
            acc < 0.7,
            "WH must not rescue a variable-trip loop (got {acc:.3}); \
             compare with > 0.85 on the constant-trip diagonal"
        );
    }

    #[test]
    fn name_and_storage_compose() {
        let p = WormholeAugmented::new(AlwaysTaken);
        assert_eq!(p.name(), "always-taken+WH");
        assert!(p.storage_bits() > 0);
        assert_eq!(p.main().storage_bits(), 0);
    }
}
