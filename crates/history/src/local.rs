//! Per-branch (local) direction histories.

/// A table of per-static-branch direction histories.
///
/// Each entry holds the last `width` outcomes of the branches that map to
/// it (newest outcome in bit 0). This is the structure whose *speculative*
/// management the paper argues is prohibitively complex in hardware
/// (§2.3.2): distinct in-flight occurrences of the same static branch need
/// an associative search over the instruction window. The trace-driven
/// simulator updates it at "commit" (immediately), which is the standard
/// CBP idealization.
///
/// ```
/// use bp_history::LocalHistoryTable;
/// let mut t = LocalHistoryTable::new(256, 10);
/// t.update(0x4000, true);
/// t.update(0x4000, false);
/// assert_eq!(t.history(0x4000), 0b10); // newest outcome in bit 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHistoryTable {
    entries: Vec<u32>,
    mask: u64,
    width: u8,
}

impl LocalHistoryTable {
    /// Creates a table of `entries` local histories of `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or `width` is 0 or
    /// greater than 32.
    pub fn new(entries: usize, width: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entry count must be a power of two"
        );
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        LocalHistoryTable {
            entries: vec![0; entries],
            mask: entries as u64 - 1,
            width: width as u8,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the table has no entries (never: the
    /// constructor enforces a positive power of two).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// History width in bits.
    pub fn width(&self) -> usize {
        usize::from(self.width)
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        // Drop alignment bits; XOR-fold some higher bits for dispersion.
        (((pc >> 2) ^ (pc >> 14)) & self.mask) as usize
    }

    /// The local history for `pc` (newest outcome in bit 0).
    #[inline]
    pub fn history(&self, pc: u64) -> u32 {
        self.entries[self.index(pc)]
    }

    /// Shifts `taken` into the history for `pc`.
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let mask = ((1u64 << self.width) - 1) as u32;
        self.entries[idx] = ((self.entries[idx] << 1) | u32::from(taken)) & mask;
    }

    /// Erases every per-branch history (a context-switch flush): all
    /// entries read back as 0, exactly as after construction.
    pub fn clear(&mut self) {
        self.entries.fill(0);
    }

    /// Storage cost in bits.
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * u64::from(self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histories_are_per_entry() {
        let mut t = LocalHistoryTable::new(64, 8);
        t.update(0x100, true);
        t.update(0x2040, false); // different entry
        assert_eq!(t.history(0x100) & 1, 1);
    }

    #[test]
    fn width_masks_history() {
        let mut t = LocalHistoryTable::new(16, 4);
        for _ in 0..10 {
            t.update(0x8, true);
        }
        assert_eq!(t.history(0x8), 0b1111);
        assert_eq!(t.width(), 4);
    }

    #[test]
    fn storage_accounting() {
        let t = LocalHistoryTable::new(256, 24);
        assert_eq!(t.storage_bits(), 256 * 24);
        assert_eq!(t.len(), 256);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_entries() {
        let _ = LocalHistoryTable::new(100, 8);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        let _ = LocalHistoryTable::new(64, 0);
    }

    #[test]
    fn clear_resets_every_entry() {
        let mut t = LocalHistoryTable::new(64, 8);
        for pc in [0x100u64, 0x2040, 0x7777] {
            t.update(pc, true);
        }
        t.clear();
        for pc in [0x100u64, 0x2040, 0x7777] {
            assert_eq!(t.history(pc), 0);
        }
    }

    #[test]
    fn full_width_is_supported() {
        let mut t = LocalHistoryTable::new(2, 32);
        for _ in 0..40 {
            t.update(0, true);
        }
        assert_eq!(t.history(0), u32::MAX);
    }
}
