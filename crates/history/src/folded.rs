//! Incrementally folded history (the TAGE "circular shift register").

/// A history segment of `original_len` bits folded down to
/// `compressed_len` bits, maintained incrementally in O(1) per branch.
///
/// This is the standard TAGE circular-shift-register construction: on each
/// new outcome the fold is rotated by one, the inserted bit is XORed in at
/// position 0 and the evicted bit (the outcome `original_len` branches ago)
/// is XORed out at `original_len % compressed_len`.
///
/// [`FoldedHistory::fold_naive`] recomputes the same value from scratch and
/// is used by the property tests to prove the incremental update correct.
///
/// ```
/// use bp_history::FoldedHistory;
/// let mut f = FoldedHistory::new(10, 4);
/// f.update(true, false);
/// assert_eq!(f.value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoldedHistory {
    comp: u32,
    original_len: u16,
    compressed_len: u8,
    outpoint: u8,
}

impl FoldedHistory {
    /// Creates a fold of `original_len` history bits into
    /// `compressed_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_len` is 0 or larger than 32, or if
    /// `original_len` is 0.
    pub fn new(original_len: usize, compressed_len: usize) -> Self {
        assert!(original_len > 0, "original length must be positive");
        assert!(
            (1..=32).contains(&compressed_len),
            "compressed length must be in 1..=32, got {compressed_len}"
        );
        FoldedHistory {
            comp: 0,
            original_len: original_len as u16,
            compressed_len: compressed_len as u8,
            outpoint: (original_len % compressed_len) as u8,
        }
    }

    /// The current folded value (fits in `compressed_len` bits).
    #[inline]
    pub fn value(&self) -> u32 {
        self.comp
    }

    /// Length of the history segment being folded.
    pub fn original_len(&self) -> usize {
        usize::from(self.original_len)
    }

    /// Width of the fold.
    pub fn compressed_len(&self) -> usize {
        usize::from(self.compressed_len)
    }

    /// Incremental update: `inserted` is the newest outcome, `evicted` is
    /// the outcome that just aged past `original_len`.
    #[inline]
    pub fn update(&mut self, inserted: bool, evicted: bool) {
        let clen = u32::from(self.compressed_len);
        let mask = ((1u64 << clen) - 1) as u32;
        let wide = (u64::from(self.comp) << 1) | u64::from(inserted);
        let mut comp = (wide ^ (wide >> clen)) as u32 & mask;
        comp ^= u32::from(evicted) << self.outpoint;
        self.comp = comp & mask;
    }

    /// Resets the fold to the all-zero (empty-history) state.
    pub fn clear(&mut self) {
        self.comp = 0;
    }

    /// Overwrites the folded value (used when restoring a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `compressed_len` bits.
    pub fn set_value(&mut self, value: u32) {
        // The escape hatch must short-circuit *before* the shift: for a
        // 32-bit fold `1u32 << 32` is itself shift overflow.
        assert!(
            self.compressed_len == 32 || value < (1u32 << self.compressed_len),
            "value wider than fold"
        );
        self.comp = value;
    }

    /// Reference implementation: folds the `original_len` most recent bits
    /// of `history` (where `history(age)` returns the outcome `age`
    /// branches ago) from scratch.
    ///
    /// The incremental register inserts each outcome at position 0 and
    /// rotates it left once per subsequent outcome, evicting it (an XOR at
    /// `original_len % compressed_len`) when it ages past the segment. The
    /// closed form is therefore the XOR of every live bit shifted by its
    /// age modulo the fold width. Used by property tests to prove the O(1)
    /// update correct.
    pub fn fold_naive(&self, history: impl Fn(usize) -> bool) -> u32 {
        let clen = usize::from(self.compressed_len);
        let mut comp = 0u32;
        for age in 0..self.original_len() {
            if history(age) {
                comp ^= 1u32 << (age % clen);
            }
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "compressed length")]
    fn rejects_oversized_fold() {
        let _ = FoldedHistory::new(100, 33);
    }

    #[test]
    fn update_masks_to_width() {
        let mut f = FoldedHistory::new(7, 3);
        for _ in 0..100 {
            f.update(true, false);
            assert!(f.value() < 8);
        }
    }

    #[test]
    fn clear_and_set_value() {
        let mut f = FoldedHistory::new(16, 8);
        f.update(true, false);
        assert_ne!(f.value(), 0);
        f.clear();
        assert_eq!(f.value(), 0);
        f.set_value(0xAB);
        assert_eq!(f.value(), 0xAB);
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn set_value_checks_width() {
        let mut f = FoldedHistory::new(16, 4);
        f.set_value(16);
    }

    #[test]
    fn full_width_fold_accepts_any_checkpoint_value() {
        // Regression: the width assert used to evaluate
        // `1u32 << 32` before the == 32 escape hatch, panicking with
        // shift overflow for every legal 32-bit fold restore.
        let mut f = FoldedHistory::new(64, 32);
        f.set_value(u32::MAX);
        assert_eq!(f.value(), u32::MAX);
        f.set_value(0xDEAD_BEEF);
        assert_eq!(f.value(), 0xDEAD_BEEF);
    }

    #[test]
    fn getters() {
        let f = FoldedHistory::new(130, 11);
        assert_eq!(f.original_len(), 130);
        assert_eq!(f.compressed_len(), 11);
    }

    proptest! {
        /// The incremental fold must equal a from-scratch replay of the
        /// same outcome stream.
        #[test]
        fn incremental_matches_naive(
            stream in proptest::collection::vec(any::<bool>(), 1..300),
            olen in 1usize..80,
            clen in 1usize..16,
        ) {
            let mut inc = FoldedHistory::new(olen, clen);
            for (i, &bit) in stream.iter().enumerate() {
                let evicted = if i >= olen { stream[i - olen] } else { false };
                inc.update(bit, evicted);
            }
            let n = stream.len();
            let hist = |age: usize| age < n && stream[n - 1 - age];
            prop_assert_eq!(inc.value(), inc.fold_naive(hist));
        }
    }
}
