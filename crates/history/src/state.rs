//! Bundled history state: global + folded + path, kept consistent.

use crate::folded::FoldedHistory;
use crate::global::{GlobalHistory, GlobalHistoryCheckpoint};
use crate::path::PathHistory;

/// Identifier of a fold registered with [`HistoryState::add_fold`].
pub type FoldId = usize;

/// A consistent bundle of global direction history, any number of folded
/// views of it, and a path history.
///
/// TAGE-style predictors need, per tagged table, one fold for the index
/// and two for the tag, all over different segment lengths of the *same*
/// global history. `HistoryState` owns the global buffer and updates every
/// registered fold in O(1) per branch, including feeding each fold its own
/// evicted bit.
///
/// ```
/// use bp_history::HistoryState;
/// let mut hs = HistoryState::new(1024, 16);
/// let idx_fold = hs.add_fold(100, 10);
/// hs.push(true, 0x400);
/// assert_eq!(hs.fold(idx_fold) & 1, 1);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryState {
    global: GlobalHistory,
    folds: Vec<FoldedHistory>,
    path: PathHistory,
}

/// Checkpoint of a [`HistoryState`]: the global head pointer plus the
/// folded values and path register.
///
/// In hardware the folds are recomputed or checkpointed alongside the
/// fetch state; their total size (a few hundred bits for a full TAGE) is
/// reported by [`HistoryCheckpoint::cost_bits`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    global: GlobalHistoryCheckpoint,
    folds: Vec<u32>,
    path: u64,
}

impl HistoryCheckpoint {
    /// Number of state bits a hardware checkpoint of this content would
    /// occupy (global head pointer + every fold + path register).
    pub fn cost_bits(&self, state: &HistoryState) -> u64 {
        let mut bits = u64::from(GlobalHistoryCheckpoint::cost_bits(state.global.capacity()));
        for f in &state.folds {
            bits += f.compressed_len() as u64;
        }
        bits += state.path.len() as u64;
        bits
    }
}

impl HistoryState {
    /// Creates a history bundle with a global buffer of `capacity`
    /// outcomes and a `path_len`-bit path register.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GlobalHistory::new`] and
    /// [`PathHistory::new`].
    pub fn new(capacity: usize, path_len: usize) -> Self {
        HistoryState {
            global: GlobalHistory::new(capacity),
            folds: Vec::new(),
            path: PathHistory::new(path_len),
        }
    }

    /// Registers a fold of the `original_len` most recent outcomes into
    /// `compressed_len` bits; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `original_len` exceeds the global capacity (the evicted
    /// bit would be unreadable) or under [`FoldedHistory::new`]'s
    /// conditions.
    pub fn add_fold(&mut self, original_len: usize, compressed_len: usize) -> FoldId {
        assert!(
            original_len < self.global.capacity(),
            "fold segment ({original_len}) must be shorter than the global capacity ({})",
            self.global.capacity()
        );
        self.folds
            .push(FoldedHistory::new(original_len, compressed_len));
        self.folds.len() - 1
    }

    /// Pushes a branch outcome and its PC, updating the global history,
    /// every fold, and the path register.
    pub fn push(&mut self, taken: bool, pc: u64) {
        for f in &mut self.folds {
            let evicted = self.global.bit(f.original_len() - 1);
            f.update(taken, evicted);
        }
        self.global.push(taken);
        self.path.push(pc);
    }

    /// Pushes only path information (used for non-conditional branches,
    /// which shift the path but not the direction history).
    pub fn push_path_only(&mut self, pc: u64) {
        self.path.push(pc);
    }

    /// The current value of fold `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`HistoryState::add_fold`].
    #[inline]
    pub fn fold(&self, id: FoldId) -> u32 {
        self.folds[id].value()
    }

    /// Direct access to the global history.
    pub fn global(&self) -> &GlobalHistory {
        &self.global
    }

    /// The packed path history.
    #[inline]
    pub fn path(&self) -> u64 {
        self.path.value()
    }

    /// Number of registered folds.
    pub fn fold_count(&self) -> usize {
        self.folds.len()
    }

    /// Takes a checkpoint of the entire bundle.
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint {
            global: self.global.checkpoint(),
            folds: self.folds.iter().map(FoldedHistory::value).collect(),
            path: self.path.value(),
        }
    }

    /// Restores a checkpoint taken earlier on this bundle.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not match this bundle's fold layout
    /// or violates [`GlobalHistory::restore`]'s conditions.
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        assert_eq!(
            cp.folds.len(),
            self.folds.len(),
            "checkpoint fold layout mismatch"
        );
        self.global.restore(cp.global);
        for (f, &v) in self.folds.iter_mut().zip(&cp.folds) {
            f.set_value(v);
        }
        self.path.set_value(cp.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drive(hs: &mut HistoryState, stream: &[(bool, u64)]) {
        for &(taken, pc) in stream {
            hs.push(taken, pc);
        }
    }

    #[test]
    fn folds_track_global_history() {
        let mut hs = HistoryState::new(256, 16);
        let f = hs.add_fold(8, 8);
        for taken in [true, false, true, true] {
            hs.push(taken, 0x40);
        }
        // With olen == clen the fold equals the plain history bits.
        assert_eq!(hs.fold(f) as u64, hs.global().low_bits(8));
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut hs = HistoryState::new(256, 20);
        let f1 = hs.add_fold(60, 11);
        let f2 = hs.add_fold(13, 7);
        drive(
            &mut hs,
            &[(true, 0x10), (false, 0x20), (true, 0x32), (true, 0x44)],
        );
        let cp = hs.checkpoint();
        let (v1, v2, p) = (hs.fold(f1), hs.fold(f2), hs.path());
        drive(&mut hs, &[(false, 0x66), (false, 0x68), (true, 0x6a)]);
        hs.restore(&cp);
        assert_eq!(hs.fold(f1), v1);
        assert_eq!(hs.fold(f2), v2);
        assert_eq!(hs.path(), p);
        assert_eq!(hs.fold_count(), 2);
    }

    #[test]
    fn checkpoint_cost_accounts_all_parts() {
        let mut hs = HistoryState::new(2048, 27);
        hs.add_fold(100, 12);
        hs.add_fold(100, 10);
        let cp = hs.checkpoint();
        // 11 (head) + 12 + 10 + 27 (path)
        assert_eq!(cp.cost_bits(&hs), 11 + 12 + 10 + 27);
    }

    #[test]
    #[should_panic(expected = "shorter than the global capacity")]
    fn rejects_fold_longer_than_buffer() {
        let mut hs = HistoryState::new(64, 8);
        hs.add_fold(64, 8);
    }

    #[test]
    fn path_only_pushes_do_not_touch_direction() {
        let mut hs = HistoryState::new(64, 8);
        let f = hs.add_fold(4, 4);
        hs.push(true, 0x2);
        let fold_before = hs.fold(f);
        let path_before = hs.path();
        hs.push_path_only(0x2);
        assert_eq!(hs.fold(f), fold_before);
        assert_ne!(hs.path(), path_before);
    }

    proptest! {
        /// After any stream, every fold equals its from-scratch naive
        /// recomputation over the global buffer.
        #[test]
        fn folds_always_match_naive(
            stream in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..200),
            olen in 1usize..60,
            clen in 1usize..14,
        ) {
            let mut hs = HistoryState::new(256, 16);
            let f = hs.add_fold(olen, clen);
            for &(taken, pc) in &stream {
                hs.push(taken, pc);
            }
            let global = hs.global().clone();
            let naive = FoldedHistory::new(olen, clen)
                .fold_naive(|age| global.bit(age));
            prop_assert_eq!(hs.fold(f), naive);
        }

        /// Restoring a checkpoint after arbitrary wrong-path pushes
        /// reproduces the pre-speculation state exactly.
        #[test]
        fn speculation_repair_is_exact(
            good in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..100),
            wrong in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..100),
        ) {
            let mut hs = HistoryState::new(256, 16);
            let f = hs.add_fold(31, 9);
            for &(t, pc) in &good {
                hs.push(t, pc);
            }
            let cp = hs.checkpoint();
            let snapshot = (hs.fold(f), hs.path(), hs.global().low_bits(31));
            for &(t, pc) in &wrong {
                hs.push(t, pc);
            }
            hs.restore(&cp);
            prop_assert_eq!(snapshot, (hs.fold(f), hs.path(), hs.global().low_bits(31)));
        }
    }
}
