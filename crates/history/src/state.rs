//! Bundled history state: global + folded + path, kept consistent.

use crate::folded::FoldedHistory;
use crate::global::{GlobalHistory, GlobalHistoryCheckpoint};
use crate::path::PathHistory;

/// Identifier of a fold registered with [`HistoryState::add_fold`].
pub type FoldId = usize;

/// A consistent bundle of global direction history, any number of folded
/// views of it, and a path history.
///
/// TAGE-style predictors need, per tagged table, one fold for the index
/// and two for the tag, all over different segment lengths of the *same*
/// global history. `HistoryState` owns the global buffer and updates every
/// registered fold in O(1) per branch, including feeding each fold its own
/// evicted bit.
///
/// The folds are stored structure-of-arrays (current value, fold width,
/// width mask, eviction XOR point in parallel vectors) rather than as a
/// `Vec<FoldedHistory>`: the per-branch update of all folds — 36 for a
/// 12-table TAGE — is the hottest loop on the TAGE-SC-L profile, and the
/// flat layout lets [`HistoryState::push`] update eight folds per
/// iteration with AVX2 variable shifts where the CPU supports it (with a
/// bit-identical scalar loop everywhere else). Every fold follows the
/// exact [`FoldedHistory`] recurrence; the property tests compare against
/// its from-scratch reference.
///
/// ```
/// use bp_history::HistoryState;
/// let mut hs = HistoryState::new(1024, 16);
/// let idx_fold = hs.add_fold(100, 10);
/// hs.push(true, 0x400);
/// assert_eq!(hs.fold(idx_fold) & 1, 1);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryState {
    global: GlobalHistory,
    path: PathHistory,
    /// Current value of each fold (the mutable hot state).
    comps: Vec<u32>,
    /// Fold width (compressed length) per fold.
    clens: Vec<u32>,
    /// `(1 << clen) - 1` per fold.
    masks: Vec<u32>,
    /// `original_len % clen` per fold: where the evicted bit XORs out.
    outpoints: Vec<u32>,
    /// For each fold, the index of its segment length in `unique_lens`.
    eviction_slot: Vec<u32>,
    /// Distinct fold segment lengths, in registration order.
    unique_lens: Vec<usize>,
    /// Per-push scratch: the evicted bit (0/1) of each unique length.
    evicted: Vec<u32>,
    /// Per-push scratch: each fold's evicted bit already shifted to its
    /// XOR-out point (`evicted[slot] << outpoint`). Expanding this with
    /// a scalar loop *before* the fold kernel replaces a `vpgatherdd` +
    /// `vpsllvd` pair per SIMD block — the gather is the slowest
    /// instruction of the whole push and sits on the inter-branch
    /// critical path (the next lookup's indices read the fold
    /// registers this kernel writes).
    evicted_out: Vec<u32>,
    /// Whether any fold is 32 bits wide (forces the u64 scalar loop; no
    /// registry predictor uses folds wider than 16 bits).
    wide_fold: bool,
    /// Host support for the AVX2 fold kernel, probed once at
    /// construction.
    avx2: bool,
}

/// Checkpoint of a [`HistoryState`]: the global head pointer plus the
/// folded values and path register.
///
/// In hardware the folds are recomputed or checkpointed alongside the
/// fetch state; their total size (a few hundred bits for a full TAGE) is
/// reported by [`HistoryCheckpoint::cost_bits`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    global: GlobalHistoryCheckpoint,
    folds: Vec<u32>,
    path: u64,
}

impl HistoryCheckpoint {
    /// Number of state bits a hardware checkpoint of this content would
    /// occupy (global head pointer + every fold + path register).
    pub fn cost_bits(&self, state: &HistoryState) -> u64 {
        let mut bits = u64::from(GlobalHistoryCheckpoint::cost_bits(state.global.capacity()));
        for &clen in &state.clens {
            bits += u64::from(clen);
        }
        bits += state.path.len() as u64;
        bits
    }
}

fn detect_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl HistoryState {
    /// Creates a history bundle with a global buffer of `capacity`
    /// outcomes and a `path_len`-bit path register.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GlobalHistory::new`] and
    /// [`PathHistory::new`].
    // bp-lint: allow-item(hot-path-alloc, "bundle construction is cold; per-branch shift/fold is allocation-free (tests/hotpath_allocations.rs)")
    pub fn new(capacity: usize, path_len: usize) -> Self {
        HistoryState {
            global: GlobalHistory::new(capacity),
            path: PathHistory::new(path_len),
            comps: Vec::new(),
            clens: Vec::new(),
            masks: Vec::new(),
            outpoints: Vec::new(),
            eviction_slot: Vec::new(),
            unique_lens: Vec::new(),
            evicted: Vec::new(),
            evicted_out: Vec::new(),
            wide_fold: false,
            avx2: detect_avx2(),
        }
    }

    /// Registers a fold of the `original_len` most recent outcomes into
    /// `compressed_len` bits; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `original_len` exceeds the global capacity (the evicted
    /// bit would be unreadable) or under [`FoldedHistory::new`]'s
    /// conditions.
    pub fn add_fold(&mut self, original_len: usize, compressed_len: usize) -> FoldId {
        assert!(
            original_len < self.global.capacity(),
            "fold segment ({original_len}) must be shorter than the global capacity ({})",
            self.global.capacity()
        );
        // Reuse the scalar type's validation so both paths reject the
        // same geometries with the same messages.
        let _ = FoldedHistory::new(original_len, compressed_len);
        self.comps.push(0);
        self.clens.push(compressed_len as u32);
        self.masks.push(if compressed_len == 32 {
            u32::MAX
        } else {
            (1u32 << compressed_len) - 1
        });
        self.outpoints.push((original_len % compressed_len) as u32);
        self.wide_fold |= compressed_len == 32;
        let slot = match self.unique_lens.iter().position(|&l| l == original_len) {
            Some(slot) => slot,
            None => {
                self.unique_lens.push(original_len);
                self.evicted.push(0);
                self.unique_lens.len() - 1
            }
        };
        self.eviction_slot.push(slot as u32);
        self.evicted_out.push(0);
        self.comps.len() - 1
    }

    /// Pushes a branch outcome and its PC, updating the global history,
    /// every fold, and the path register.
    ///
    /// Runs once per conditional branch for every history-based
    /// predictor, updating *every* registered fold — 36 folds for a
    /// 12-table TAGE (one index and two tag folds per table), the
    /// hottest loop on the TAGE-SC-L profile. Three passes, each with
    /// mutually independent iterations: read the evicted bit of every
    /// *distinct* segment length (TAGE registers three folds per
    /// segment, so this cuts the global-buffer reads threefold), expand
    /// it per fold pre-shifted to the fold's XOR-out point with a plain
    /// scalar loop, then step all fold registers — eight per AVX2
    /// iteration (`vpsrlvd` for the heterogeneous fold widths, a
    /// straight `loadu` of the expanded eviction words) on hosts that
    /// have it, through the bit-identical scalar recurrence otherwise.
    /// The scalar expansion looks like extra work but removes a
    /// `vpgatherdd`/`vpsllvd` pair per SIMD block, and the gather was
    /// the slowest instruction on the inter-branch critical path.
    pub fn push(&mut self, taken: bool, pc: u64) {
        for (slot, &len) in self.unique_lens.iter().enumerate() {
            self.evicted[slot] = u32::from(self.global.bit(len - 1));
        }
        for ((out, &slot), &op) in self
            .evicted_out
            .iter_mut()
            .zip(&self.eviction_slot)
            .zip(&self.outpoints)
        {
            *out = self.evicted[slot as usize] << op;
        }
        self.fold_step(taken);
        self.global.push(taken);
        self.path.push(pc);
    }

    /// Advances every fold register by one inserted outcome, consuming
    /// the gathered per-segment evicted bits.
    fn fold_step(&mut self, taken: bool) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2 && !self.wide_fold {
            // SAFETY: AVX2 support was verified at construction;
            // `wide_fold` guarantees every clen <= 31 so the u32 lane
            // arithmetic cannot overflow a lane; `evicted_out` has one
            // entry per fold by construction.
            unsafe {
                fold_step_avx2(
                    &mut self.comps,
                    &self.clens,
                    &self.masks,
                    &self.evicted_out,
                    taken,
                );
            }
            return;
        }
        self.fold_step_scalar(taken);
    }

    /// Scalar fold step: the [`FoldedHistory::update`] recurrence over
    /// the flat arrays, in u64 so 32-bit-wide folds stay exact.
    fn fold_step_scalar(&mut self, taken: bool) {
        for i in 0..self.comps.len() {
            let wide = (u64::from(self.comps[i]) << 1) | u64::from(taken);
            let comp = (wide ^ (wide >> self.clens[i])) as u32 & self.masks[i];
            self.comps[i] = comp ^ self.evicted_out[i];
        }
    }

    /// Pushes only path information (used for non-conditional branches,
    /// which shift the path but not the direction history).
    pub fn push_path_only(&mut self, pc: u64) {
        self.path.push(pc);
    }

    /// The current value of fold `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`HistoryState::add_fold`].
    #[inline]
    pub fn fold(&self, id: FoldId) -> u32 {
        self.comps[id]
    }

    /// The current values of every registered fold, indexed by
    /// [`FoldId`] — the batched twin of [`HistoryState::fold`] for hot
    /// index phases that read many folds per branch (a 12-table TAGE
    /// reads 36): one slice bound instead of a bounds check per call.
    #[inline]
    pub fn folds(&self) -> &[u32] {
        &self.comps
    }

    /// Direct access to the global history.
    pub fn global(&self) -> &GlobalHistory {
        &self.global
    }

    /// The packed path history.
    #[inline]
    pub fn path(&self) -> u64 {
        self.path.value()
    }

    /// Number of registered folds.
    pub fn fold_count(&self) -> usize {
        self.comps.len()
    }

    /// Erases every component of the bundle (a context-switch flush):
    /// the global buffer's bits, every fold register, and the path
    /// register all read back as after construction.
    ///
    /// Allocation-free — only existing buffers are zeroed — so scenario
    /// drive loops may flush in steady state. The global head pointer is
    /// deliberately kept (see [`GlobalHistory::flush`]): checkpoints
    /// taken before the flush remain restorable under the usual depth
    /// invariants, and restoring one reproduces the *flushed* view, the
    /// correct architectural outcome. The fold registers equal their
    /// naive recomputation over the (now all-zero) global buffer, which
    /// is 0 — the post-flush invariant the property tests pin.
    pub fn flush(&mut self) {
        self.global.flush();
        self.comps.fill(0);
        self.evicted.fill(0);
        self.evicted_out.fill(0);
        self.path.set_value(0);
    }

    /// Takes a checkpoint of the entire bundle.
    // bp-lint: allow-item(hot-path-alloc, "checkpoint capture is wrong-path recovery, off the per-branch predict/update path")
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint {
            global: self.global.checkpoint(),
            folds: self.comps.clone(),
            path: self.path.value(),
        }
    }

    /// Restores a checkpoint taken earlier on this bundle.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not match this bundle's fold layout
    /// or violates [`GlobalHistory::restore`]'s conditions.
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        assert_eq!(
            cp.folds.len(),
            self.comps.len(),
            "checkpoint fold layout mismatch"
        );
        self.global.restore(cp.global);
        for (i, &v) in cp.folds.iter().enumerate() {
            assert!(v <= self.masks[i], "value wider than fold");
            self.comps[i] = v;
        }
        self.path.set_value(cp.path);
    }
}

/// AVX2 fold step: eight folds per iteration, per-lane variable shifts
/// (`vpsrlvd`) for the heterogeneous fold widths, and a straight
/// `loadu` of the pre-expanded, pre-shifted eviction words (see
/// [`HistoryState::push`]), with a scalar tail. Exactly the
/// [`FoldedHistory::update`] recurrence in u32 — sound because the
/// caller guarantees every clen <= 31, so `wide` needs at most 32 bits.
///
/// # Safety
///
/// The caller must verify AVX2 support, that no fold is 32 bits wide,
/// and that `evicted_out` has at least `comps.len()` entries.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_step_avx2(
    comps: &mut [u32],
    clens: &[u32],
    masks: &[u32],
    evicted_out: &[u32],
    taken: bool,
) {
    use std::arch::x86_64::*;
    let n = comps.len();
    let ins = _mm256_set1_epi32(i32::from(taken));
    let mut i = 0;
    while i + 8 <= n {
        let c = _mm256_loadu_si256(comps.as_ptr().add(i).cast());
        let cl = _mm256_loadu_si256(clens.as_ptr().add(i).cast());
        let m = _mm256_loadu_si256(masks.as_ptr().add(i).cast());
        let out = _mm256_loadu_si256(evicted_out.as_ptr().add(i).cast());
        let wide = _mm256_or_si256(_mm256_slli_epi32::<1>(c), ins);
        let comp = _mm256_and_si256(_mm256_xor_si256(wide, _mm256_srlv_epi32(wide, cl)), m);
        _mm256_storeu_si256(
            comps.as_mut_ptr().add(i).cast(),
            _mm256_xor_si256(comp, out),
        );
        i += 8;
    }
    while i < n {
        let wide = (comps[i] << 1) | u32::from(taken);
        comps[i] = ((wide ^ (wide >> clens[i])) & masks[i]) ^ evicted_out[i];
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drive(hs: &mut HistoryState, stream: &[(bool, u64)]) {
        for &(taken, pc) in stream {
            hs.push(taken, pc);
        }
    }

    #[test]
    fn folds_track_global_history() {
        let mut hs = HistoryState::new(256, 16);
        let f = hs.add_fold(8, 8);
        for taken in [true, false, true, true] {
            hs.push(taken, 0x40);
        }
        // With olen == clen the fold equals the plain history bits.
        assert_eq!(hs.fold(f) as u64, hs.global().low_bits(8));
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut hs = HistoryState::new(256, 20);
        let f1 = hs.add_fold(60, 11);
        let f2 = hs.add_fold(13, 7);
        drive(
            &mut hs,
            &[(true, 0x10), (false, 0x20), (true, 0x32), (true, 0x44)],
        );
        let cp = hs.checkpoint();
        let (v1, v2, p) = (hs.fold(f1), hs.fold(f2), hs.path());
        drive(&mut hs, &[(false, 0x66), (false, 0x68), (true, 0x6a)]);
        hs.restore(&cp);
        assert_eq!(hs.fold(f1), v1);
        assert_eq!(hs.fold(f2), v2);
        assert_eq!(hs.path(), p);
        assert_eq!(hs.fold_count(), 2);
    }

    #[test]
    fn checkpoint_cost_accounts_all_parts() {
        let mut hs = HistoryState::new(2048, 27);
        hs.add_fold(100, 12);
        hs.add_fold(100, 10);
        let cp = hs.checkpoint();
        // 11 (head) + 12 + 10 + 27 (path)
        assert_eq!(cp.cost_bits(&hs), 11 + 12 + 10 + 27);
    }

    #[test]
    #[should_panic(expected = "shorter than the global capacity")]
    fn rejects_fold_longer_than_buffer() {
        let mut hs = HistoryState::new(64, 8);
        hs.add_fold(64, 8);
    }

    #[test]
    #[should_panic(expected = "compressed length")]
    fn rejects_oversized_fold_width() {
        let mut hs = HistoryState::new(64, 8);
        hs.add_fold(32, 33);
    }

    #[test]
    fn full_width_folds_use_the_u64_scalar_path() {
        // clen == 32 disables the u32 SIMD kernel; the u64 scalar loop
        // must still match the reference fold exactly.
        let mut hs = HistoryState::new(256, 16);
        let f = hs.add_fold(64, 32);
        let stream: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        for &taken in &stream {
            hs.push(taken, 0x40);
        }
        let global = hs.global().clone();
        let naive = FoldedHistory::new(64, 32).fold_naive(|age| global.bit(age));
        assert_eq!(hs.fold(f), naive);
    }

    #[test]
    fn path_only_pushes_do_not_touch_direction() {
        let mut hs = HistoryState::new(64, 8);
        let f = hs.add_fold(4, 4);
        hs.push(true, 0x2);
        let fold_before = hs.fold(f);
        let path_before = hs.path();
        hs.push_path_only(0x2);
        assert_eq!(hs.fold(f), fold_before);
        assert_ne!(hs.path(), path_before);
    }

    #[test]
    fn flush_resets_folds_path_and_global_bits() {
        let mut hs = HistoryState::new(256, 16);
        let f1 = hs.add_fold(60, 11);
        let f2 = hs.add_fold(13, 7);
        drive(
            &mut hs,
            &[(true, 0x10), (false, 0x20), (true, 0x32), (true, 0x44)],
        );
        let pushes = hs.global().pushes();
        hs.flush();
        assert_eq!(hs.fold(f1), 0);
        assert_eq!(hs.fold(f2), 0);
        assert_eq!(hs.path(), 0);
        assert_eq!(hs.global().low_bits(64), 0);
        assert_eq!(hs.global().pushes(), pushes, "flush keeps the head");
    }

    #[test]
    fn flush_at_exact_capacity_boundary_keeps_folds_consistent() {
        // The PR 2 off-by-one class: exercise flushes landing exactly on
        // multiples of the global capacity, where the circular buffer
        // wraps onto slot 0, and check the folds still equal their naive
        // recomputation afterwards.
        let capacity = 64;
        let mut hs = HistoryState::new(capacity, 16);
        let f = hs.add_fold(31, 9);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for round in 1..=3 {
            for _ in 0..capacity {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                hs.push(x & 1 == 1, x >> 8);
            }
            // Each round pushes `capacity` here plus `capacity` in the
            // re-align below, so the boundary lands at an odd multiple.
            assert_eq!(hs.global().pushes(), ((2 * round - 1) * capacity) as u64);
            hs.flush();
            assert_eq!(hs.fold(f), 0, "round {round}");
            // Post-flush pushes must keep matching the from-scratch
            // reference over the flushed buffer.
            for _ in 0..17 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                hs.push(x & 1 == 1, x >> 8);
            }
            let global = hs.global().clone();
            let naive = FoldedHistory::new(31, 9).fold_naive(|age| global.bit(age));
            assert_eq!(hs.fold(f), naive, "round {round}");
            // Re-align to the capacity boundary for the next round.
            for _ in 0..(capacity - 17) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                hs.push(x & 1 == 1, x >> 8);
            }
        }
    }

    #[test]
    fn pre_flush_checkpoint_restores_to_flushed_view() {
        let mut hs = HistoryState::new(256, 16);
        let f = hs.add_fold(31, 9);
        drive(&mut hs, &[(true, 0x10), (true, 0x20), (false, 0x30)]);
        let cp = hs.checkpoint();
        drive(&mut hs, &[(false, 0x40), (true, 0x50)]);
        hs.flush();
        hs.restore(&cp);
        // The head rewinds but the destroyed bits stay destroyed; the
        // fold registers come back from the checkpoint by definition.
        assert_eq!(hs.global().low_bits(31), 0);
        assert_ne!(hs.fold(f), 0);
    }

    proptest! {
        /// After any stream, every fold equals its from-scratch naive
        /// recomputation over the global buffer.
        #[test]
        fn folds_always_match_naive(
            stream in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..200),
            olen in 1usize..60,
            clen in 1usize..14,
        ) {
            let mut hs = HistoryState::new(256, 16);
            let f = hs.add_fold(olen, clen);
            for &(taken, pc) in &stream {
                hs.push(taken, pc);
            }
            let global = hs.global().clone();
            let naive = FoldedHistory::new(olen, clen)
                .fold_naive(|age| global.bit(age));
            prop_assert_eq!(hs.fold(f), naive);
        }

        /// A TAGE-shaped fold population (three folds per segment, many
        /// segments — enough to exercise full SIMD blocks and the tail)
        /// matches the scalar [`FoldedHistory`] replay fold-for-fold.
        #[test]
        fn bulk_folds_match_scalar_registers(
            stream in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..150),
            lens in proptest::collection::vec((1usize..100, 1usize..14), 1..14),
        ) {
            let mut hs = HistoryState::new(256, 16);
            let mut scalar = Vec::new();
            let mut ids = Vec::new();
            for &(olen, clen) in &lens {
                // Three same-segment folds, like TAGE's index + two tag
                // folds (widths differ where possible).
                for w in [clen, clen.max(2) - 1, clen] {
                    ids.push(hs.add_fold(olen, w));
                    scalar.push(FoldedHistory::new(olen, w));
                }
            }
            let mut global = crate::GlobalHistory::new(256);
            for &(taken, pc) in &stream {
                for f in scalar.iter_mut() {
                    f.update(taken, global.bit(f.original_len() - 1));
                }
                global.push(taken);
                hs.push(taken, pc);
            }
            for (id, f) in ids.iter().zip(&scalar) {
                prop_assert_eq!(hs.fold(*id), f.value());
            }
        }

        /// Flushing at an arbitrary point and continuing keeps every
        /// fold equal to its from-scratch recomputation over the
        /// (flushed) global buffer — the incremental recurrence and the
        /// zeroed buffer stay mutually consistent.
        #[test]
        fn folds_match_naive_across_flush(
            pre in proptest::collection::vec((any::<bool>(), 0u64..1024), 0..300),
            post in proptest::collection::vec((any::<bool>(), 0u64..1024), 0..100),
            olen in 1usize..60,
            clen in 1usize..14,
        ) {
            let mut hs = HistoryState::new(256, 16);
            let f = hs.add_fold(olen, clen);
            for &(t, pc) in &pre {
                hs.push(t, pc);
            }
            hs.flush();
            for &(t, pc) in &post {
                hs.push(t, pc);
            }
            let global = hs.global().clone();
            let naive = FoldedHistory::new(olen, clen)
                .fold_naive(|age| global.bit(age));
            prop_assert_eq!(hs.fold(f), naive);
        }

        /// Restoring a checkpoint after arbitrary wrong-path pushes
        /// reproduces the pre-speculation state exactly.
        #[test]
        fn speculation_repair_is_exact(
            good in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..100),
            wrong in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..100),
        ) {
            let mut hs = HistoryState::new(256, 16);
            let f = hs.add_fold(31, 9);
            for &(t, pc) in &good {
                hs.push(t, pc);
            }
            let cp = hs.checkpoint();
            let snapshot = (hs.fold(f), hs.path(), hs.global().low_bits(31));
            for &(t, pc) in &wrong {
                hs.push(t, pc);
            }
            hs.restore(&cp);
            prop_assert_eq!(snapshot, (hs.fold(f), hs.path(), hs.global().low_bits(31)));
        }
    }
}
