//! Path history: a shift register of low PC bits.

/// Global path history.
///
/// On every branch (conditional or not) one low-order bit of the branch PC
/// is shifted in, as in the TAGE and EV8 designs: the *path* taken through
/// the code disambiguates histories that the direction bits alone cannot.
///
/// ```
/// use bp_history::PathHistory;
/// let mut p = PathHistory::new(16);
/// p.push(0b10); // pc bit 1 set
/// p.push(0b00); // pc bit 1 clear
/// assert_eq!(p.value() & 0b11, 0b10); // newest in bit 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathHistory {
    value: u64,
    len: u8,
}

impl PathHistory {
    /// Creates a path history of `len` bits (at most 64).
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 64.
    pub fn new(len: usize) -> Self {
        assert!((1..=64).contains(&len), "path length must be in 1..=64");
        PathHistory {
            value: 0,
            len: len as u8,
        }
    }

    /// Shifts in bit 1 of `pc` (bit 0 is usually constant due to
    /// instruction alignment, bit 1 discriminates better).
    #[inline]
    pub fn push(&mut self, pc: u64) {
        let mask = if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        };
        self.value = ((self.value << 1) | ((pc >> 1) & 1)) & mask;
    }

    /// Current packed path bits (newest in bit 0).
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Width in bits.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Returns `true` if the register has zero configured width. Always
    /// `false` (the constructor rejects zero) but provided for symmetry
    /// with `len`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Overwrites the register (checkpoint restore).
    pub fn set_value(&mut self, value: u64) {
        self.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifts_pc_bit_one() {
        let mut p = PathHistory::new(8);
        p.push(0b10); // bit1 = 1
        p.push(0b00); // bit1 = 0
        p.push(0b11); // bit1 = 1
        assert_eq!(p.value(), 0b101);
    }

    #[test]
    fn masks_to_width() {
        let mut p = PathHistory::new(3);
        for _ in 0..10 {
            p.push(0b10);
        }
        assert_eq!(p.value(), 0b111);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn full_width_register() {
        let mut p = PathHistory::new(64);
        for _ in 0..70 {
            p.push(0b10);
        }
        assert_eq!(p.value(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "path length")]
    fn rejects_zero_width() {
        let _ = PathHistory::new(0);
    }

    #[test]
    fn set_value_restores() {
        let mut p = PathHistory::new(16);
        p.push(0x2);
        let saved = p.value();
        p.push(0x2);
        p.set_value(saved);
        assert_eq!(p.value(), saved);
    }
}
