//! Global direction history with pointer-based speculation repair.

use std::fmt;

/// Checkpoint of a [`GlobalHistory`]: just the speculative head pointer.
///
/// This is the paper's point (§2.3.1): repairing speculative *global*
/// history after a misprediction only requires restoring a small pointer,
/// unlike local history which needs an associative search over the window
/// of in-flight branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistoryCheckpoint {
    head: u64,
}

impl GlobalHistoryCheckpoint {
    /// Width in bits of the state that a hardware implementation would
    /// store in a checkpoint for a history buffer of capacity `capacity`.
    pub fn cost_bits(capacity: usize) -> u32 {
        usize::BITS - (capacity.max(2) - 1).leading_zeros()
    }
}

/// Global branch direction history.
///
/// Outcomes are pushed most-recent-first into a circular bit buffer whose
/// head is a monotonically increasing counter. Reading bit `i` returns the
/// direction of the branch `i` occurrences ago (0 = most recent).
///
/// Wrong-path pushes write *ahead* of any committed data, so restoring a
/// checkpoint is just rewinding the head pointer: the bits behind it were
/// never clobbered (as long as the wrong path is shorter than the buffer,
/// which holds by construction for any realistic in-flight window).
///
/// ```
/// use bp_history::GlobalHistory;
/// let mut h = GlobalHistory::new(256);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0)); // most recent outcome
/// assert!(h.bit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHistory {
    words: Vec<u64>,
    mask: u64,
    head: u64,
}

impl GlobalHistory {
    /// Creates a history buffer with capacity for `capacity` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or is smaller than 64.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 64,
            "capacity must be a power of two >= 64, got {capacity}"
        );
        GlobalHistory {
            words: vec![0; capacity / 64],
            mask: capacity as u64 - 1,
            head: 0,
        }
    }

    /// Capacity in outcomes.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of outcomes pushed so far (monotonic, never wraps in
    /// practice: 2^64 branches is centuries of execution).
    pub fn pushes(&self) -> u64 {
        self.head
    }

    /// Appends the outcome of the most recent branch.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let slot = self.head & self.mask;
        let word = (slot / 64) as usize;
        let bit = slot % 64;
        if taken {
            self.words[word] |= 1 << bit;
        } else {
            self.words[word] &= !(1 << bit);
        }
        self.head += 1;
    }

    /// Returns the direction of the branch `age` occurrences ago
    /// (0 = most recent). Branches older than the capacity — or earlier
    /// than the first push — read as not-taken.
    #[inline]
    pub fn bit(&self, age: usize) -> bool {
        if age as u64 >= self.head || age >= self.capacity() {
            return false;
        }
        let slot = (self.head - 1 - age as u64) & self.mask;
        let word = (slot / 64) as usize;
        (self.words[word] >> (slot % 64)) & 1 == 1
    }

    /// Packs the `n` most recent outcomes into the low bits of a `u64`
    /// (bit 0 = most recent). `n` must be at most 64.
    ///
    /// Word-based: the window is gathered from at most two backing
    /// words and bit-reversed into place, instead of `n` per-bit
    /// `bit()` probes — this runs once per prediction in every
    /// neural-summation host (GEHL, the perceptron, the TAGE
    /// statistical corrector path).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= 64, "low_bits supports at most 64 bits, got {n}");
        // Bits older than the first push read as not-taken.
        let avail = self.head.min(n as u64) as u32;
        if avail == 0 {
            return 0;
        }
        // Gather `raw`, the window [head - avail, head) packed oldest
        // in bit 0. The capacity is a power of two and a multiple of
        // 64, so circular wrap always lands on a word boundary and a
        // <= 64-bit window spans at most two words.
        let start = (self.head - u64::from(avail)) & self.mask;
        let word = (start / 64) as usize;
        let off = (start % 64) as u32;
        let mut raw = self.words[word] >> off;
        if off != 0 {
            raw |= self.words[(word + 1) % self.words.len()] << (64 - off);
        }
        if avail < 64 {
            raw &= (1u64 << avail) - 1;
        }
        // Newest-in-bit-0 means reversing the window: pad the missing
        // old bits as zeros at the top, reverse, and keep `n` bits.
        let padded = raw << (n as u32 - avail);
        padded.reverse_bits() >> (64 - n as u32)
    }

    /// Erases every recorded outcome (a context-switch flush): all bits
    /// read back as not-taken, exactly as after construction.
    ///
    /// The monotonic head pointer is deliberately **kept**: checkpoints
    /// taken before the flush stay restorable under the same
    /// future/depth invariants as [`restore`](Self::restore), and
    /// checkpoints taken after it can never alias pre-flush ones. Only
    /// the buffer contents are cleared — post-restore reads then see
    /// the flushed (all-zero) bits, which is the correct architectural
    /// outcome: a flush destroys history, repair cannot resurrect it.
    pub fn flush(&mut self) {
        self.words.fill(0);
    }

    /// Takes a checkpoint: the current speculative head pointer.
    #[inline]
    pub fn checkpoint(&self) -> GlobalHistoryCheckpoint {
        GlobalHistoryCheckpoint { head: self.head }
    }

    /// Rewinds to a previous checkpoint, discarding wrong-path outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is in the future, or if more outcomes than
    /// the buffer capacity were pushed since the checkpoint (the bits would
    /// have been physically overwritten — a real pipeline can never be that
    /// deep relative to its history buffer).
    pub fn restore(&mut self, cp: GlobalHistoryCheckpoint) {
        assert!(cp.head <= self.head, "checkpoint is in the future");
        // Strictly less than capacity: the `capacity`-th wrong-path push
        // wraps onto slot `(head - 1) & mask` and silently clobbers the
        // most recent *committed* bit, so `== capacity` is already too
        // deep to repair.
        assert!(
            self.head - cp.head < self.capacity() as u64,
            "wrong path longer than history capacity"
        );
        self.head = cp.head;
    }
}

impl fmt::Display for GlobalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ghist[{} pushes, cap {}]", self.head, self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = GlobalHistory::new(100);
    }

    #[test]
    fn most_recent_first_ordering() {
        let mut h = GlobalHistory::new(64);
        for taken in [true, true, false, true] {
            h.push(taken);
        }
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(2));
        assert!(h.bit(3));
        assert!(!h.bit(4), "pre-history reads as not-taken");
    }

    #[test]
    fn low_bits_packs_msb_oldest() {
        let mut h = GlobalHistory::new(64);
        h.push(true); // age 2
        h.push(false); // age 1
        h.push(true); // age 0
        assert_eq!(h.low_bits(3), 0b101);
        assert_eq!(h.low_bits(0), 0);
    }

    #[test]
    fn low_bits_matches_per_bit_reference() {
        // The word-gather fast path must agree with the per-bit
        // definition for every capacity/fill/width combination,
        // including pre-history zeros, wrapped buffers, and unaligned
        // window starts.
        for capacity in [64usize, 128, 1024] {
            let mut h = GlobalHistory::new(capacity);
            let mut x = 0x1234_5678_9ABC_DEFFu64;
            for push in 0..(2 * capacity + 7) {
                for n in [0usize, 1, 3, 31, 32, 33, 63, 64] {
                    let mut naive = 0u64;
                    for i in (0..n).rev() {
                        naive = (naive << 1) | u64::from(h.bit(i));
                    }
                    assert_eq!(
                        h.low_bits(n),
                        naive,
                        "capacity {capacity}, {push} pushes, n {n}"
                    );
                }
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.push(x & 1 == 1);
            }
        }
    }

    #[test]
    fn wraps_and_forgets_old_bits() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..64 {
            h.push(true);
        }
        for _ in 0..64 {
            h.push(false);
        }
        assert!(!h.bit(0));
        assert!(!h.bit(63));
        // Older than capacity: unreadable, defined as false.
        assert!(!h.bit(64));
    }

    #[test]
    fn checkpoint_restore_rewinds_speculation() {
        let mut h = GlobalHistory::new(128);
        for i in 0..20 {
            h.push(i % 3 == 0);
        }
        let before: Vec<bool> = (0..20).map(|i| h.bit(i)).collect();
        let cp = h.checkpoint();
        for _ in 0..40 {
            h.push(true); // wrong path
        }
        h.restore(cp);
        let after: Vec<bool> = (0..20).map(|i| h.bit(i)).collect();
        assert_eq!(before, after);
        assert_eq!(h.pushes(), 20);
    }

    #[test]
    fn most_recent_committed_bit_survives_capacity_minus_one_wrong_path() {
        // Regression: restore accepted a wrong path of *exactly*
        // `capacity` pushes, whose last push wraps onto the slot of the
        // most recent committed outcome. At `capacity - 1` pushes that
        // bit must still be intact after repair.
        let mut h = GlobalHistory::new(64);
        for _ in 0..63 {
            h.push(false);
        }
        h.push(true); // the most recent committed bit
        let cp = h.checkpoint();
        for _ in 0..63 {
            h.push(false); // wrong path, one short of capacity
        }
        h.restore(cp);
        assert!(h.bit(0), "most recent committed bit was clobbered");
        assert_eq!(h.pushes(), 64);
    }

    #[test]
    #[should_panic(expected = "wrong path longer")]
    fn restore_rejects_wrong_path_of_exactly_capacity() {
        let mut h = GlobalHistory::new(64);
        h.push(true);
        let cp = h.checkpoint();
        for _ in 0..64 {
            h.push(false);
        }
        h.restore(cp);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn restore_rejects_future_checkpoint() {
        let mut h = GlobalHistory::new(64);
        h.push(true);
        let cp = h.checkpoint();
        let mut h2 = GlobalHistory::new(64);
        h2.restore(cp);
    }

    #[test]
    fn flush_zeroes_bits_but_keeps_head() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..20 {
            h.push(true);
        }
        h.flush();
        assert_eq!(h.pushes(), 20, "flush must not rewind the head");
        for age in 0..64 {
            assert!(!h.bit(age), "bit {age} survived the flush");
        }
        assert_eq!(h.low_bits(64), 0);
        // Post-flush pushes behave normally.
        h.push(true);
        assert!(h.bit(0));
        assert!(!h.bit(1));
    }

    #[test]
    fn pre_flush_checkpoint_stays_restorable() {
        // A checkpoint taken before a flush obeys the same restore
        // invariants; the restored view sees the flushed (zero) bits.
        let mut h = GlobalHistory::new(64);
        for _ in 0..10 {
            h.push(true);
        }
        let cp = h.checkpoint();
        for _ in 0..30 {
            h.push(true);
        }
        h.flush();
        h.restore(cp);
        assert_eq!(h.pushes(), 10);
        assert!(
            !h.bit(0),
            "flush destroys history; repair cannot resurrect it"
        );
    }

    #[test]
    #[should_panic(expected = "wrong path longer")]
    fn flush_does_not_relax_restore_depth_invariant() {
        // Flushing at an exact capacity boundary must not make a
        // too-deep restore legal: the head is monotonic across flushes.
        let mut h = GlobalHistory::new(64);
        h.push(true);
        let cp = h.checkpoint();
        for _ in 0..32 {
            h.push(false);
        }
        h.flush();
        for _ in 0..32 {
            h.push(false);
        }
        h.restore(cp); // 64 == capacity pushes since cp: still rejected
    }

    #[test]
    fn checkpoint_cost_is_logarithmic() {
        assert_eq!(GlobalHistoryCheckpoint::cost_bits(2048), 11);
        assert_eq!(GlobalHistoryCheckpoint::cost_bits(64), 6);
    }

    #[test]
    fn display_is_informative() {
        let h = GlobalHistory::new(64);
        assert!(format!("{h}").contains("cap 64"));
    }
}
