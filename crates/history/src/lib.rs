//! Branch history substrates.
//!
//! The predictors in this workspace consume four forms of history, all
//! defined here:
//!
//! * [`GlobalHistory`] — the global direction history, stored in a circular
//!   bit buffer with a monotonically increasing head so that speculation can
//!   be repaired by *checkpointing a single pointer* (paper §2.3.1).
//! * [`FoldedHistory`] — incrementally maintained CRC-style folds of a long
//!   history segment down to index/tag width, as used by TAGE and the
//!   GEHL-style components.
//! * [`PathHistory`] — a shift register of low PC bits of every taken-path
//!   redirection.
//! * [`LocalHistoryTable`] — per-static-branch direction histories, the
//!   expensive-to-speculate structure the paper argues against (§2.3.2).
//!
//! [`HistoryState`] bundles a global history with a set of folded histories
//! and a path history and keeps them consistent under a single
//! `push`/checkpoint/restore interface.

#![warn(missing_docs)]

mod folded;
mod global;
mod local;
mod path;
mod state;

pub use folded::FoldedHistory;
pub use global::{GlobalHistory, GlobalHistoryCheckpoint};
pub use local::LocalHistoryTable;
pub use path::PathHistory;
pub use state::{FoldId, HistoryCheckpoint, HistoryState};
