//! The O-GEHL adaptive update threshold.

/// Dynamic update-threshold fitting, as introduced with O-GEHL and reused
/// by every statistical corrector since.
///
/// Neural-style predictors train their counters only when the prediction
/// was wrong *or* the summed confidence fell below a threshold θ. The
/// right θ is workload-dependent, so it is adapted at run time: a
/// saturating counter `tc` counts mispredictions up (θ was too small) and
/// low-confidence correct predictions down (θ was too large), nudging θ
/// whenever it saturates.
///
/// ```
/// use bp_components::AdaptiveThreshold;
/// let mut t = AdaptiveThreshold::new(6, 127);
/// assert!(t.should_update(3, false)); // |sum| below theta
/// assert!(t.should_update(1_000, true)); // mispredictions always train
/// assert!(!t.should_update(1_000, false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveThreshold {
    theta: i32,
    theta_max: i32,
    tc: i16,
    tc_sat: i16,
}

impl AdaptiveThreshold {
    /// Creates a threshold initialized to `initial_theta` and bounded by
    /// `theta_max`; the adaptation counter saturates at ±64.
    ///
    /// # Panics
    ///
    /// Panics if `initial_theta` is negative or exceeds `theta_max`.
    pub fn new(initial_theta: i32, theta_max: i32) -> Self {
        assert!(
            (0..=theta_max).contains(&initial_theta),
            "initial theta out of range"
        );
        AdaptiveThreshold {
            theta: initial_theta,
            theta_max,
            tc: 0,
            tc_sat: 64,
        }
    }

    /// Current threshold θ.
    #[inline]
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Whether the counters should be trained for this branch.
    #[inline]
    pub fn should_update(&self, sum_abs: i32, mispredicted: bool) -> bool {
        mispredicted || sum_abs <= self.theta
    }

    /// Adapts θ from the observed outcome.
    pub fn adapt(&mut self, sum_abs: i32, mispredicted: bool) {
        if mispredicted {
            self.tc += 1;
            if self.tc >= self.tc_sat {
                self.tc = 0;
                if self.theta < self.theta_max {
                    self.theta += 1;
                }
            }
        } else if sum_abs <= self.theta {
            self.tc -= 1;
            if self.tc <= -self.tc_sat {
                self.tc = 0;
                if self.theta > 0 {
                    self.theta -= 1;
                }
            }
        }
    }

    /// Storage cost in bits (θ register + adaptation counter).
    pub fn storage_bits(&self) -> u64 {
        let theta_bits = 32 - self.theta_max.leading_zeros().min(31) as u64;
        theta_bits + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mispredictions_raise_theta() {
        let mut t = AdaptiveThreshold::new(0, 100);
        for _ in 0..64 {
            t.adapt(50, true);
        }
        assert_eq!(t.theta(), 1);
    }

    #[test]
    fn easy_correct_predictions_lower_theta() {
        let mut t = AdaptiveThreshold::new(10, 100);
        for _ in 0..64 {
            t.adapt(0, false);
        }
        assert_eq!(t.theta(), 9);
    }

    #[test]
    fn theta_stays_in_bounds() {
        let mut t = AdaptiveThreshold::new(0, 2);
        for _ in 0..64 * 100 {
            t.adapt(100, true);
        }
        assert_eq!(t.theta(), 2);
        for _ in 0..64 * 100 {
            t.adapt(0, false);
        }
        assert_eq!(t.theta(), 0);
    }

    #[test]
    fn high_confidence_correct_predictions_do_not_adapt() {
        let mut t = AdaptiveThreshold::new(5, 100);
        for _ in 0..1000 {
            t.adapt(50, false);
        }
        assert_eq!(t.theta(), 5);
    }

    #[test]
    #[should_panic(expected = "initial theta")]
    fn rejects_negative_theta() {
        let _ = AdaptiveThreshold::new(-1, 10);
    }

    #[test]
    fn storage_is_nonzero() {
        assert!(AdaptiveThreshold::new(6, 127).storage_bits() > 8);
    }
}
