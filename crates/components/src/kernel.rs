//! Hot-path kernels: software prefetch and vector-friendly summation.
//!
//! The neural hosts (GEHL, the hashed perceptron, the TAGE statistical
//! corrector) compute their prediction as the sign of a sum of centered
//! counter reads. The reads are mutually independent, so the hot path
//! splits into an *index phase* (compute every table index), a prefetch
//! of every selected row, a *gather* of the raw counter values, and a
//! flat summation over the gathered values — this module provides the
//! last two pieces.
//!
//! Bit-identity: a centered read contributes `2c + 1`, so a sum of `n`
//! reads equals `2·Σc + n`; `i32` addition is associative and the
//! counter values span at most `[-64, 63]`, so reordering, chunking, or
//! vectorizing the accumulation cannot change the result. The SSE2 path
//! is therefore exactly equivalent to [`sum_i8_reference`], which the
//! property tests re-prove on arbitrary inputs.

/// Issues a best-effort read prefetch for `data[index]`'s cache line.
///
/// A prefetch is only a *hint* to the memory system: it has no
/// architectural effect, so issuing one (with any index, even a stale
/// or wrong one) can never change simulation results. Out-of-range
/// indices are ignored. Compiles to nothing on non-x86_64 targets.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < data.len() {
        // SAFETY: the pointer is in bounds and prefetch does not
        // dereference it architecturally.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(index) as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

/// Sums gathered counter values exactly, `i32`-widened.
///
/// Dispatches to the SSE2 kernel where the target guarantees it (SSE2
/// is baseline on x86_64, so a `cfg` check is a complete runtime
/// detection there) and to the chunked scalar reference elsewhere.
#[inline]
pub fn sum_i8(values: &[i8]) -> i32 {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    {
        sum_i8_sse2(values)
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        sum_i8_reference(values)
    }
}

/// The sum of `n` centered reads `Σ(2c + 1) = 2·Σc + n` over the
/// gathered raw counter values.
#[inline]
pub fn sum_centered(values: &[i8]) -> i32 {
    2 * sum_i8(values) + values.len() as i32
}

/// [`sum_centered`] over the first `n` values of a gather buffer whose
/// tail is still zero: rounds the summed slice up to the 16-lane SIMD
/// chunk so short hosts (the 8-table hashed perceptron, the 17-table
/// GEHL) take the vector path instead of falling entirely into the
/// scalar remainder. Zero lanes contribute nothing to `Σc`, so this is
/// exactly `sum_centered(&values[..n])`.
#[inline]
pub fn sum_centered_padded(values: &[i8], n: usize) -> i32 {
    debug_assert!(n <= values.len());
    debug_assert!(values[n..].iter().all(|&v| v == 0), "dirty pad lanes");
    let padded = n.next_multiple_of(16).min(values.len());
    2 * sum_i8(&values[..padded.max(n)]) + n as i32
}

/// Scalar reference summation: fixed-stride chunks of eight with an
/// `i32` accumulator per chunk — the autovectorization-friendly shape,
/// and the ground truth the SSE2 kernel is property-tested against.
#[inline]
pub fn sum_i8_reference(values: &[i8]) -> i32 {
    let mut chunks = values.chunks_exact(8);
    let mut sum = 0i32;
    for chunk in &mut chunks {
        let mut s = 0i32;
        for &v in chunk {
            s += i32::from(v);
        }
        sum += s;
    }
    for &v in chunks.remainder() {
        sum += i32::from(v);
    }
    sum
}

/// Explicit SSE2 kernel: 16 lanes per step, sign-extended to i16 and
/// pair-summed into four i32 accumulators with `madd`, horizontally
/// reduced at the end. Exact — every intermediate fits its lane width.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
fn sum_i8_sse2(values: &[i8]) -> i32 {
    use core::arch::x86_64::*;
    let mut chunks = values.chunks_exact(16);
    // SAFETY: SSE2 is statically available (cfg-gated); loads are
    // unaligned (`loadu`) from in-bounds 16-byte chunks.
    let mut sum = unsafe {
        let zero = _mm_setzero_si128();
        let ones = _mm_set1_epi16(1);
        let mut acc = zero;
        for chunk in &mut chunks {
            let v = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
            // Sign-extend i8 → i16 by interleaving with the sign mask.
            let sign = _mm_cmpgt_epi8(zero, v);
            let lo = _mm_unpacklo_epi8(v, sign);
            let hi = _mm_unpackhi_epi8(v, sign);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, ones));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, ones));
        }
        let folded = _mm_add_epi32(acc, _mm_unpackhi_epi64(acc, acc));
        let folded = _mm_add_epi32(folded, _mm_shuffle_epi32::<0b01>(folded));
        _mm_cvtsi128_si32(folded)
    };
    for &v in chunks.remainder() {
        sum += i32::from(v);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton_sums() {
        assert_eq!(sum_i8(&[]), 0);
        assert_eq!(sum_i8(&[5]), 5);
        assert_eq!(sum_i8(&[-128]), -128);
        assert_eq!(sum_centered(&[]), 0);
        assert_eq!(sum_centered(&[0]), 1);
        // (2c + 1) per counter: (-2 + 1) + (4 + 1).
        assert_eq!(sum_centered(&[-1, 2]), 4);
    }

    #[test]
    fn extreme_values_do_not_overflow_lanes() {
        // 64 tables of saturated 7-bit counters is far beyond any real
        // host; i16 pair-sums peak at 2 × -128 = -256, well in range.
        let vals = [-128i8; 64];
        assert_eq!(sum_i8(&vals), -128 * 64);
        assert_eq!(sum_i8_reference(&vals), -128 * 64);
        let vals = [127i8; 33];
        assert_eq!(sum_i8(&vals), 127 * 33);
    }

    #[test]
    fn prefetch_is_safe_for_any_index() {
        let data = [1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 3); // out of range: ignored
        prefetch_read(&data, usize::MAX);
        let empty: [u8; 0] = [];
        prefetch_read(&empty, 0);
    }

    proptest! {
        /// The dispatching kernel (SSE2 on x86_64) must equal the scalar
        /// reference for arbitrary lengths and values — including the
        /// chunk remainder boundary cases.
        #[test]
        fn kernel_matches_reference(values in proptest::collection::vec(any::<i8>(), 0..200)) {
            prop_assert_eq!(sum_i8(&values), sum_i8_reference(&values));
            let naive: i32 = values.iter().map(|&v| 2 * i32::from(v) + 1).sum();
            prop_assert_eq!(sum_centered(&values), naive);
        }

        /// The padded form must equal the exact-slice form for every
        /// prefix length of a zero-tailed buffer.
        #[test]
        fn padded_sum_matches_exact(values in proptest::collection::vec(any::<i8>(), 0..64), pad in 0usize..80) {
            let mut buf = values.clone();
            buf.resize(values.len() + pad, 0);
            prop_assert_eq!(sum_centered_padded(&buf, values.len()), sum_centered(&values));
        }
    }
}
