//! The block drive mode of the simulator's hot loop.
//!
//! Trace-driven simulation has a *purity invariant*: every table-index
//! input — global/path folded history, IMLI counters, local histories —
//! evolves as a pure function of `(PC, outcome)` taken straight from
//! the trace. Predictions influence counters, usefulness bits, and
//! allocation decisions, but those are *gather targets*, never index
//! inputs. A front-end can therefore advance the index inputs ahead of
//! the commit loop, capture every upcoming branch's table addresses and
//! pure context as it goes, and issue prefetches many branches early —
//! without changing a single predicted bit, and without duplicating the
//! history-fold work (the dominant index-generation cost runs once per
//! branch, exactly as in the scalar loop, just earlier).
//!
//! [`DriveMode`] selects between the two bit-identical drive loops:
//!
//! * [`Pipelined`](DriveMode::Pipelined) (default) — per chunk of
//!   [`DEFAULT_PIPELINE_DEPTH`] records, a front-end pass computes each
//!   branch's index/tag streams into pre-sized scratch, hints their
//!   table rows, and advances the architectural index inputs; the
//!   back-end pass then predicts through the precomputed addresses and
//!   performs the prediction-dependent training, in trace order.
//! * [`Scalar`](DriveMode::Scalar) — the reference loop: one branch at
//!   a time, indices computed at lookup, one-record lookahead prefetch
//!   only. The escape hatch for equivalence cross-checks (CI drives a
//!   small grid in both modes and compares the JSON byte-for-byte) and
//!   for predictors that never opt in.
//!
//! Predictors that cannot pipeline (no overridden
//! [`run_block`](crate::ConditionalPredictor::run_block)) run the
//! scalar protocol in either mode, so `DriveMode` is purely a
//! performance knob — the determinism tests pin that it can never
//! change a result.

/// How the simulator drives a predictor through a block of records.
///
/// Both modes implement the identical CBP protocol and produce
/// bit-identical results for every registry configuration (pinned by
/// `tests/pipelined_equivalence.rs` and the CI grid cmp); they differ
/// only in when table addresses are computed and prefetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriveMode {
    /// Reference per-record loop: compute indices at lookup time,
    /// prefetch at most one branch ahead.
    Scalar,
    /// Decoupled front-end/back-end block loop: the index inputs run
    /// [`pipeline depth`](DEFAULT_PIPELINE_DEPTH) branches ahead of the
    /// commit loop, precomputing and prefetching table addresses.
    #[default]
    Pipelined,
}

impl DriveMode {
    /// Parses a CLI spelling (`"scalar"` / `"pipelined"`).
    pub fn parse(s: &str) -> Option<DriveMode> {
        match s {
            "scalar" => Some(DriveMode::Scalar),
            "pipelined" => Some(DriveMode::Pipelined),
            _ => None,
        }
    }

    /// The CLI spelling of this mode.
    pub fn label(self) -> &'static str {
        match self {
            DriveMode::Scalar => "scalar",
            DriveMode::Pipelined => "pipelined",
        }
    }
}

/// Default pipeline distance D: how many branches the front-end plans
/// (and prefetches) ahead of the commit loop. 16 sits on the flat top
/// of the sweep recorded in `BENCH_sim.json` — deep enough to cover
/// DRAM latency for the 12-bank TAGE gather, shallow enough that the
/// planned rows are still cache-resident at commit.
pub const DEFAULT_PIPELINE_DEPTH: usize = 16;

/// Upper bound on the pipeline distance; per-predictor plan scratch is
/// pre-sized to this at construction so
/// [`set_pipeline_depth`](crate::ConditionalPredictor::set_pipeline_depth)
/// never allocates.
pub const MAX_PIPELINE_DEPTH: usize = 64;

/// Clamps a requested pipeline distance into the supported range.
#[inline]
pub fn clamp_pipeline_depth(depth: usize) -> usize {
    depth.clamp(1, MAX_PIPELINE_DEPTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pipelined() {
        assert_eq!(DriveMode::default(), DriveMode::Pipelined);
    }

    #[test]
    fn parse_round_trips_labels() {
        for mode in [DriveMode::Scalar, DriveMode::Pipelined] {
            assert_eq!(DriveMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(DriveMode::parse("warp"), None);
    }

    #[test]
    fn depth_clamps_to_supported_range() {
        assert_eq!(clamp_pipeline_depth(0), 1);
        assert_eq!(clamp_pipeline_depth(16), 16);
        assert_eq!(clamp_pipeline_depth(10_000), MAX_PIPELINE_DEPTH);
    }
}
