//! Prediction attribution: *which* component of a composed predictor
//! provided each prediction.
//!
//! The paper's evaluation is a set of ablation tables — the interesting
//! question is never just "what was the MPKI" but "which component
//! earned its storage". Every [`crate::ConditionalPredictor`] can
//! therefore report, per prediction, the providing component, what the
//! alternate path would have predicted, and a coarse confidence bucket,
//! through [`ConditionalPredictor::predict_attributed`].
//!
//! Attribution is strictly opt-in: the hot grid path keeps calling
//! [`predict`], which does not construct (or store) attribution state,
//! so instrumentation costs nothing unless a report asks for it. The
//! workspace guarantees (and property-tests) that the attributed and
//! plain paths produce bit-identical predictions.
//!
//! [`predict`]: crate::ConditionalPredictor::predict
//! [`ConditionalPredictor::predict_attributed`]:
//! crate::ConditionalPredictor::predict_attributed

/// The component of a (possibly composed) predictor that provided the
/// final prediction of one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProviderComponent {
    /// The predictor does not implement attribution (the trait default).
    Unattributed,
    /// A PC-indexed base table (the TAGE bimodal base, or the single
    /// table of `bimodal`/`gshare`).
    Base,
    /// TAGE tagged bank `0..n` (0 = shortest history); the bank whose
    /// prediction was actually used, which is the alternate bank when
    /// the `use_alt_on_na` policy overrode a weak new allocation.
    Tagged(u8),
    /// The statistical corrector reverted the TAGE prediction.
    Corrector,
    /// A neural adder-tree sum (GEHL / hashed perceptron), including any
    /// IMLI components folded into the summation.
    Neural,
    /// A confident loop-predictor override.
    Loop,
    /// A confident wormhole side-predictor override.
    Wormhole,
}

impl ProviderComponent {
    /// Coarse aggregation key: tagged banks collapse onto `"tagged"` so
    /// summaries stay readable (the per-bank detail remains in the
    /// enum for callers that want it).
    pub fn key(&self) -> &'static str {
        match self {
            ProviderComponent::Unattributed => "unattributed",
            ProviderComponent::Base => "base",
            ProviderComponent::Tagged(_) => "tagged",
            ProviderComponent::Corrector => "corrector",
            ProviderComponent::Neural => "neural",
            ProviderComponent::Loop => "loop",
            ProviderComponent::Wormhole => "wormhole",
        }
    }
}

/// Coarse confidence of the providing component at prediction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConfidenceBucket {
    /// Weak: a weak counter state or a sum well below the threshold.
    Low,
    /// A sum between half the adaptive threshold and the threshold.
    Medium,
    /// A confident counter or a sum at/above the adaptive threshold.
    High,
}

impl ConfidenceBucket {
    /// Buckets a neural sum magnitude against the host's adaptive
    /// update threshold θ: at/above θ is [`High`](Self::High), at/above
    /// θ/2 is [`Medium`](Self::Medium), else [`Low`](Self::Low).
    pub fn from_sum(sum_abs: i32, theta: i32) -> Self {
        if sum_abs >= theta.max(1) {
            ConfidenceBucket::High
        } else if 2 * sum_abs >= theta {
            ConfidenceBucket::Medium
        } else {
            ConfidenceBucket::Low
        }
    }

    /// Buckets a saturating counter: weak states are
    /// [`Low`](Self::Low), saturated states [`High`](Self::High),
    /// everything between [`Medium`](Self::Medium).
    pub fn from_counter(confidence: u8, max_confidence: u8) -> Self {
        if confidence == 0 {
            ConfidenceBucket::Low
        } else if confidence >= max_confidence {
            ConfidenceBucket::High
        } else {
            ConfidenceBucket::Medium
        }
    }

    /// Stable lower-case label (`"low"`, `"medium"`, `"high"`).
    pub fn label(&self) -> &'static str {
        match self {
            ConfidenceBucket::Low => "low",
            ConfidenceBucket::Medium => "medium",
            ConfidenceBucket::High => "high",
        }
    }
}

/// Attribution of one prediction: who provided it, what the losing path
/// would have said, how confident the provider was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictionAttribution {
    /// The component that provided the final prediction.
    pub component: ProviderComponent,
    /// What the alternate path would have predicted: the TAGE alternate
    /// bank under a tagged provider, the TAGE prediction under a
    /// corrector revert, the subsumed main prediction under a loop or
    /// wormhole override. `None` when no meaningful alternate exists
    /// (single-table predictors, pure neural sums).
    pub alternate: Option<bool>,
    /// Confidence bucket of the provider at prediction time.
    pub confidence: ConfidenceBucket,
}

impl PredictionAttribution {
    /// The attribution reported by predictors that do not implement the
    /// channel.
    pub fn unattributed() -> Self {
        PredictionAttribution {
            component: ProviderComponent::Unattributed,
            alternate: None,
            confidence: ConfidenceBucket::Low,
        }
    }

    /// Convenience constructor.
    pub fn new(
        component: ProviderComponent,
        alternate: Option<bool>,
        confidence: ConfidenceBucket,
    ) -> Self {
        PredictionAttribution {
            component,
            alternate,
            confidence,
        }
    }

    /// Classifies one resolved, attributed prediction into the
    /// provider/save/loss split every tally in the workspace uses
    /// (the suite report's per-component summary and the scenario
    /// layer's per-tenant tallies share this single definition, so the
    /// split cannot drift between them):
    ///
    /// * a **save** is a correct prediction whose alternate path would
    ///   have been wrong — the provider earned its storage on this
    ///   branch;
    /// * a **loss** is the reverse: the provider overrode a correct
    ///   alternate. Both require a meaningful alternate
    ///   ([`alternate`](Self::alternate) is `Some`).
    pub fn classify(&self, pred: bool, taken: bool) -> AttributionOutcome {
        let correct = pred == taken;
        let (save, loss) = match self.alternate {
            Some(alt) => {
                let alt_correct = alt == taken;
                (correct && !alt_correct, !correct && alt_correct)
            }
            None => (false, false),
        };
        AttributionOutcome {
            correct,
            high_confidence: self.confidence == ConfidenceBucket::High,
            save,
            loss,
        }
    }
}

/// The classification of one attributed prediction against its resolved
/// outcome — see [`PredictionAttribution::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionOutcome {
    /// The provided prediction matched the resolved direction.
    pub correct: bool,
    /// The provider reported [`ConfidenceBucket::High`].
    pub high_confidence: bool,
    /// Correct while the alternate path would have been wrong.
    pub save: bool,
    /// Wrong while the alternate path would have been correct.
    pub loss: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_collapse_banks() {
        assert_eq!(ProviderComponent::Tagged(0).key(), "tagged");
        assert_eq!(ProviderComponent::Tagged(11).key(), "tagged");
        assert_eq!(ProviderComponent::Base.key(), "base");
        assert_eq!(ProviderComponent::Unattributed.key(), "unattributed");
    }

    #[test]
    fn sum_buckets_follow_theta() {
        assert_eq!(ConfidenceBucket::from_sum(20, 10), ConfidenceBucket::High);
        assert_eq!(ConfidenceBucket::from_sum(10, 10), ConfidenceBucket::High);
        assert_eq!(ConfidenceBucket::from_sum(6, 10), ConfidenceBucket::Medium);
        assert_eq!(ConfidenceBucket::from_sum(2, 10), ConfidenceBucket::Low);
        // A zero theta never divides by zero and saturates to High.
        assert_eq!(ConfidenceBucket::from_sum(1, 0), ConfidenceBucket::High);
    }

    #[test]
    fn counter_buckets() {
        assert_eq!(ConfidenceBucket::from_counter(0, 3), ConfidenceBucket::Low);
        assert_eq!(
            ConfidenceBucket::from_counter(1, 3),
            ConfidenceBucket::Medium
        );
        assert_eq!(ConfidenceBucket::from_counter(3, 3), ConfidenceBucket::High);
    }

    #[test]
    fn unattributed_default_shape() {
        let a = PredictionAttribution::unattributed();
        assert_eq!(a.component, ProviderComponent::Unattributed);
        assert_eq!(a.alternate, None);
        assert_eq!(a.confidence.label(), "low");
    }

    #[test]
    fn classify_save_loss_split() {
        let with_alt = |alt| {
            PredictionAttribution::new(
                ProviderComponent::Tagged(3),
                Some(alt),
                ConfidenceBucket::High,
            )
        };
        // Provider right, alternate wrong: a save.
        let o = with_alt(false).classify(true, true);
        assert!(o.correct && o.save && !o.loss && o.high_confidence);
        // Provider wrong, alternate right: a loss.
        let o = with_alt(true).classify(false, true);
        assert!(!o.correct && !o.save && o.loss);
        // Both agree: neither save nor loss.
        let o = with_alt(true).classify(true, true);
        assert!(o.correct && !o.save && !o.loss);
        // No alternate: never a save or loss, whatever the outcome.
        let o = PredictionAttribution::unattributed().classify(false, true);
        assert!(!o.correct && !o.save && !o.loss && !o.high_confidence);
    }
}
