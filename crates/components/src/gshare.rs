//! GShare: the classic global-history XOR-indexed predictor.

use crate::attribution::{ConfidenceBucket, PredictionAttribution, ProviderComponent};
use crate::budget::{StorageBudget, StorageItem};
use crate::counter::SaturatingCounter;
use crate::hash::pc_bits;
use crate::predictor::ConditionalPredictor;
use bp_history::GlobalHistory;
use bp_trace::BranchRecord;

/// GShare (McFarling 1993): a single table of 2-bit counters indexed by
/// `PC ⊕ global history`. Included as a calibration baseline — any
/// benchmark where TAGE fails to beat GShare decisively indicates a
/// degenerate workload.
///
/// ```
/// use bp_components::{ConditionalPredictor, GShare};
/// let mut p = GShare::new(14, 12);
/// assert!(p.predict(0x400)); // optimistic reset state
/// ```
#[derive(Debug, Clone)]
pub struct GShare {
    counters: Vec<SaturatingCounter>,
    history: GlobalHistory,
    history_len: usize,
    mask: u64,
    name: String,
}

impl GShare {
    /// Creates a GShare with `2^log_entries` counters and
    /// `history_len` history bits.
    ///
    /// # Panics
    ///
    /// Panics if `log_entries` is 0 or greater than 28, or if
    /// `history_len` is greater than 64.
    pub fn new(log_entries: usize, history_len: usize) -> Self {
        assert!((1..=28).contains(&log_entries), "log_entries out of range");
        assert!(history_len <= 64, "history_len must be at most 64");
        let entries = 1usize << log_entries;
        GShare {
            counters: vec![SaturatingCounter::new(2); entries],
            history: GlobalHistory::new(1024),
            history_len,
            mask: entries as u64 - 1,
            name: format!("gshare-{log_entries}x{history_len}"),
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc_bits(pc) ^ self.history.low_bits(self.history_len)) & self.mask) as usize
    }
}

impl ConditionalPredictor for GShare {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)].is_taken()
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let c = self.counters[self.index(pc)];
        (
            c.is_taken(),
            PredictionAttribution::new(
                ProviderComponent::Base,
                None,
                ConfidenceBucket::from_counter(c.confidence(), c.max() as u8),
            ),
        )
    }

    fn update(&mut self, record: &BranchRecord) {
        let idx = self.index(record.pc);
        self.counters[idx].train(record.taken);
        self.history.push(record.taken);
    }

    fn flush_history(&mut self) {
        self.history.flush();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl StorageBudget for GShare {
    fn storage_items(&self) -> Vec<StorageItem> {
        vec![
            StorageItem::new("gshare-table", self.counters.len() as u64 * 2),
            StorageItem::new("gshare-history", self.history_len as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_history_correlated_branch() {
        // Branch outcome == outcome of previous branch: gshare separates
        // the two history contexts and learns both.
        let mut p = GShare::new(10, 8);
        let pc = 0x4040;
        let mut last = true;
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let taken = last;
            let pred = p.predict(pc);
            if pred == taken {
                correct += 1;
            }
            p.update(&BranchRecord::conditional(pc, 0x4000, taken));
            last = i % 7 < 3;
        }
        assert!(
            correct > total * 8 / 10,
            "gshare should track history correlation, got {correct}/{total}"
        );
    }

    #[test]
    fn storage_and_name() {
        let p = GShare::new(12, 16);
        assert_eq!(p.storage_bits(), (1 << 12) * 2 + 16);
        assert_eq!(p.name(), "gshare-12x16");
    }

    #[test]
    #[should_panic(expected = "log_entries")]
    fn rejects_zero_entries() {
        let _ = GShare::new(0, 4);
    }
}
