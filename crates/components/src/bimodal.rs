//! Bimodal (PC-indexed) prediction tables.

use crate::attribution::{ConfidenceBucket, PredictionAttribution, ProviderComponent};
use crate::budget::{StorageBudget, StorageItem};
use crate::counter::SaturatingCounter;
use crate::hash::pc_bits;
use crate::predictor::ConditionalPredictor;
use bp_trace::BranchRecord;

/// A PC-indexed table of 2-bit saturating counters with shared hysteresis,
/// as used for the TAGE base predictor: each entry stores its own
/// *direction* bit while groups of four entries share one *hysteresis*
/// bit, halving storage at negligible accuracy cost.
#[derive(Debug, Clone)]
pub struct BimodalTable {
    direction: Vec<bool>,
    hysteresis: Vec<bool>,
    mask: u64,
}

impl BimodalTable {
    /// Hysteresis sharing factor (entries per hysteresis bit).
    pub const HYST_SHARE: usize = 4;

    /// Creates a table with `entries` direction bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is smaller than
    /// [`BimodalTable::HYST_SHARE`].
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries >= Self::HYST_SHARE,
            "entries must be a power of two >= {}",
            Self::HYST_SHARE
        );
        BimodalTable {
            direction: vec![true; entries],
            hysteresis: vec![false; entries / Self::HYST_SHARE],
            mask: entries as u64 - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (pc_bits(pc) & self.mask) as usize
    }

    /// Predicted direction for `pc`.
    #[inline]
    pub fn predict(&self, pc: u64) -> bool {
        self.direction[self.index(pc)]
    }

    /// Issues a read prefetch for `pc`'s direction row (a pure hint).
    #[inline]
    pub fn prefetch(&self, pc: u64) {
        crate::kernel::prefetch_read(&self.direction, self.index(pc));
    }

    /// Trains toward `taken` with shared-hysteresis 2-bit dynamics.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let hidx = idx / Self::HYST_SHARE;
        let dir = self.direction[idx];
        let hyst = self.hysteresis[hidx];
        if taken == dir {
            // Correct direction: strengthen.
            self.hysteresis[hidx] = true;
        } else if hyst {
            // Strong state: weaken first.
            self.hysteresis[hidx] = false;
        } else {
            // Weak state: flip direction.
            self.direction[idx] = taken;
        }
    }

    /// Number of direction entries.
    pub fn len(&self) -> usize {
        self.direction.len()
    }

    /// Whether the table has zero entries (never; constructor enforces).
    pub fn is_empty(&self) -> bool {
        self.direction.is_empty()
    }

    /// Storage in bits: one direction bit per entry plus shared
    /// hysteresis.
    pub fn storage_bits(&self) -> u64 {
        (self.direction.len() + self.hysteresis.len()) as u64
    }
}

/// A standalone bimodal predictor (Smith 1981): the classic baseline, one
/// full 2-bit counter per entry.
///
/// ```
/// use bp_components::{Bimodal, ConditionalPredictor};
/// use bp_trace::BranchRecord;
/// let mut p = Bimodal::new(4096);
/// let r = BranchRecord::conditional(0x40, 0x20, false);
/// p.predict(r.pc);
/// p.update(&r);
/// p.predict(r.pc);
/// p.update(&r);
/// assert!(!p.predict(r.pc), "learned the not-taken bias");
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<SaturatingCounter>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Bimodal {
            counters: vec![SaturatingCounter::new(2); entries],
            mask: entries as u64 - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (pc_bits(pc) & self.mask) as usize
    }
}

impl ConditionalPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)].is_taken()
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let c = self.counters[self.index(pc)];
        (
            c.is_taken(),
            PredictionAttribution::new(
                ProviderComponent::Base,
                None,
                ConfidenceBucket::from_counter(c.confidence(), c.max() as u8),
            ),
        )
    }

    fn update(&mut self, record: &BranchRecord) {
        let idx = self.index(record.pc);
        self.counters[idx].train(record.taken);
    }

    fn name(&self) -> &str {
        "bimodal"
    }
}

impl StorageBudget for Bimodal {
    fn storage_items(&self) -> Vec<StorageItem> {
        vec![StorageItem::new("bimodal", self.counters.len() as u64 * 2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(64);
        let r = BranchRecord::conditional(0x80, 0x40, false);
        for _ in 0..4 {
            let _ = p.predict(r.pc);
            p.update(&r);
        }
        assert!(!p.predict(r.pc));
        assert_eq!(p.storage_bits(), 128);
    }

    #[test]
    fn shared_hysteresis_dynamics() {
        let mut t = BimodalTable::new(16);
        // Initial state: direction taken, weak.
        assert!(t.predict(0));
        t.update(0, false); // weak -> flip
        assert!(!t.predict(0));
        t.update(0, false); // strengthen
        t.update(0, true); // strong -> weaken only
        assert!(!t.predict(0));
        t.update(0, true); // weak -> flip
        assert!(t.predict(0));
    }

    #[test]
    fn hysteresis_is_shared_between_neighbours() {
        let mut t = BimodalTable::new(16);
        // Entries 0..4 share one hysteresis bit. Strengthen via entry 0
        // (pc 0 -> idx 0), then observe entry 1 (pc 4 -> idx 1) needs two
        // updates to flip because the shared bit is strong.
        t.update(0 << 2, true); // strengthen shared hysteresis
        t.update(1 << 2, false); // strong: weaken only
        assert!(t.predict(1 << 2));
        t.update(1 << 2, false); // weak: flip
        assert!(!t.predict(1 << 2));
    }

    #[test]
    fn storage_accounts_shared_hysteresis() {
        let t = BimodalTable::new(1024);
        assert_eq!(t.storage_bits(), 1024 + 256);
        assert_eq!(t.len(), 1024);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn table_rejects_bad_sizes() {
        let _ = BimodalTable::new(12);
    }
}
