//! Exact storage-budget accounting.
//!
//! The paper's comparisons only make sense *at a fixed storage budget*
//! (its Tables 1 and 2 quote every configuration in Kbits). Ad-hoc
//! per-crate `storage_bits` methods make it too easy for a config tweak
//! to silently change the budget, so every predictor implements
//! [`StorageBudget`] and itemizes its cost table-by-table; the total is
//! always the sum of the items, and report tooling can print the same
//! breakdown the paper's budget paragraphs walk through.

use std::fmt;

/// One named storage item — a table, register file, or register — with
/// its exact cost in bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageItem {
    /// Hierarchical label, e.g. `"tage/tagged[3]"` or `"sc/imli-sic"`.
    pub label: String,
    /// Exact cost in bits.
    pub bits: u64,
}

impl StorageItem {
    /// Builds one item.
    pub fn new(label: impl Into<String>, bits: u64) -> Self {
        StorageItem {
            label: label.into(),
            bits,
        }
    }

    /// Returns the item with `prefix/` prepended to its label — used by
    /// composed predictors to namespace sub-component breakdowns.
    #[must_use]
    pub fn prefixed(mut self, prefix: &str) -> Self {
        self.label = format!("{prefix}/{}", self.label);
        self
    }
}

impl fmt::Display for StorageItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} bits", self.label, self.bits)
    }
}

/// Exact, itemized storage accounting.
///
/// Implementors enumerate every storage structure they own; the
/// provided [`storage_bits`](StorageBudget::storage_bits) total is
/// always consistent with the itemization by construction.
pub trait StorageBudget {
    /// Every table/register group with its exact bit cost, in a stable
    /// deterministic order.
    fn storage_items(&self) -> Vec<StorageItem>;

    /// Total predictor storage in bits (tables + histories), for the
    /// paper's budget comparisons. Always the sum of
    /// [`storage_items`](StorageBudget::storage_items).
    fn storage_bits(&self) -> u64 {
        self.storage_items().iter().map(|i| i.bits).sum()
    }

    /// Total storage in Kbit, the unit the paper quotes.
    fn storage_kbit(&self) -> f64 {
        self.storage_bits() as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoTables;
    impl StorageBudget for TwoTables {
        fn storage_items(&self) -> Vec<StorageItem> {
            vec![StorageItem::new("a", 1024), StorageItem::new("b", 3 * 1024)]
        }
    }

    #[test]
    fn total_is_item_sum() {
        let t = TwoTables;
        assert_eq!(t.storage_bits(), 4096);
        assert!((t.storage_kbit() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn prefixing_and_display() {
        let item = StorageItem::new("tagged[3]", 7).prefixed("tage");
        assert_eq!(item.label, "tage/tagged[3]");
        assert_eq!(format!("{item}"), "tage/tagged[3]: 7 bits");
    }
}
