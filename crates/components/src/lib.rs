//! Branch predictor building blocks.
//!
//! This crate defines the pieces every predictor in the workspace is
//! assembled from:
//!
//! * [`SaturatingCounter`] — the ubiquitous n-bit signed confidence
//!   counter;
//! * [`ConditionalPredictor`] — the trait the simulator drives
//!   (CBP-style `predict`/`update` protocol) plus storage accounting;
//! * [`BimodalTable`] and the [`Bimodal`]/[`GShare`] reference predictors;
//! * [`LoopPredictor`] — the Intel-style loop-exit predictor (paper
//!   §2.2.1), also used by the wormhole predictor to learn trip counts;
//! * [`AdaptiveThreshold`] — the O-GEHL dynamic update threshold shared by
//!   GEHL and the statistical corrector;
//! * [`SumComponent`]/[`SumCtx`] — the adder-tree abstraction of
//!   neural-inspired predictors. The IMLI components of the paper are
//!   `SumComponent`s added to a host's summation (paper Figures 5 and 6);
//! * [`StorageBudget`]/[`StorageItem`] — exact per-table storage
//!   accounting behind the paper's fixed-budget comparisons;
//! * [`PredictionAttribution`]/[`ProviderComponent`] — the opt-in
//!   instrumentation channel reporting which component provided each
//!   prediction (consumed by `bp-sim`'s report layer);
//! * [`PredictorConfig`]/[`ConfigValue`] — the typed configuration
//!   layer: every predictor family is buildable, validatable, and
//!   serializable from data (consumed by `bp-sim`'s registry and its
//!   budget-sweep solver), with [`BimodalConfig`] and [`GShareConfig`]
//!   covering the baselines defined in this crate.

#![warn(missing_docs)]

mod attribution;
mod bimodal;
mod budget;
mod config;
mod counter;
mod gshare;
mod hash;
mod kernel;
mod loop_pred;
mod pipeline;
mod predictor;
mod sum;
mod threshold;

pub use attribution::{
    AttributionOutcome, ConfidenceBucket, PredictionAttribution, ProviderComponent,
};
pub use bimodal::{Bimodal, BimodalTable};
pub use budget::{StorageBudget, StorageItem};
pub use config::{
    json_string, BimodalConfig, ConfigError, ConfigValue, GShareConfig, PredictorConfig,
};
pub use counter::SaturatingCounter;
pub use gshare::GShare;
pub use hash::{fold_u64, mix64, pc_bits};
pub use kernel::{prefetch_read, sum_centered, sum_centered_padded, sum_i8, sum_i8_reference};
pub use loop_pred::{LoopPrediction, LoopPredictor, LoopPredictorConfig};
pub use pipeline::{clamp_pipeline_depth, DriveMode, DEFAULT_PIPELINE_DEPTH, MAX_PIPELINE_DEPTH};
pub use predictor::{AlwaysTaken, ConditionalPredictor, PredictorStats};
pub use sum::{CounterBank, SignedCounterTable, SumComponent, SumCtx};
pub use threshold::AdaptiveThreshold;
