//! Index-hashing helpers shared by all table-based predictors.

/// A strong 64-bit mixer (the `splitmix64` finalizer). Deterministic and
/// dependency-free; used to disperse PCs and history values into table
/// indices.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// XOR-folds a 64-bit value down to `bits` bits.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 63.
#[inline]
pub fn fold_u64(mut x: u64, bits: usize) -> u64 {
    assert!((1..=63).contains(&bits), "fold width must be in 1..=63");
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    while x != 0 {
        out ^= x & mask;
        x >>= bits;
    }
    out
}

/// Extracts the useful PC bits (dropping instruction-alignment bits), as
/// every predictor indexes on `pc >> 2`-style values.
#[inline]
pub fn pc_bits(pc: u64) -> u64 {
    pc >> 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mix64_is_deterministic_and_disperses() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Single-bit input changes should flip many output bits.
        let d = (mix64(0x1000) ^ mix64(0x1004)).count_ones();
        assert!(d > 10, "poor avalanche: {d} bits");
    }

    #[test]
    fn fold_width_respected() {
        for bits in 1..=63 {
            assert!(fold_u64(u64::MAX, bits) < (1u64 << bits));
        }
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn fold_rejects_zero() {
        let _ = fold_u64(1, 0);
    }

    #[test]
    fn pc_bits_drops_alignment() {
        assert_eq!(pc_bits(0x4004), 0x1001);
    }

    proptest! {
        #[test]
        fn fold_is_xor_of_chunks(x in any::<u64>(), bits in 1usize..=63) {
            let mut expected = 0u64;
            let mask = (1u64 << bits) - 1;
            let mut v = x;
            while v != 0 {
                expected ^= v & mask;
                v >>= bits;
            }
            prop_assert_eq!(fold_u64(x, bits), expected);
        }
    }
}
