//! The neural adder-tree abstraction.
//!
//! GEHL and the TAGE statistical corrector both compute their prediction
//! as the sign of a sum of signed counters read from several tables
//! (paper Figures 5 and 6). [`SumComponent`] is one such table (or group
//! of tables); the paper's IMLI-SIC and IMLI-OH components implement this
//! trait in the `imli` crate and are appended to the host's component
//! vector — literally the paper's "a single table added to the neural
//! component".

use crate::counter::SaturatingCounter;

/// Per-branch context passed to every [`SumComponent`].
///
/// The host predictor fills this once per prediction. It carries every
/// history dimension a component might index with; a component uses the
/// fields relevant to it and ignores the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumCtx {
    /// PC of the branch being predicted.
    pub pc: u64,
    /// The main (TAGE) prediction, for agree/bias-style components.
    /// `false` for hosts without a main predictor (pure GEHL).
    pub main_pred: bool,
    /// Whether the main prediction had low confidence.
    pub main_conf_low: bool,
    /// Low 64 bits of the global direction history (bit 0 = most recent).
    pub ghist: u64,
    /// Packed path history.
    pub path: u64,
    /// Local history of the branch, when the host tracks it (0 otherwise).
    pub local_history: u32,
    /// The IMLI counter value (paper §4.1); 0 when the host does not
    /// track IMLI.
    pub imli_count: u32,
    /// `Out[N-1][M]`: outcome of this branch at the same inner iteration
    /// of the previous outer iteration (from the IMLI outer-history
    /// table).
    pub oh_same: bool,
    /// `Out[N-1][M-1]`: outcome at the previous inner iteration of the
    /// previous outer iteration (from the PIPE vector).
    pub oh_prev: bool,
}

/// A contributor to a neural summation.
///
/// Contributions follow the GEHL convention: a counter `c` contributes
/// `2c + 1`, so a single table never sums to zero and the sign is always
/// defined.
pub trait SumComponent {
    /// Reads this component's contribution for the branch in `ctx`.
    fn read(&self, ctx: &SumCtx) -> i32;

    /// Trains the component toward `taken` for the branch in `ctx`.
    fn train(&mut self, ctx: &SumCtx, taken: bool);

    /// Storage in bits.
    fn storage_bits(&self) -> u64;

    /// Short label for budget breakdowns (e.g. `"imli-sic"`).
    fn label(&self) -> &str;
}

/// A single table of signed saturating counters indexed by an arbitrary
/// hash, contributing `2c + 1` per read: the universal building block of
/// [`SumComponent`]s.
///
/// ```
/// use bp_components::SignedCounterTable;
/// let mut t = SignedCounterTable::new(128, 6);
/// t.train(7, true);
/// assert!(t.read(7) > 0);
/// assert_eq!(t.read(8), 1); // untrained entry contributes +1 (weak taken)
/// ```
#[derive(Debug, Clone)]
pub struct SignedCounterTable {
    counters: Vec<SaturatingCounter>,
    mask: u64,
    bits: u8,
}

impl SignedCounterTable {
    /// Creates a table of `entries` counters of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `bits` is outside
    /// `1..=7`.
    pub fn new(entries: usize, bits: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        SignedCounterTable {
            counters: vec![SaturatingCounter::new(bits); entries],
            mask: entries as u64 - 1,
            bits: bits as u8,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table has zero entries (never; constructor enforces).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Centered read: `2c + 1` for the counter selected by `index`.
    #[inline]
    pub fn read(&self, index: u64) -> i32 {
        let c = &self.counters[(index & self.mask) as usize];
        2 * i32::from(c.value()) + 1
    }

    /// Trains the selected counter toward `taken`.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        self.counters[(index & self.mask) as usize].train(taken);
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * u64::from(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_read_never_zero() {
        let mut t = SignedCounterTable::new(16, 5);
        for i in 0..16u64 {
            assert_ne!(t.read(i), 0);
        }
        for _ in 0..40 {
            t.train(3, false);
        }
        assert_eq!(t.read(3), 2 * -16 + 1);
        for _ in 0..80 {
            t.train(3, true);
        }
        assert_eq!(t.read(3), 2 * 15 + 1);
    }

    #[test]
    fn index_wraps_by_mask() {
        let mut t = SignedCounterTable::new(8, 4);
        t.train(1, false);
        assert_eq!(t.read(9), t.read(1));
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn storage_bits() {
        assert_eq!(SignedCounterTable::new(1024, 6).storage_bits(), 6144);
    }

    #[test]
    fn ctx_default_is_neutral() {
        let ctx = SumCtx::default();
        assert_eq!(ctx.imli_count, 0);
        assert!(!ctx.oh_same && !ctx.oh_prev);
    }
}
