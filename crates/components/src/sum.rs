//! The neural adder-tree abstraction.
//!
//! GEHL and the TAGE statistical corrector both compute their prediction
//! as the sign of a sum of signed counters read from several tables
//! (paper Figures 5 and 6). [`SumComponent`] is one such table (or group
//! of tables); the paper's IMLI-SIC and IMLI-OH components implement this
//! trait in the `imli` crate and are appended to the host's component
//! vector — literally the paper's "a single table added to the neural
//! component".

use crate::counter::SaturatingCounter;

/// Per-branch context passed to every [`SumComponent`].
///
/// The host predictor fills this once per prediction. It carries every
/// history dimension a component might index with; a component uses the
/// fields relevant to it and ignores the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumCtx {
    /// PC of the branch being predicted.
    pub pc: u64,
    /// The main (TAGE) prediction, for agree/bias-style components.
    /// `false` for hosts without a main predictor (pure GEHL).
    pub main_pred: bool,
    /// Whether the main prediction had low confidence.
    pub main_conf_low: bool,
    /// Low 64 bits of the global direction history (bit 0 = most recent).
    pub ghist: u64,
    /// Packed path history.
    pub path: u64,
    /// Local history of the branch, when the host tracks it (0 otherwise).
    pub local_history: u32,
    /// The IMLI counter value (paper §4.1); 0 when the host does not
    /// track IMLI.
    pub imli_count: u32,
    /// `Out[N-1][M]`: outcome of this branch at the same inner iteration
    /// of the previous outer iteration (from the IMLI outer-history
    /// table).
    pub oh_same: bool,
    /// `Out[N-1][M-1]`: outcome at the previous inner iteration of the
    /// previous outer iteration (from the PIPE vector).
    pub oh_prev: bool,
}

/// A contributor to a neural summation.
///
/// Contributions follow the GEHL convention: a counter `c` contributes
/// `2c + 1`, so a single table never sums to zero and the sign is always
/// defined.
pub trait SumComponent {
    /// Reads this component's contribution for the branch in `ctx`.
    fn read(&self, ctx: &SumCtx) -> i32;

    /// Trains the component toward `taken` for the branch in `ctx`.
    fn train(&mut self, ctx: &SumCtx, taken: bool);

    /// Storage in bits.
    fn storage_bits(&self) -> u64;

    /// Short label for budget breakdowns (e.g. `"imli-sic"`).
    fn label(&self) -> &str;
}

/// A single table of signed saturating counters indexed by an arbitrary
/// hash, contributing `2c + 1` per read: the universal building block of
/// [`SumComponent`]s.
///
/// ```
/// use bp_components::SignedCounterTable;
/// let mut t = SignedCounterTable::new(128, 6);
/// t.train(7, true);
/// assert!(t.read(7) > 0);
/// assert_eq!(t.read(8), 1); // untrained entry contributes +1 (weak taken)
/// ```
#[derive(Debug, Clone)]
pub struct SignedCounterTable {
    counters: Vec<SaturatingCounter>,
    mask: u64,
    bits: u8,
}

impl SignedCounterTable {
    /// Creates a table of `entries` counters of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `bits` is outside
    /// `1..=7`.
    // bp-lint: allow-item(hot-path-alloc, "table construction is cold, once per predictor; hot reads/trains index the fixed buffer")
    pub fn new(entries: usize, bits: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        SignedCounterTable {
            counters: vec![SaturatingCounter::new(bits); entries],
            mask: entries as u64 - 1,
            bits: bits as u8,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table has zero entries (never; constructor enforces).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Centered read: `2c + 1` for the counter selected by `index`.
    #[inline]
    pub fn read(&self, index: u64) -> i32 {
        let c = &self.counters[(index & self.mask) as usize];
        2 * i32::from(c.value()) + 1
    }

    /// Trains the selected counter toward `taken`.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        self.counters[(index & self.mask) as usize].train(taken);
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * u64::from(self.bits)
    }
}

/// Several same-geometry counter tables in **one** contiguous
/// allocation: table `t`, entry `j` lives at `(t << log_entries) | j`.
///
/// This is the neural-host twin of the flattened TAGE bank: GEHL, the
/// hashed perceptron, and the statistical corrector read one counter
/// from each of their tables per prediction, and a single backing
/// allocation keeps those mutually independent probes on the same
/// cache-friendly base pointer (and gives the two-phase
/// index/prefetch/gather hot path one slice to prefetch into).
///
/// ```
/// use bp_components::CounterBank;
/// let mut b = CounterBank::new(4, 128, 6);
/// b.train(2, 9, true);
/// assert!(b.read(2, 9) > 0);
/// assert_eq!(b.read(3, 9), 1); // untrained entry contributes +1
/// ```
#[derive(Debug, Clone)]
pub struct CounterBank {
    counters: Vec<SaturatingCounter>,
    log_entries: u32,
    mask: u64,
    bits: u8,
}

impl CounterBank {
    /// Creates `tables` tables of `entries` counters of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `tables` is zero, or
    /// `bits` is outside `1..=7`.
    // bp-lint: allow-item(hot-path-alloc, "bank construction is cold, once per predictor; hot gather/train index the fixed buffer")
    pub fn new(tables: usize, entries: usize, bits: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(tables > 0, "need at least one table");
        CounterBank {
            counters: vec![SaturatingCounter::new(bits); tables * entries],
            log_entries: entries.trailing_zeros(),
            mask: entries as u64 - 1,
            bits: bits as u8,
        }
    }

    /// Number of tables.
    pub fn tables(&self) -> usize {
        self.counters.len() >> self.log_entries
    }

    /// Entries per table.
    pub fn entries(&self) -> usize {
        1 << self.log_entries
    }

    #[inline]
    fn slot(&self, table: usize, index: u64) -> usize {
        (table << self.log_entries) | (index & self.mask) as usize
    }

    /// Raw value of the selected counter.
    #[inline]
    pub fn value(&self, table: usize, index: u64) -> i8 {
        self.counters[self.slot(table, index)].value()
    }

    /// Centered read: `2c + 1` for the counter selected by `index` in
    /// table `table` — identical semantics to
    /// [`SignedCounterTable::read`].
    #[inline]
    pub fn read(&self, table: usize, index: u64) -> i32 {
        2 * i32::from(self.value(table, index)) + 1
    }

    /// Trains the selected counter toward `taken`.
    #[inline]
    pub fn train(&mut self, table: usize, index: u64, taken: bool) {
        let slot = self.slot(table, index);
        self.counters[slot].train(taken);
    }

    /// Gathers one counter value per table: `out[t]` becomes the raw
    /// value of table `t` at `indices[t]`, for the leading
    /// `indices.len()` tables.
    ///
    /// This is the gather phase of the two-phase hot path in one place:
    /// a single up-front bounds assertion covers the whole batch, so
    /// the per-row loop is pure address math and loads — no per-row
    /// bounds checks, which per-table [`CounterBank::value`] calls pay
    /// once each.
    ///
    /// # Panics
    ///
    /// Panics if `indices` names more tables than the bank has or the
    /// lengths of `indices` and `out` differ.
    #[inline]
    pub fn gather(&self, indices: &[u64], out: &mut [i8]) {
        assert!(
            indices.len() <= self.tables() && indices.len() == out.len(),
            "gather of {} rows from a {}-table bank into {} slots",
            indices.len(),
            self.tables(),
            out.len()
        );
        for (t, (&index, out)) in indices.iter().zip(out.iter_mut()).enumerate() {
            let slot = (t << self.log_entries) | (index & self.mask) as usize;
            debug_assert!(slot < self.counters.len());
            // SAFETY: `t < tables()` by the assertion above and the
            // masked index is `< entries()`, so `slot < counters.len()`.
            *out = unsafe { self.counters.get_unchecked(slot) }.value();
        }
    }

    /// Trains one counter per table toward `taken`: table `t` at
    /// `indices[t]`, for the leading `indices.len()` tables — the
    /// batched twin of [`CounterBank::gather`] for the update path.
    ///
    /// # Panics
    ///
    /// Panics if `indices` names more tables than the bank has.
    #[inline]
    pub fn train_all(&mut self, indices: &[u64], taken: bool) {
        assert!(
            indices.len() <= self.tables(),
            "train of {} rows in a {}-table bank",
            indices.len(),
            self.tables()
        );
        for (t, &index) in indices.iter().enumerate() {
            let slot = (t << self.log_entries) | (index & self.mask) as usize;
            debug_assert!(slot < self.counters.len());
            // SAFETY: as in [`CounterBank::gather`].
            unsafe { self.counters.get_unchecked_mut(slot) }.train(taken);
        }
    }

    /// Issues a read prefetch for the selected row (a pure hint; see
    /// [`crate::prefetch_read`]).
    #[inline]
    pub fn prefetch(&self, table: usize, index: u64) {
        crate::prefetch_read(&self.counters, self.slot(table, index));
    }

    /// Storage in bits of one table.
    pub fn table_storage_bits(&self) -> u64 {
        (self.entries() as u64) * u64::from(self.bits)
    }

    /// Storage in bits of the whole bank.
    pub fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * u64::from(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_read_never_zero() {
        let mut t = SignedCounterTable::new(16, 5);
        for i in 0..16u64 {
            assert_ne!(t.read(i), 0);
        }
        for _ in 0..40 {
            t.train(3, false);
        }
        assert_eq!(t.read(3), 2 * -16 + 1);
        for _ in 0..80 {
            t.train(3, true);
        }
        assert_eq!(t.read(3), 2 * 15 + 1);
    }

    #[test]
    fn index_wraps_by_mask() {
        let mut t = SignedCounterTable::new(8, 4);
        t.train(1, false);
        assert_eq!(t.read(9), t.read(1));
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn storage_bits() {
        assert_eq!(SignedCounterTable::new(1024, 6).storage_bits(), 6144);
    }

    #[test]
    fn ctx_default_is_neutral() {
        let ctx = SumCtx::default();
        assert_eq!(ctx.imli_count, 0);
        assert!(!ctx.oh_same && !ctx.oh_prev);
    }

    #[test]
    fn bank_matches_separate_tables() {
        // A CounterBank must behave exactly like a vector of
        // independently trained SignedCounterTables.
        let mut bank = CounterBank::new(3, 64, 5);
        let mut tables: Vec<SignedCounterTable> =
            (0..3).map(|_| SignedCounterTable::new(64, 5)).collect();
        let mut x = 0xACE1u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = (x % 3) as usize;
            let idx = (x >> 8) & 0xFFFF;
            let taken = x & 1 == 1;
            assert_eq!(bank.read(t, idx), tables[t].read(idx));
            assert_eq!(i32::from(bank.value(t, idx)), (tables[t].read(idx) - 1) / 2);
            bank.prefetch(t, idx);
            bank.train(t, idx, taken);
            tables[t].train(idx, taken);
        }
    }

    #[test]
    fn bank_geometry_and_storage() {
        let b = CounterBank::new(17, 2048, 6);
        assert_eq!(b.tables(), 17);
        assert_eq!(b.entries(), 2048);
        assert_eq!(b.table_storage_bits(), 2048 * 6);
        assert_eq!(b.storage_bits(), 17 * 2048 * 6);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn bank_rejects_zero_tables() {
        let _ = CounterBank::new(0, 64, 6);
    }
}
