//! Saturating confidence counters.

/// A signed saturating counter of runtime-configurable width.
///
/// An `n`-bit counter saturates at `[-2^(n-1), 2^(n-1) - 1]`; the predicted
/// direction is `value >= 0` (the standard TAGE/GEHL convention where the
/// "weakly taken" state is 0).
///
/// ```
/// use bp_components::SaturatingCounter;
/// let mut c = SaturatingCounter::new(3);
/// assert!(c.is_taken()); // starts weakly taken (0)
/// c.train(false);
/// assert!(!c.is_taken());
/// for _ in 0..10 { c.train(false); }
/// assert_eq!(c.value(), -4); // saturated
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: i8,
    bits: u8,
}

impl SaturatingCounter {
    /// Creates a counter of `bits` width, initialized to 0 (weakly taken).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=7` (the counter is stored in an
    /// `i8`; real predictor counters are 2-6 bits).
    pub fn new(bits: usize) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be in 1..=7");
        SaturatingCounter {
            value: 0,
            bits: bits as u8,
        }
    }

    /// Creates a counter initialized from an observed direction: weakly
    /// taken for `true`, weakly not-taken for `false` (TAGE allocation).
    pub fn new_weak(bits: usize, taken: bool) -> Self {
        let mut c = SaturatingCounter::new(bits);
        c.value = if taken { 0 } else { -1 };
        c
    }

    /// Maximum representable value (`2^(bits-1) - 1`).
    #[inline]
    pub fn max(&self) -> i8 {
        (1i8 << (self.bits - 1)) - 1
    }

    /// Minimum representable value (`-2^(bits-1)`).
    #[inline]
    pub fn min(&self) -> i8 {
        -(1i8 << (self.bits - 1))
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> i8 {
        self.value
    }

    /// Predicted direction: `true` when the value is non-negative.
    #[inline]
    pub fn is_taken(&self) -> bool {
        self.value >= 0
    }

    /// Distance from the weak states; used as a confidence estimate.
    /// 0 means weakly taken / weakly not-taken.
    #[inline]
    pub fn confidence(&self) -> u8 {
        if self.value >= 0 {
            self.value as u8
        } else {
            (-(self.value as i16) - 1) as u8
        }
    }

    /// Returns `true` when the counter sits at either saturation point.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max() || self.value == self.min()
    }

    /// Moves the counter toward `taken`, saturating.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.value < self.max() {
                self.value += 1;
            }
        } else if self.value > self.min() {
            self.value -= 1;
        }
    }

    /// Moves the counter one step toward 0 (aging / graceful decay).
    #[inline]
    pub fn decay(&mut self) {
        match self.value.cmp(&0) {
            std::cmp::Ordering::Greater => self.value -= 1,
            std::cmp::Ordering::Less => self.value += 1,
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Overwrites the value, clamping into range.
    pub fn set(&mut self, value: i8) {
        self.value = value.clamp(self.min(), self.max());
    }

    /// Counter width in bits.
    pub fn bits(&self) -> usize {
        usize::from(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_bit_counter_has_classic_range() {
        let c = SaturatingCounter::new(2);
        assert_eq!(c.max(), 1);
        assert_eq!(c.min(), -2);
    }

    #[test]
    fn saturation_both_ends() {
        let mut c = SaturatingCounter::new(3);
        for _ in 0..20 {
            c.train(true);
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        for _ in 0..20 {
            c.train(false);
        }
        assert_eq!(c.value(), -4);
        assert!(c.is_saturated());
    }

    #[test]
    fn weak_allocation_matches_direction() {
        assert!(SaturatingCounter::new_weak(3, true).is_taken());
        assert!(!SaturatingCounter::new_weak(3, false).is_taken());
        assert_eq!(SaturatingCounter::new_weak(3, false).confidence(), 0);
        assert_eq!(SaturatingCounter::new_weak(3, true).confidence(), 0);
    }

    #[test]
    fn decay_moves_toward_zero() {
        let mut c = SaturatingCounter::new(4);
        c.set(5);
        c.decay();
        assert_eq!(c.value(), 4);
        c.set(-3);
        c.decay();
        assert_eq!(c.value(), -2);
        c.set(0);
        c.decay();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn set_clamps() {
        let mut c = SaturatingCounter::new(2);
        c.set(100);
        assert_eq!(c.value(), 1);
        c.set(-100);
        assert_eq!(c.value(), -2);
        assert_eq!(c.bits(), 2);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_wide_counters() {
        let _ = SaturatingCounter::new(8);
    }

    proptest! {
        #[test]
        fn value_always_in_range(bits in 1usize..=7, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut c = SaturatingCounter::new(bits);
            for taken in ops {
                c.train(taken);
                prop_assert!(c.value() >= c.min() && c.value() <= c.max());
                prop_assert_eq!(c.is_taken(), c.value() >= 0);
            }
        }

        #[test]
        fn confidence_is_distance_from_weak(bits in 2usize..=6, v in -32i8..=31) {
            let mut c = SaturatingCounter::new(bits);
            c.set(v);
            let expected = if c.value() >= 0 { c.value() } else { -(c.value() + 1) };
            prop_assert_eq!(i16::from(c.confidence()), i16::from(expected));
        }
    }
}
