//! The typed predictor-configuration layer.
//!
//! The paper's claims are made at *fixed storage points* (its Tables 1
//! and 2 quote every configuration in Kbit), which makes "what exactly
//! is this predictor built from, and what does it cost?" a first-class
//! question. This module answers it with data instead of code:
//!
//! * [`PredictorConfig`] — the trait every buildable predictor
//!   configuration implements: non-panicking [`validate`], a
//!   [`build`] that produces the boxed predictor, an exact
//!   [`storage_bits_estimate`] (guaranteed — and property-tested — to
//!   equal the built predictor's itemized
//!   [`StorageBudget::storage_items`](crate::StorageBudget::storage_items)
//!   sum), and a deterministic text round-trip via [`ConfigValue`];
//! * [`ConfigValue`] — a hand-rolled JSON-subset document model
//!   (objects, arrays, strings, integers, booleans) with a
//!   byte-deterministic serializer and a recursive-descent parser. No
//!   external dependencies: the vendor policy forbids serde, and the
//!   subset predictor geometry needs is tiny;
//! * [`BimodalConfig`] / [`GShareConfig`] — typed configurations for
//!   the two baseline predictors that, until now, were only
//!   constructible through hard-coded factory closures.
//!
//! The family crates (`bp-tage`, `bp-gehl`, `bp-perceptron`) implement
//! [`PredictorConfig`] for their own config structs; `bp-sim`'s
//! registry stores these values instead of opaque closures, and the
//! budget-sweep solver scales them to hit target storage points.

use crate::bimodal::Bimodal;
use crate::gshare::GShare;
use crate::predictor::ConditionalPredictor;
use std::fmt;

/// An error from configuration validation or parsing: a plain message,
/// deterministic and human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Builds an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(message: String) -> Self {
        ConfigError { message }
    }
}

impl From<&str> for ConfigError {
    fn from(message: &str) -> Self {
        ConfigError::new(message)
    }
}

/// A JSON-subset document value: objects (insertion-ordered), arrays,
/// strings, integers, and booleans. No floats, no null — predictor
/// geometry is integral, and banning floats keeps serialization
/// byte-deterministic without any formatting policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigValue {
    /// `true` / `false`.
    Bool(bool),
    /// A (signed) integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    List(Vec<ConfigValue>),
    /// An object. Field order is preserved and serialized as-is, which
    /// is what makes `to_text` deterministic.
    Map(Vec<(String, ConfigValue)>),
}

impl ConfigValue {
    /// An empty object, to be filled with [`ConfigValue::set`].
    pub fn map() -> Self {
        ConfigValue::Map(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        ConfigValue::Str(s.into())
    }

    /// An integer value from any unsigned width used by the configs.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `i64::MAX` (no predictor geometry does).
    pub fn int(v: impl TryInto<i64>) -> Self {
        ConfigValue::Int(
            v.try_into()
                // bp-lint: allow(panic-surface, "documented # Panics builder contract; no predictor geometry reaches i64::MAX")
                .unwrap_or_else(|_| panic!("config integer out of i64 range")),
        )
    }

    /// An array of `usize` values (the common `Vec<usize>` geometry
    /// fields).
    pub fn int_list(values: &[usize]) -> Self {
        ConfigValue::List(values.iter().map(|&v| ConfigValue::int(v)).collect())
    }

    /// Appends a field to an object (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a [`ConfigValue::Map`].
    #[must_use]
    pub fn set(mut self, key: &str, value: ConfigValue) -> Self {
        match &mut self {
            ConfigValue::Map(fields) => fields.push((key.to_owned(), value)),
            // bp-lint: allow(panic-surface, "documented # Panics builder contract; callers chain set() on Map literals only")
            _ => panic!("set() on a non-map config value"),
        }
        self
    }

    /// Appends a field only when `value` is `Some` (optional sub-config
    /// convention: absent key = `None`).
    #[must_use]
    pub fn set_opt(self, key: &str, value: Option<ConfigValue>) -> Self {
        match value {
            Some(v) => self.set(key, v),
            None => self,
        }
    }

    /// Looks a field up in an object.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        match self {
            ConfigValue::Map(fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// Looks a required field up, with a descriptive error.
    pub fn req(&self, key: &str) -> Result<&ConfigValue, ConfigError> {
        self.get(key)
            .ok_or_else(|| ConfigError::new(format!("missing config field `{key}`")))
    }

    /// Checks that the value is an object whose keys all appear in
    /// `allowed` — the strict-parsing guard that turns config-file
    /// typos into errors instead of silent defaults.
    pub fn expect_keys(&self, what: &str, allowed: &[&str]) -> Result<(), ConfigError> {
        let ConfigValue::Map(fields) = self else {
            return Err(ConfigError::new(format!("{what} must be an object")));
        };
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(ConfigError::new(format!(
                    "unknown {what} field `{key}` (expected one of: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// The value as an `i64`.
    pub fn as_i64(&self, what: &str) -> Result<i64, ConfigError> {
        match self {
            ConfigValue::Int(v) => Ok(*v),
            _ => Err(ConfigError::new(format!("{what} must be an integer"))),
        }
    }

    /// The value as a non-negative `usize`.
    pub fn as_usize(&self, what: &str) -> Result<usize, ConfigError> {
        let v = self.as_i64(what)?;
        usize::try_from(v)
            .map_err(|_| ConfigError::new(format!("{what} must be a non-negative integer")))
    }

    /// The value as an `i32`.
    pub fn as_i32(&self, what: &str) -> Result<i32, ConfigError> {
        let v = self.as_i64(what)?;
        i32::try_from(v).map_err(|_| ConfigError::new(format!("{what} out of i32 range")))
    }

    /// The value as a `u64`.
    pub fn as_u64(&self, what: &str) -> Result<u64, ConfigError> {
        let v = self.as_i64(what)?;
        u64::try_from(v)
            .map_err(|_| ConfigError::new(format!("{what} must be a non-negative integer")))
    }

    /// The value as a `u8`.
    pub fn as_u8(&self, what: &str) -> Result<u8, ConfigError> {
        let v = self.as_i64(what)?;
        u8::try_from(v).map_err(|_| ConfigError::new(format!("{what} out of u8 range")))
    }

    /// The value as a boolean.
    pub fn as_bool(&self, what: &str) -> Result<bool, ConfigError> {
        match self {
            ConfigValue::Bool(v) => Ok(*v),
            _ => Err(ConfigError::new(format!("{what} must be a boolean"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self, what: &str) -> Result<&str, ConfigError> {
        match self {
            ConfigValue::Str(v) => Ok(v),
            _ => Err(ConfigError::new(format!("{what} must be a string"))),
        }
    }

    /// The value as an array slice.
    pub fn as_list(&self, what: &str) -> Result<&[ConfigValue], ConfigError> {
        match self {
            ConfigValue::List(v) => Ok(v),
            _ => Err(ConfigError::new(format!("{what} must be an array"))),
        }
    }

    /// The value as a `Vec<usize>`.
    pub fn as_usize_list(&self, what: &str) -> Result<Vec<usize>, ConfigError> {
        self.as_list(what)?
            .iter()
            .map(|v| v.as_usize(what))
            .collect()
    }

    /// Serializes the value as deterministic pretty-printed JSON-subset
    /// text: 2-space indentation, fields in insertion order, a trailing
    /// newline. The same value always produces the same bytes.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            ConfigValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            ConfigValue::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            ConfigValue::Str(v) => write_json_string(out, v),
            ConfigValue::List(items) => {
                // Arrays of scalars stay on one line; arrays holding any
                // nested structure get one item per line.
                let nested = items
                    .iter()
                    .any(|i| matches!(i, ConfigValue::List(_) | ConfigValue::Map(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if !nested {
                            out.push(' ');
                        }
                    }
                    if nested {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1);
                }
                if nested && !items.is_empty() {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            ConfigValue::Map(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                if !fields.is_empty() {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON-subset text (see the type docs for the accepted
    /// grammar). Rejects floats, `null`, duplicate object keys, and
    /// trailing garbage, with character-offset error messages.
    pub fn parse(text: &str) -> Result<ConfigValue, ConfigError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Escapes and quotes a string as a JSON string literal (quotes,
/// backslashes, and control characters). The single escaping
/// implementation every hand-rolled JSON emitter in the workspace
/// shares (the vendor policy forbids serde), so the rules cannot
/// drift between them.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_json_string(&mut out, s);
    out
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The recursive-descent JSON-subset parser behind
/// [`ConfigValue::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting [`ConfigValue::parse`] accepts. The
/// recursive-descent parser recurses per level, so without a cap a
/// deeply nested document would overflow the stack instead of
/// returning an error. Predictor configs nest ~4 levels deep.
const MAX_PARSE_DEPTH: usize = 128;

impl Parser<'_> {
    fn err(&self, message: &str) -> ConfigError {
        ConfigError::new(format!(
            "config parse error at byte {}: {message}",
            self.pos
        ))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ConfigError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<ConfigValue, ConfigError> {
        match self.peek() {
            Some(b'{') | Some(b'[') => {
                if self.depth >= MAX_PARSE_DEPTH {
                    return Err(self.err("document nests too deeply"));
                }
                self.depth += 1;
                let v = if self.peek() == Some(b'{') {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(ConfigValue::Str(self.string()?)),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b'-') | Some(b'0'..=b'9') => self.integer(),
            Some(b'n') => Err(self.err("null is not part of the config subset")),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<ConfigValue, ConfigError> {
        self.expect_byte(b'{')?;
        let mut fields: Vec<(String, ConfigValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(ConfigValue::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(ConfigValue::Map(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<ConfigValue, ConfigError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(ConfigValue::List(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(ConfigValue::List(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn boolean(&mut self) -> Result<ConfigValue, ConfigError> {
        for (literal, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
                self.pos += literal.len();
                return Ok(ConfigValue::Bool(value));
            }
        }
        Err(self.err("expected `true` or `false`"))
    }

    fn integer(&mut self) -> Result<ConfigValue, ConfigError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("floats are not part of the config subset"));
        }
        let digits = &self.bytes[start + usize::from(self.bytes[start] == b'-')..self.pos];
        if digits.len() > 1 && digits[0] == b'0' {
            return Err(self.err("leading zeros are not valid JSON"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad integer"))?;
        text.parse::<i64>()
            .map(ConfigValue::Int)
            .map_err(|_| self.err(&format!("bad integer `{text}`")))
    }

    /// Reads 4 hex digits at byte offset `at` (the payload of a `\u`
    /// escape).
    fn hex4(&self, at: usize) -> Result<u32, ConfigError> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        // from_str_radix alone would also accept a leading sign.
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("bad \\u escape"));
        }
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, ConfigError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // A high surrogate: standard JSON
                                // encoders emit astral-plane characters
                                // as \uXXXX\uXXXX pairs.
                                let lo_at = self.pos + 5;
                                if self.bytes.get(lo_at..lo_at + 2) != Some(b"\\u".as_slice()) {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                                let lo = self.hex4(lo_at + 2)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                                self.pos += 6;
                                let code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. The input
                    // came in as `&str`, so the sequence is valid and
                    // the lead byte gives its length — no need to
                    // re-validate the rest of the document.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let c = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 sequence"))?;
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }
}

/// A buildable, serializable predictor configuration.
///
/// This is the contract the registry and the budget-sweep solver work
/// against:
///
/// * [`validate`](PredictorConfig::validate) never panics — it returns
///   the first geometry violation as a [`ConfigError`];
/// * [`build`](PredictorConfig::build) constructs the predictor (it may
///   panic on an invalid configuration; call `validate` first when the
///   configuration came from user input);
/// * [`storage_bits_estimate`](PredictorConfig::storage_bits_estimate)
///   is **exact**, not approximate: it must equal the built predictor's
///   [`StorageBudget::storage_items`](crate::StorageBudget::storage_items)
///   sum bit-for-bit (the workspace property-tests this for every
///   registry entry and every solver output). The "estimate" in the
///   name means "without building": the budget solver evaluates
///   thousands of candidate geometries and must not allocate megabytes
///   of tables for each;
/// * [`to_value`](PredictorConfig::to_value) /
///   [`from_value`](PredictorConfig::from_value) round-trip the
///   configuration through the deterministic [`ConfigValue`] document
///   model (and [`to_text`](PredictorConfig::to_text) /
///   [`from_text`](PredictorConfig::from_text) through its text form).
pub trait PredictorConfig {
    /// Checks the geometry, returning the first violation.
    fn validate(&self) -> Result<(), ConfigError>;

    /// Builds a fresh, cold predictor from this configuration.
    fn build(&self) -> Box<dyn ConditionalPredictor + Send>;

    /// Exact storage cost in bits of the predictor
    /// [`build`](PredictorConfig::build) would produce, computed from
    /// the configuration alone.
    fn storage_bits_estimate(&self) -> u64;

    /// Serializes the configuration as a [`ConfigValue`] document.
    fn to_value(&self) -> ConfigValue;

    /// Reconstructs a configuration from a [`ConfigValue`] document.
    /// Strict: unknown fields are errors.
    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError>
    where
        Self: Sized;

    /// Serializes to deterministic text ([`ConfigValue::to_text`]).
    fn to_text(&self) -> String {
        self.to_value().to_text()
    }

    /// Parses from text ([`ConfigValue::parse`] +
    /// [`from_value`](PredictorConfig::from_value)).
    fn from_text(text: &str) -> Result<Self, ConfigError>
    where
        Self: Sized,
    {
        Self::from_value(&ConfigValue::parse(text)?)
    }
}

/// Configuration of the [`Bimodal`] baseline predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BimodalConfig {
    /// log2 of the 2-bit-counter table entries.
    pub log_entries: usize,
}

impl BimodalConfig {
    /// The registry's calibration baseline: 16K entries (32 Kbit).
    pub fn base() -> Self {
        BimodalConfig { log_entries: 14 }
    }
}

impl PredictorConfig for BimodalConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if !(2..=28).contains(&self.log_entries) {
            return Err(ConfigError::new("bimodal log_entries must be in 2..=28"));
        }
        Ok(())
    }

    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        Box::new(Bimodal::new(1 << self.log_entries))
    }

    fn storage_bits_estimate(&self) -> u64 {
        // One 2-bit counter per entry (`Bimodal::storage_items`).
        (1u64 << self.log_entries) * 2
    }

    fn to_value(&self) -> ConfigValue {
        ConfigValue::map().set("log_entries", ConfigValue::int(self.log_entries))
    }

    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys("bimodal config", &["log_entries"])?;
        Ok(BimodalConfig {
            log_entries: value.req("log_entries")?.as_usize("log_entries")?,
        })
    }
}

/// Configuration of the [`GShare`] baseline predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GShareConfig {
    /// log2 of the counter table entries.
    pub log_entries: usize,
    /// Global history bits XORed into the index.
    pub history_bits: usize,
}

impl GShareConfig {
    /// The registry's calibration baseline: 16K entries × 12 history
    /// bits.
    pub fn base() -> Self {
        GShareConfig {
            log_entries: 14,
            history_bits: 12,
        }
    }
}

impl PredictorConfig for GShareConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=28).contains(&self.log_entries) {
            return Err(ConfigError::new("gshare log_entries must be in 1..=28"));
        }
        if self.history_bits > 64 {
            return Err(ConfigError::new("gshare history_bits must be at most 64"));
        }
        Ok(())
    }

    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        Box::new(GShare::new(self.log_entries, self.history_bits))
    }

    fn storage_bits_estimate(&self) -> u64 {
        // Counter table + history register (`GShare::storage_items`).
        (1u64 << self.log_entries) * 2 + self.history_bits as u64
    }

    fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("log_entries", ConfigValue::int(self.log_entries))
            .set("history_bits", ConfigValue::int(self.history_bits))
    }

    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys("gshare config", &["log_entries", "history_bits"])?;
        Ok(GShareConfig {
            log_entries: value.req("log_entries")?.as_usize("log_entries")?,
            history_bits: value.req("history_bits")?.as_usize("history_bits")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let doc = ConfigValue::map()
            .set("name", ConfigValue::str("x \"quoted\"\n"))
            .set("count", ConfigValue::int(42usize))
            .set("neg", ConfigValue::Int(-7))
            .set("flag", ConfigValue::Bool(true))
            .set("lens", ConfigValue::int_list(&[4, 8, 12]))
            .set(
                "nested",
                ConfigValue::map().set("inner", ConfigValue::int(1usize)),
            )
            .set("empty", ConfigValue::map())
            .set("empty_list", ConfigValue::List(Vec::new()));
        let text = doc.to_text();
        let parsed = ConfigValue::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        // Deterministic: serializing the parse reproduces the bytes.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(ConfigValue::parse("{").is_err());
        assert!(ConfigValue::parse("{} x").is_err());
        assert!(ConfigValue::parse("1.5").is_err());
        assert!(ConfigValue::parse("null").is_err());
        assert!(ConfigValue::parse("{\"a\": 1, \"a\": 2}").is_err());
        assert!(ConfigValue::parse("\"unterminated").is_err());
        assert!(ConfigValue::parse("[1, ]").is_err());
        assert!(ConfigValue::parse("007").is_err());
        assert!(ConfigValue::parse("-007").is_err());
        assert!(ConfigValue::parse("{\"s\": \"\\u+041\"}").is_err());
        assert_eq!(ConfigValue::parse("-0").unwrap(), ConfigValue::Int(0));
        let err = ConfigValue::parse("{\"a\" 1}").unwrap_err();
        assert!(err.to_string().contains("expected `:`"), "{err}");
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let v = ConfigValue::parse("  { \"a\" : [ 1 ,\n 2 ] , \"s\" : \"x\\u0041\\t\" }  ")
            .expect("parses");
        assert_eq!(v.req("a").unwrap().as_usize_list("a").unwrap(), vec![1, 2]);
        assert_eq!(v.req("s").unwrap().as_str("s").unwrap(), "xA\t");
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        // A deeply nested document must return an error, not overflow
        // the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = ConfigValue::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nests too deeply"), "{err}");
        // Realistic nesting is far below the cap.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(ConfigValue::parse(&ok).is_ok());
    }

    #[test]
    fn parser_handles_surrogate_pairs_and_raw_astral_chars() {
        // Standard encoders (e.g. python json.dump) emit astral-plane
        // characters as \uXXXX\uXXXX surrogate pairs.
        let v = ConfigValue::parse("{\"s\": \"x\\ud83d\\ude00y\"}").expect("parses");
        assert_eq!(v.req("s").unwrap().as_str("s").unwrap(), "x\u{1f600}y");
        // Raw (unescaped) astral characters round-trip through text.
        let doc = ConfigValue::map().set("s", ConfigValue::str("名\u{1f600}"));
        let text = doc.to_text();
        assert_eq!(ConfigValue::parse(&text).expect("parses"), doc);
        // Unpaired surrogates are errors, not replacement characters.
        for bad in [
            "{\"s\": \"\\ud83d\"}",
            "{\"s\": \"\\ud83dx\"}",
            "{\"s\": \"\\ud83d\\u0041\"}",
            "{\"s\": \"\\ude00\"}",
        ] {
            assert!(ConfigValue::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn accessor_errors_are_descriptive() {
        let v = ConfigValue::parse("{\"a\": 1}").unwrap();
        assert!(v.req("b").unwrap_err().to_string().contains("`b`"));
        assert!(v
            .expect_keys("test config", &["z"])
            .unwrap_err()
            .to_string()
            .contains("unknown test config field `a`"));
        assert!(ConfigValue::Int(-1).as_usize("x").is_err());
        assert!(ConfigValue::Bool(true).as_i64("x").is_err());
        assert!(ConfigValue::Int(1).as_bool("x").is_err());
    }

    #[test]
    fn baseline_configs_build_and_account_exactly() {
        use crate::budget::StorageBudget;
        for config in [BimodalConfig::base(), BimodalConfig { log_entries: 10 }] {
            PredictorConfig::validate(&config).expect("valid");
            assert_eq!(
                config.storage_bits_estimate(),
                config.build().storage_bits()
            );
            let round = BimodalConfig::from_text(&config.to_text()).expect("round-trips");
            assert_eq!(round, config);
        }
        for config in [
            GShareConfig::base(),
            GShareConfig {
                log_entries: 12,
                history_bits: 10,
            },
        ] {
            PredictorConfig::validate(&config).expect("valid");
            assert_eq!(
                config.storage_bits_estimate(),
                config.build().storage_bits()
            );
            let round = GShareConfig::from_text(&config.to_text()).expect("round-trips");
            assert_eq!(round, config);
        }
        assert!(PredictorConfig::validate(&BimodalConfig { log_entries: 1 }).is_err());
        assert!(PredictorConfig::validate(&GShareConfig {
            log_entries: 0,
            history_bits: 4
        })
        .is_err());
        assert!(PredictorConfig::validate(&GShareConfig {
            log_entries: 10,
            history_bits: 65
        })
        .is_err());
    }
}
