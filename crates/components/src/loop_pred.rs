//! The loop-exit predictor (paper §2.2.1).
//!
//! For loops with a constant trip count, the loop predictor learns the
//! count and predicts the exit occurrence of the loop branch. It is the
//! "very limited form of local history" that real processors (recent Intel
//! parts, per the paper) do implement, and the wormhole predictor depends
//! on it to learn the inner-loop trip count `Ni`.

use crate::hash::pc_bits;

/// Configuration for [`LoopPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPredictorConfig {
    /// log2 of the entry count.
    pub log_entries: usize,
    /// Tag width in bits.
    pub tag_bits: usize,
    /// Iteration counter width in bits (trip counts up to `2^bits - 1`).
    pub iter_bits: usize,
    /// Confidence ceiling: predictions are exported as high-confidence
    /// once `conf` reaches this value.
    pub conf_max: u8,
}

impl Default for LoopPredictorConfig {
    /// The paper's TAGE-SC-L-like configuration: 64 entries, 14-bit tags
    /// and iteration counters, confidence ceiling 3.
    fn default() -> Self {
        LoopPredictorConfig {
            log_entries: 6,
            tag_bits: 14,
            iter_bits: 14,
            conf_max: 3,
        }
    }
}

impl LoopPredictorConfig {
    /// A small 16-entry variant (the paper notes a 16-entry loop predictor
    /// reclaims about one third of the local-history benefit).
    pub fn small() -> Self {
        LoopPredictorConfig {
            log_entries: 4,
            ..Self::default()
        }
    }

    /// Checks the geometry, returning the first violation (the
    /// non-panicking twin of the constructor's assertions).
    pub fn check(&self) -> Result<(), crate::ConfigError> {
        if !(1..=20).contains(&self.log_entries) {
            return Err("loop log_entries out of range".into());
        }
        if !(1..=31).contains(&self.tag_bits) {
            return Err("loop tag_bits out of range".into());
        }
        if !(1..=31).contains(&self.iter_bits) {
            return Err("loop iter_bits out of range".into());
        }
        // The conf field is stored (and storage-charged) as 2 bits.
        if !(1..=3).contains(&self.conf_max) {
            return Err("loop conf_max must be in 1..=3".into());
        }
        Ok(())
    }

    /// Exact storage in bits of the built [`LoopPredictor`]
    /// (`entries × (tag + 2·iter + conf + age + dir + valid)` — the same
    /// formula as [`LoopPredictor::storage_bits`]).
    pub fn storage_bits(&self) -> u64 {
        let per_entry = self.tag_bits as u64 + 2 * self.iter_bits as u64 + 2 + 8 + 1 + 1;
        (1u64 << self.log_entries) * per_entry
    }

    /// Serializes as a [`crate::ConfigValue`] object.
    pub fn to_value(&self) -> crate::ConfigValue {
        crate::ConfigValue::map()
            .set("log_entries", crate::ConfigValue::int(self.log_entries))
            .set("tag_bits", crate::ConfigValue::int(self.tag_bits))
            .set("iter_bits", crate::ConfigValue::int(self.iter_bits))
            .set("conf_max", crate::ConfigValue::int(self.conf_max))
    }

    /// Parses from a [`crate::ConfigValue`] object (strict keys).
    pub fn from_value(value: &crate::ConfigValue) -> Result<Self, crate::ConfigError> {
        value.expect_keys(
            "loop config",
            &["log_entries", "tag_bits", "iter_bits", "conf_max"],
        )?;
        Ok(LoopPredictorConfig {
            log_entries: value.req("log_entries")?.as_usize("log_entries")?,
            tag_bits: value.req("tag_bits")?.as_usize("tag_bits")?,
            iter_bits: value.req("iter_bits")?.as_usize("iter_bits")?,
            conf_max: value.req("conf_max")?.as_u8("conf_max")?,
        })
    }
}

/// One loop prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPrediction {
    /// Predicted direction of the loop branch.
    pub taken: bool,
    /// Whether the entry has seen enough consistent trips to be trusted
    /// to override a main predictor.
    pub high_confidence: bool,
    /// The learned trip count.
    pub trip_count: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u32,
    valid: bool,
    /// Direction taken during the loop body; the exit is `!dir`.
    dir: bool,
    /// Learned trip count (0 = not yet learned).
    trip: u32,
    /// Body occurrences observed in the current traversal.
    current: u32,
    conf: u8,
    age: u8,
}

/// A direct-mapped, tagged loop-exit predictor.
///
/// Entries are allocated under the caller's control (conventionally on a
/// misprediction of the main predictor, as in TAGE-SC-L), learn the trip
/// count of regular loops, and predict the exit occurrence once confident.
///
/// ```
/// use bp_components::{LoopPredictor, LoopPredictorConfig};
/// let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
/// let pc = 0x4000;
/// // A loop that runs its body branch 3 times then exits, repeatedly.
/// for _ in 0..8 {
///     for m in 0..4 {
///         let taken = m < 3;
///         lp.update(pc, taken, true);
///     }
/// }
/// assert_eq!(lp.trip_count(pc), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    config: LoopPredictorConfig,
    index_mask: u64,
    tag_mask: u32,
    iter_cap: u32,
}

impl LoopPredictor {
    /// Creates a loop predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `log_entries` is 0 or greater than 20, or `iter_bits`
    /// exceeds 31, or `tag_bits` is 0 or exceeds 31.
    pub fn new(config: LoopPredictorConfig) -> Self {
        assert!(
            (1..=20).contains(&config.log_entries),
            "log_entries out of range"
        );
        assert!((1..=31).contains(&config.tag_bits), "tag_bits out of range");
        assert!(
            (1..=31).contains(&config.iter_bits),
            "iter_bits out of range"
        );
        LoopPredictor {
            entries: vec![LoopEntry::default(); 1 << config.log_entries],
            index_mask: (1u64 << config.log_entries) - 1,
            tag_mask: (1u32 << config.tag_bits) - 1,
            iter_cap: (1u32 << config.iter_bits) - 1,
            config,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (pc_bits(pc) & self.index_mask) as usize
    }

    #[inline]
    fn tag(&self, pc: u64) -> u32 {
        ((pc_bits(pc) >> self.config.log_entries) as u32) & self.tag_mask
    }

    /// Issues a read prefetch for `pc`'s entry (a pure hint).
    #[inline]
    pub fn prefetch(&self, pc: u64) {
        crate::kernel::prefetch_read(&self.entries, self.index(pc));
    }

    /// Returns the loop prediction for `pc` if a trained entry exists.
    pub fn predict(&self, pc: u64) -> Option<LoopPrediction> {
        let e = &self.entries[self.index(pc)];
        if !e.valid || e.tag != self.tag(pc) || e.trip == 0 {
            return None;
        }
        Some(LoopPrediction {
            taken: if e.current >= e.trip {
                // All body occurrences seen: next occurrence is the exit.
                !e.dir
            } else {
                e.dir
            },
            high_confidence: e.conf >= self.config.conf_max,
            trip_count: e.trip,
        })
    }

    /// The learned trip count for the loop closed by `pc`, if the entry
    /// is trained (used by the wormhole predictor to locate `Ni`).
    pub fn trip_count(&self, pc: u64) -> Option<u32> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == self.tag(pc) && e.trip != 0 && e.conf >= 1).then_some(e.trip)
    }

    /// Trains with the resolved outcome of `pc`. `may_allocate` gates
    /// entry allocation (hosts pass "main predictor mispredicted", the
    /// TAGE-SC-L policy; pass `true` unconditionally for standalone use).
    pub fn update(&mut self, pc: u64, taken: bool, may_allocate: bool) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let conf_max = self.config.conf_max;
        let iter_cap = self.iter_cap;
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if taken == e.dir {
                e.current += 1;
                if e.current >= iter_cap {
                    // Trip count unrepresentable: give the entry up.
                    e.valid = false;
                }
            } else if e.trip == 0 && e.current == 0 {
                // Nothing learned yet and the very first outcome opposes
                // the guessed body direction: the entry was allocated
                // mid-body with the wrong polarity. Flip it.
                e.dir = taken;
                e.current = 1;
            } else {
                // Exit observed.
                if e.trip == 0 {
                    e.trip = e.current;
                    e.conf = 1;
                } else if e.current == e.trip {
                    e.conf = (e.conf + 1).min(conf_max);
                    e.age = e.age.saturating_add(1);
                } else {
                    // Irregular trip count: retrain.
                    e.trip = e.current;
                    e.conf = 0;
                }
                e.current = 0;
            }
        } else if may_allocate {
            if e.valid && e.age > 0 {
                e.age -= 1;
            } else {
                // The mispredicted occurrence is most often the exit, so
                // the body direction is the opposite of this outcome.
                *e = LoopEntry {
                    tag,
                    valid: true,
                    dir: !taken,
                    trip: 0,
                    current: 0,
                    conf: 0,
                    age: 31,
                };
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the predictor has zero entries (never; the constructor
    /// enforces at least two).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Storage in bits per the configured field widths.
    pub fn storage_bits(&self) -> u64 {
        let per_entry = self.config.tag_bits as u64
            + 2 * self.config.iter_bits as u64
            + 2 // conf
            + 8 // age
            + 1 // dir
            + 1; // valid
        self.entries.len() as u64 * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_regular_loop(lp: &mut LoopPredictor, pc: u64, trip: u32, traversals: u32) {
        for _ in 0..traversals {
            for m in 0..=trip {
                lp.update(pc, m < trip, true);
            }
        }
    }

    #[test]
    fn learns_constant_trip_count() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        train_regular_loop(&mut lp, 0x4000, 5, 10);
        assert_eq!(lp.trip_count(0x4000), Some(5));
        let p = lp.predict(0x4000).unwrap();
        assert!(p.high_confidence);
        assert_eq!(p.trip_count, 5);
    }

    #[test]
    fn predicts_exit_occurrence() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        let pc = 0x888;
        train_regular_loop(&mut lp, pc, 3, 10);
        // Fresh traversal: three body predictions then the exit.
        let mut outcomes = Vec::new();
        for m in 0..4 {
            outcomes.push(lp.predict(pc).unwrap().taken);
            lp.update(pc, m < 3, false);
        }
        assert_eq!(outcomes, vec![true, true, true, false]);
    }

    #[test]
    fn irregular_loop_loses_confidence() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        let pc = 0x40;
        train_regular_loop(&mut lp, pc, 4, 6);
        assert!(lp.predict(pc).unwrap().high_confidence);
        // Change the trip count: confidence must collapse.
        train_regular_loop(&mut lp, pc, 7, 1);
        assert!(!lp.predict(pc).is_none_or(|p| p.high_confidence));
        assert_eq!(lp.trip_count(pc), None, "needs conf >= 1 after retrain");
    }

    #[test]
    fn allocation_respects_gate_and_age() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        lp.update(0x10, false, false);
        assert!(lp.predict(0x10).is_none(), "no allocation when gated");
        // Allocate, then a conflicting pc in the same set must age it out
        // before stealing.
        train_regular_loop(&mut lp, 0x10, 2, 8);
        assert!(lp.trip_count(0x10).is_some());
        let conflicting = 0x10 + (1u64 << (2 + 6)); // same index, different tag
        for _ in 0..40 {
            lp.update(conflicting, false, true);
        }
        assert!(lp.trip_count(0x10).is_none(), "entry eventually stolen");
    }

    #[test]
    fn storage_matches_field_widths() {
        let lp = LoopPredictor::new(LoopPredictorConfig::default());
        assert_eq!(lp.storage_bits(), 64 * (14 + 28 + 2 + 8 + 1 + 1));
        assert_eq!(lp.len(), 64);
        assert!(!lp.is_empty());
        let small = LoopPredictor::new(LoopPredictorConfig::small());
        assert_eq!(small.len(), 16);
    }

    #[test]
    fn not_taken_body_loops_are_supported() {
        // A loop whose body branch is not-taken and exit is taken
        // (forward conditional exit).
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        let pc = 0x999;
        // First occurrence mispredicts at the exit (taken), allocating
        // with dir = !taken = false.
        for _ in 0..8 {
            for m in 0..5 {
                lp.update(pc, m == 4, true);
            }
        }
        assert_eq!(lp.trip_count(pc), Some(4));
        let p = lp.predict(pc).unwrap();
        assert!(!p.taken, "body direction is not-taken");
    }
}
