//! The simulator-facing predictor trait.

use crate::attribution::PredictionAttribution;
use crate::budget::{StorageBudget, StorageItem};
use bp_trace::BranchRecord;

/// A conditional branch direction predictor, driven with the CBP protocol:
/// for each conditional branch the simulator calls
/// [`predict`](ConditionalPredictor::predict) and then
/// [`update`](ConditionalPredictor::update) with the resolved outcome;
/// non-conditional branches are reported through
/// [`notify_nonconditional`](ConditionalPredictor::notify_nonconditional)
/// because they still shift path/target history (and, for IMLI-equipped
/// predictors, can matter to loop tracking).
///
/// `predict` takes `&mut self` because table-based predictors cache their
/// lookup state (computed indices, matching banks) between the prediction
/// and the update of the same branch, exactly as the reference CBP
/// simulators do.
///
/// Storage accounting comes from the [`StorageBudget`] supertrait, which
/// itemizes every table's exact bit cost; prediction attribution (which
/// component provided each prediction) from
/// [`predict_attributed`](ConditionalPredictor::predict_attributed),
/// which the hot simulation path simply never calls.
pub trait ConditionalPredictor: StorageBudget {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Hints that the branch at `pc` is about to be predicted, so the
    /// predictor may prefetch the table rows its lookup will touch.
    ///
    /// This is the simulator's one-branch lookahead hook: it is called
    /// with the *next* record's PC before the current record is
    /// processed, i.e. under history that is stale by one branch.
    /// Implementations must treat it as a pure hint — reads of
    /// predictor state and cache prefetches only, never a state
    /// change — so that issuing, skipping, or mis-targeting it is
    /// invisible in the predicted stream (the determinism contract the
    /// fused==per-cell tests enforce). The default does nothing.
    fn prefetch(&self, pc: u64) {
        let _ = pc;
    }

    /// Whether the simulator's one-branch lookahead should call
    /// [`prefetch`](ConditionalPredictor::prefetch) at all. The peek +
    /// virtual dispatch + prefetch instructions cost a few nanoseconds
    /// per record, which is a measurable *regression* for predictors
    /// whose whole working set is L1-resident (bimodal, gshare, the
    /// small neural hosts) — so the default is `false`, and only
    /// predictors whose hinted rows actually live beyond L1 opt in.
    /// Purely a performance capability flag: answering `true` or
    /// `false` cannot change any prediction.
    fn wants_prefetch(&self) -> bool {
        false
    }

    /// Predicts like [`predict`](ConditionalPredictor::predict) and also
    /// reports *which component provided* the prediction.
    ///
    /// Drop-in replacement in the CBP protocol (a subsequent
    /// [`update`](ConditionalPredictor::update) applies to it exactly as
    /// to `predict`), guaranteed to return the same direction and leave
    /// the predictor in the same state as `predict` would have. The
    /// default forwards to `predict` and reports
    /// [`PredictionAttribution::unattributed`], so implementing the
    /// channel is optional and the plain path never pays for it.
    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        (self.predict(pc), PredictionAttribution::unattributed())
    }

    /// Trains the predictor with the resolved outcome of the branch that
    /// was just predicted. `record.taken` is the true direction.
    fn update(&mut self, record: &BranchRecord);

    /// Erases the predictor's *history* state — global/folded/path
    /// registers, local-history tables, IMLI counters — while keeping
    /// its learned tables (counters, tags, useful bits, weights).
    ///
    /// This models a partial context-switch flush: an OS switch destroys
    /// the speculative fetch-engine state but leaves the large SRAM
    /// prediction tables (whose contents the incoming tenant then
    /// aliases into). A full flush is modeled by rebuilding the
    /// predictor from its configuration instead — see the scenario
    /// driver in `bp-sim`. Implementations must be allocation-free
    /// (zero existing buffers only), so scenario drive loops stay
    /// allocation-free in steady state, and must leave the predictor in
    /// a state it could have reached from construction (so subsequent
    /// predict/update behavior is well-defined). The default does
    /// nothing, which is exact for history-less predictors (bimodal).
    fn flush_history(&mut self) {}

    /// Reports a non-conditional branch (jump, call, return, indirect).
    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// Drives this predictor through a block of records with the CBP
    /// protocol (predict/update conditionals, notify the rest),
    /// accumulating outcomes into `stats` — including the one-record
    /// lookahead [`prefetch`](ConditionalPredictor::prefetch) hint for
    /// predictors that opt in via
    /// [`wants_prefetch`](ConditionalPredictor::wants_prefetch).
    ///
    /// A provided method rather than a simulator-side loop so that each
    /// concrete predictor gets a *monomorphized* copy: when the
    /// simulator drives a `Box<dyn ConditionalPredictor>`, the loop
    /// body's `predict`/`update`/`notify_nonconditional` calls dispatch
    /// statically (and inline) inside the predictor's own copy, costing
    /// one virtual call per **block** instead of three per **record**.
    ///
    /// This is the [`DriveMode::Pipelined`](crate::DriveMode) entry
    /// point: table-backed hosts override it with their decoupled
    /// front-end/back-end block loop. Overrides must implement the
    /// **identical protocol bit-for-bit** — same predictions, same
    /// training, same post-run storage state as
    /// [`run_block_scalar`](ConditionalPredictor::run_block_scalar) —
    /// and be allocation-free in steady state; the pipelined
    /// equivalence tests and the CI grid cmp pin the semantics. The
    /// default is the scalar protocol.
    fn run_block(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        self.run_block_scalar(block, stats);
    }

    /// The reference scalar block drive: one record at a time with the
    /// CBP protocol, including the one-record lookahead
    /// [`prefetch`](ConditionalPredictor::prefetch) hint for predictors
    /// that opt in via
    /// [`wants_prefetch`](ConditionalPredictor::wants_prefetch).
    ///
    /// This is the [`DriveMode::Scalar`](crate::DriveMode) entry point
    /// and the oracle the pipelined overrides are tested against.
    /// Implementations must **never** override it — it defines the
    /// protocol.
    fn run_block_scalar(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        if self.wants_prefetch() {
            for (i, record) in block.iter().enumerate() {
                // Peek one record ahead and hint its lookup rows so the
                // loads overlap the current record's work. Stale-by-one
                // history is fine: `prefetch` is architecturally a
                // no-op, so results stay bit-identical either way.
                if let Some(peek) = block.get(i + 1) {
                    if peek.is_conditional() {
                        self.prefetch(peek.pc);
                    }
                }
                step_record(self, record, stats);
            }
        } else {
            for record in block {
                step_record(self, record, stats);
            }
        }
    }

    /// Runs only the pipelined *front-end* over `block`: index/tag
    /// planning, prefetch issue, and the pure index-input advance — no
    /// predictions, no prediction-dependent training.
    ///
    /// A benchmarking probe (the per-phase timing breakdown in
    /// `bp bench --sim` times this pass alone, on a throwaway predictor
    /// instance — the front end advances the index inputs, so a probed
    /// predictor must not then be used for accuracy measurements); the
    /// default for non-pipelined predictors does nothing.
    fn run_block_frontend(&mut self, block: &[BranchRecord]) {
        let _ = block;
    }

    /// Sets the pipeline distance D — how many branches the pipelined
    /// front-end plans and prefetches ahead of the commit loop.
    ///
    /// Implementations clamp to
    /// [`1..=MAX_PIPELINE_DEPTH`](crate::MAX_PIPELINE_DEPTH) against
    /// pre-sized scratch, so this never allocates and any depth is
    /// safe. A pure performance knob: predictions are bit-identical at
    /// every depth (the purity invariant — see [`crate::DriveMode`]).
    /// The default (for predictors without a pipelined path) ignores
    /// it.
    fn set_pipeline_depth(&mut self, depth: usize) {
        let _ = depth;
    }

    /// A short human-readable configuration name, e.g. `"TAGE-GSC+IMLI"`.
    fn name(&self) -> &str;
}

/// One CBP-protocol step: predict/update a conditional record, notify a
/// non-conditional one. Shared by the provided
/// [`ConditionalPredictor::run_block`] so the per-record protocol cannot
/// drift between the prefetching and plain loops.
#[inline]
fn step_record<P: ConditionalPredictor + ?Sized>(
    predictor: &mut P,
    record: &BranchRecord,
    stats: &mut PredictorStats,
) {
    if record.is_conditional() {
        let pred = predictor.predict(record.pc);
        stats.record(pred == record.taken);
        predictor.update(record);
    } else {
        predictor.notify_nonconditional(record);
    }
}

/// Boxed predictors forward the whole protocol, so composed predictors
/// (e.g. the wormhole wrapper) can wrap a type-erased
/// `Box<dyn ConditionalPredictor + Send>` built from a configuration
/// value. `predict_attributed` forwards explicitly — falling back to
/// the trait default would silently drop the inner predictor's
/// attribution.
impl ConditionalPredictor for Box<dyn ConditionalPredictor + Send> {
    fn predict(&mut self, pc: u64) -> bool {
        (**self).predict(pc)
    }

    fn prefetch(&self, pc: u64) {
        (**self).prefetch(pc)
    }

    fn wants_prefetch(&self) -> bool {
        (**self).wants_prefetch()
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        (**self).predict_attributed(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        (**self).update(record)
    }

    fn flush_history(&mut self) {
        (**self).flush_history()
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        (**self).notify_nonconditional(record)
    }

    fn run_block(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        (**self).run_block(block, stats)
    }

    fn run_block_scalar(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        (**self).run_block_scalar(block, stats)
    }

    fn run_block_frontend(&mut self, block: &[BranchRecord]) {
        (**self).run_block_frontend(block)
    }

    fn set_pipeline_depth(&mut self, depth: usize) {
        (**self).set_pipeline_depth(depth)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl StorageBudget for Box<dyn ConditionalPredictor + Send> {
    fn storage_items(&self) -> Vec<StorageItem> {
        (**self).storage_items()
    }
}

/// The trivial static predictor (predicts every branch taken). Useful as a
/// floor baseline and for tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl ConditionalPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }

    fn update(&mut self, _record: &BranchRecord) {}

    fn name(&self) -> &str {
        "always-taken"
    }
}

// bp-lint: allow-item(hot-path-alloc, "storage accounting is cold; never on the per-branch path")
impl StorageBudget for AlwaysTaken {
    fn storage_items(&self) -> Vec<StorageItem> {
        Vec::new()
    }
}

/// Running prediction accuracy statistics, maintained by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub predicted: u64,
    /// Conditional branches mispredicted.
    pub mispredicted: u64,
}

impl PredictorStats {
    /// Records one prediction outcome.
    #[inline]
    pub fn record(&mut self, correct: bool) {
        self.predicted += 1;
        if !correct {
            self.mispredicted += 1;
        }
    }

    /// Misprediction ratio in `[0, 1]`, or `None` before any prediction.
    pub fn misprediction_rate(&self) -> Option<f64> {
        (self.predicted != 0).then(|| self.mispredicted as f64 / self.predicted as f64)
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &PredictorStats) {
        self.predicted += other.predicted;
        self.mispredicted += other.mispredicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_behaviour() {
        let mut p = AlwaysTaken;
        assert!(p.predict(0x1234));
        p.update(&BranchRecord::conditional(0x1234, 0x1000, false));
        assert!(p.predict(0x1234), "static predictor never learns");
        assert_eq!(p.storage_bits(), 0);
        assert!(p.storage_items().is_empty());
        assert_eq!(p.name(), "always-taken");
    }

    #[test]
    fn default_attribution_is_unattributed_and_consistent() {
        let mut p = AlwaysTaken;
        let (pred, attr) = p.predict_attributed(0x40);
        assert!(pred);
        assert_eq!(attr, PredictionAttribution::unattributed());
    }

    #[test]
    fn stats_rates() {
        let mut s = PredictorStats::default();
        assert_eq!(s.misprediction_rate(), None);
        s.record(true);
        s.record(false);
        s.record(false);
        assert_eq!(s.predicted, 3);
        assert_eq!(s.mispredicted, 2);
        assert!((s.misprediction_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let mut t = PredictorStats::default();
        t.record(true);
        t.merge(&s);
        assert_eq!(t.predicted, 4);
        assert_eq!(t.mispredicted, 2);
    }

    #[test]
    fn default_notify_is_a_noop() {
        let mut p = AlwaysTaken;
        p.notify_nonconditional(&BranchRecord::call(0x10, 0x20));
    }
}
