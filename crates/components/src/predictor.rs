//! The simulator-facing predictor trait.

use crate::attribution::PredictionAttribution;
use crate::budget::{StorageBudget, StorageItem};
use bp_trace::BranchRecord;

/// A conditional branch direction predictor, driven with the CBP protocol:
/// for each conditional branch the simulator calls
/// [`predict`](ConditionalPredictor::predict) and then
/// [`update`](ConditionalPredictor::update) with the resolved outcome;
/// non-conditional branches are reported through
/// [`notify_nonconditional`](ConditionalPredictor::notify_nonconditional)
/// because they still shift path/target history (and, for IMLI-equipped
/// predictors, can matter to loop tracking).
///
/// `predict` takes `&mut self` because table-based predictors cache their
/// lookup state (computed indices, matching banks) between the prediction
/// and the update of the same branch, exactly as the reference CBP
/// simulators do.
///
/// Storage accounting comes from the [`StorageBudget`] supertrait, which
/// itemizes every table's exact bit cost; prediction attribution (which
/// component provided each prediction) from
/// [`predict_attributed`](ConditionalPredictor::predict_attributed),
/// which the hot simulation path simply never calls.
pub trait ConditionalPredictor: StorageBudget {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Predicts like [`predict`](ConditionalPredictor::predict) and also
    /// reports *which component provided* the prediction.
    ///
    /// Drop-in replacement in the CBP protocol (a subsequent
    /// [`update`](ConditionalPredictor::update) applies to it exactly as
    /// to `predict`), guaranteed to return the same direction and leave
    /// the predictor in the same state as `predict` would have. The
    /// default forwards to `predict` and reports
    /// [`PredictionAttribution::unattributed`], so implementing the
    /// channel is optional and the plain path never pays for it.
    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        (self.predict(pc), PredictionAttribution::unattributed())
    }

    /// Trains the predictor with the resolved outcome of the branch that
    /// was just predicted. `record.taken` is the true direction.
    fn update(&mut self, record: &BranchRecord);

    /// Reports a non-conditional branch (jump, call, return, indirect).
    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// A short human-readable configuration name, e.g. `"TAGE-GSC+IMLI"`.
    fn name(&self) -> &str;
}

/// Boxed predictors forward the whole protocol, so composed predictors
/// (e.g. the wormhole wrapper) can wrap a type-erased
/// `Box<dyn ConditionalPredictor + Send>` built from a configuration
/// value. `predict_attributed` forwards explicitly — falling back to
/// the trait default would silently drop the inner predictor's
/// attribution.
impl ConditionalPredictor for Box<dyn ConditionalPredictor + Send> {
    fn predict(&mut self, pc: u64) -> bool {
        (**self).predict(pc)
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        (**self).predict_attributed(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        (**self).update(record)
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        (**self).notify_nonconditional(record)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl StorageBudget for Box<dyn ConditionalPredictor + Send> {
    fn storage_items(&self) -> Vec<StorageItem> {
        (**self).storage_items()
    }
}

/// The trivial static predictor (predicts every branch taken). Useful as a
/// floor baseline and for tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl ConditionalPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }

    fn update(&mut self, _record: &BranchRecord) {}

    fn name(&self) -> &str {
        "always-taken"
    }
}

impl StorageBudget for AlwaysTaken {
    fn storage_items(&self) -> Vec<StorageItem> {
        Vec::new()
    }
}

/// Running prediction accuracy statistics, maintained by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub predicted: u64,
    /// Conditional branches mispredicted.
    pub mispredicted: u64,
}

impl PredictorStats {
    /// Records one prediction outcome.
    #[inline]
    pub fn record(&mut self, correct: bool) {
        self.predicted += 1;
        if !correct {
            self.mispredicted += 1;
        }
    }

    /// Misprediction ratio in `[0, 1]`, or `None` before any prediction.
    pub fn misprediction_rate(&self) -> Option<f64> {
        (self.predicted != 0).then(|| self.mispredicted as f64 / self.predicted as f64)
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &PredictorStats) {
        self.predicted += other.predicted;
        self.mispredicted += other.mispredicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_behaviour() {
        let mut p = AlwaysTaken;
        assert!(p.predict(0x1234));
        p.update(&BranchRecord::conditional(0x1234, 0x1000, false));
        assert!(p.predict(0x1234), "static predictor never learns");
        assert_eq!(p.storage_bits(), 0);
        assert!(p.storage_items().is_empty());
        assert_eq!(p.name(), "always-taken");
    }

    #[test]
    fn default_attribution_is_unattributed_and_consistent() {
        let mut p = AlwaysTaken;
        let (pred, attr) = p.predict_attributed(0x40);
        assert!(pred);
        assert_eq!(attr, PredictionAttribution::unattributed());
    }

    #[test]
    fn stats_rates() {
        let mut s = PredictorStats::default();
        assert_eq!(s.misprediction_rate(), None);
        s.record(true);
        s.record(false);
        s.record(false);
        assert_eq!(s.predicted, 3);
        assert_eq!(s.mispredicted, 2);
        assert!((s.misprediction_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let mut t = PredictorStats::default();
        t.record(true);
        t.merge(&s);
        assert_eq!(t.predicted, 4);
        assert_eq!(t.mispredicted, 2);
    }

    #[test]
    fn default_notify_is_a_noop() {
        let mut p = AlwaysTaken;
        p.notify_nonconditional(&BranchRecord::call(0x10, 0x20));
    }
}
