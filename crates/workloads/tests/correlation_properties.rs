//! Suite-level verification that the planted correlations actually hold
//! in the generated flagship traces — the contract between the workload
//! generator and the experiments.

use bp_workloads::{find_benchmark, generate};

/// Extracts per-occurrence outcomes of the branch at `pc`.
fn outcomes_of(trace: &bp_trace::Trace, pc: u64) -> Vec<bool> {
    trace
        .iter()
        .filter(|r| r.pc == pc)
        .map(|r| r.taken)
        .collect()
}

/// Finds the most frequent conditional branch PC in a PC range.
fn hottest_branch(trace: &bp_trace::Trace, lo: u64, hi: u64) -> Option<u64> {
    let mut counts = std::collections::HashMap::new();
    for r in trace.iter() {
        if r.is_conditional() && r.pc >= lo && r.pc < hi && !r.is_backward() {
            *counts.entry(r.pc).or_insert(0u64) += 1;
        }
    }
    // Tie-break toward the lowest PC: kernels place the interesting body
    // branch at the base of their region, noise branches higher up.
    counts
        .into_iter()
        .max_by_key(|&(pc, c)| (c, u64::MAX - pc))
        .map(|(pc, _)| pc)
}

/// SPEC2K6-12's diagonal body branch must satisfy
/// `Out[N][M] = Out[N-1][M-1]` for the overwhelming majority of
/// iterations (the drift makes it slightly less than 100 %).
#[test]
fn spec2k6_12_diagonal_identity_holds() {
    let trace = generate(&find_benchmark("SPEC2K6-12").expect("exists"), 150_000);
    // The diagonal kernel is the first kernel: PC region 0x40_0000.
    let body = hottest_branch(&trace, 0x40_0000, 0x41_0000).expect("diagonal body exists");
    let outs = outcomes_of(&trace, body);
    let trip = 40usize;
    let outers = outs.len() / trip;
    assert!(outers > 50, "need many outer iterations, got {outers}");
    let mut matches = 0usize;
    let mut total = 0usize;
    for n in 1..outers {
        for m in 1..trip {
            total += 1;
            matches += usize::from(outs[n * trip + m] == outs[(n - 1) * trip + (m - 1)]);
        }
    }
    let rate = matches as f64 / total as f64;
    assert!(rate > 0.85, "diagonal identity rate {rate:.3}");
}

/// MM-4's inverted body branch must satisfy `Out[N][M] = ¬Out[N-1][M]`
/// exactly (no drift in that kernel).
#[test]
fn mm4_inversion_identity_holds() {
    let trace = generate(&find_benchmark("MM-4").expect("exists"), 450_000);
    let body = hottest_branch(&trace, 0x40_0000, 0x41_0000).expect("inverted body exists");
    let outs = outcomes_of(&trace, body);
    let trip = 40usize;
    let outers = outs.len() / trip;
    assert!(outers > 20);
    for n in 1..outers {
        for m in 0..trip {
            assert_eq!(
                outs[n * trip + m],
                !outs[(n - 1) * trip + m],
                "inversion broken at outer {n}, inner {m}"
            );
        }
    }
}

/// SPEC2K6-04's same-iteration branch sits in a loop with *variable*
/// trip counts (the anti-wormhole property): consecutive traversal
/// lengths of the inner backward branch must differ.
#[test]
fn spec2k6_04_trip_counts_vary() {
    let trace = generate(&find_benchmark("SPEC2K6-04").expect("exists"), 150_000);
    // The backward branch of the first kernel closes the inner loop.
    let mut lengths = Vec::new();
    let mut run = 0u32;
    for r in trace.iter() {
        if r.is_conditional() && r.is_backward() && (0x40_0000..0x41_0000).contains(&r.pc) {
            if r.taken {
                run += 1;
            } else {
                lengths.push(run);
                run = 0;
            }
        }
    }
    assert!(lengths.len() > 50, "need many traversals");
    let distinct: std::collections::HashSet<u32> = lengths.iter().copied().collect();
    assert!(
        distinct.len() > 10,
        "trip counts must vary widely, got {} distinct values",
        distinct.len()
    );
}

/// WS04's nested branch must execute on only a strict subset of inner
/// iterations (the paper's B4 case).
#[test]
fn ws04_nested_branch_is_guarded() {
    let trace = generate(&find_benchmark("WS04").expect("exists"), 150_000);
    // NestedConditional kernel layout: body at +0, guard at +8,
    // backward at +16 in the first kernel region.
    let body = outcomes_of(&trace, 0x40_0000).len();
    let guard = outcomes_of(&trace, 0x40_0008).len();
    assert!(body > 0, "nested body must execute");
    assert!(
        body < guard * 9 / 10,
        "nested body ({body}) must run on a strict subset of guard occurrences ({guard})"
    );
}
