//! Where generated records go.
//!
//! Kernels emit through the [`RecordSink`] trait instead of pushing
//! into a concrete [`Trace`], so the same kernel code serves both the
//! materializing path ([`generate`](crate::generate) collects into a
//! `Trace`) and the streaming path
//! ([`stream_benchmark`](crate::stream_benchmark) hands records out one
//! at a time from a bounded buffer).

use bp_trace::{BranchRecord, Trace};

/// A destination for generated branch records.
///
/// `instructions_emitted` must be O(1) and monotonically track every
/// record pushed — the kernel scheduler uses it for its per-phase
/// instruction budgets.
pub trait RecordSink {
    /// Accepts one generated record.
    fn push_record(&mut self, record: BranchRecord);

    /// Total retired instructions across all records pushed so far.
    fn instructions_emitted(&self) -> u64;
}

impl RecordSink for Trace {
    #[inline]
    fn push_record(&mut self, record: BranchRecord) {
        self.push(record);
    }

    #[inline]
    fn instructions_emitted(&self) -> u64 {
        self.instruction_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_a_sink() {
        let mut t = Trace::new("sink");
        t.push_record(BranchRecord::conditional(0x10, 0x8, true).with_leading_instructions(4));
        t.push_record(BranchRecord::call(0x20, 0x100));
        assert_eq!(t.instructions_emitted(), 5 + 1);
        assert_eq!(t.len(), 2);
    }
}
