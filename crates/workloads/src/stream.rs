//! Lazy, O(1)-memory benchmark generation.
//!
//! [`BenchmarkStream`] drives the same kernel scheduler as
//! [`generate`](crate::generate) — identical RNG, identical phase
//! order, identical records — but buffers only the *current kernel
//! phase* (a few thousand instructions) instead of the whole trace, so
//! a 100M-instruction benchmark streams through the simulator in
//! constant memory.

use crate::kernels::Kernel;
use crate::sink::RecordSink;
use crate::spec::{BenchmarkSpec, PHASE_INSTRUCTIONS};
use bp_trace::{BranchRecord, BranchStream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One kernel phase's worth of pending records.
///
/// `instructions` is *cumulative over the whole stream* (never reset),
/// because the kernel scheduler budgets phases against the running
/// total — exactly like `Trace::instruction_count()` on the
/// materializing path.
#[derive(Debug, Default)]
struct PhaseBuffer {
    records: VecDeque<BranchRecord>,
    instructions: u64,
}

impl RecordSink for PhaseBuffer {
    #[inline]
    fn push_record(&mut self, record: BranchRecord) {
        self.instructions += record.instructions();
        self.records.push_back(record);
    }

    #[inline]
    fn instructions_emitted(&self) -> u64 {
        self.instructions
    }
}

/// Lazily generated benchmark records (see the module docs).
///
/// Implements both [`BranchStream`] (what the simulator consumes) and
/// [`Iterator`]. The stream is deterministic: two streams from the same
/// spec and instruction budget yield identical record sequences, and
/// both are record-for-record identical to
/// [`generate`](crate::generate) — which is now literally a
/// `collect()` of this stream.
///
/// ```
/// use bp_trace::BranchStream;
/// use bp_workloads::{cbp4_suite, generate, stream_benchmark};
///
/// let spec = &cbp4_suite()[0];
/// let materialized = generate(spec, 30_000);
/// let streamed: Vec<_> = stream_benchmark(spec, 30_000).collect();
/// assert_eq!(materialized.records(), streamed.as_slice());
/// ```
#[derive(Debug)]
pub struct BenchmarkStream {
    name: String,
    rng: StdRng,
    kernels: Vec<(Kernel, f64)>,
    target_instructions: u64,
    buffer: PhaseBuffer,
    /// Shuffled kernel visit order of the current round, and the next
    /// position in it.
    order: Vec<usize>,
    pos: usize,
    exhausted: bool,
}

impl BenchmarkStream {
    /// Opens a stream producing at least `instructions` retired
    /// instructions of `spec`'s kernel mix.
    ///
    /// # Panics
    ///
    /// Panics if the spec was constructed manually with an empty kernel
    /// list.
    pub fn new(spec: &BenchmarkSpec, instructions: u64) -> Self {
        assert!(!spec.kernels.is_empty(), "benchmark needs kernels");
        let rng = StdRng::seed_from_u64(spec.seed ^ 0xB5AD_4ECE_DA1C_E2A9);
        // Every kernel instance gets a disjoint PC region so cross-kernel
        // aliasing is structural (via table indexing), not accidental.
        let kernels: Vec<(Kernel, f64)> = spec
            .kernels
            .iter()
            .enumerate()
            .map(|(i, (k, w))| (k.instantiate(0x40_0000 + (i as u64) * 0x1_0000), *w))
            .collect();
        BenchmarkStream {
            name: spec.name.clone(),
            rng,
            kernels,
            target_instructions: instructions,
            buffer: PhaseBuffer::default(),
            order: Vec::new(),
            pos: 0,
            exhausted: false,
        }
    }

    /// Instructions generated so far (including records still buffered).
    pub fn instructions_generated(&self) -> u64 {
        self.buffer.instructions
    }

    /// Runs one kernel phase into the buffer, or marks the stream
    /// exhausted. Mirrors the weighted phase schedule of the
    /// materializing generator: kernels run in a per-round shuffled
    /// order with weight-scaled budgets until the instruction target is
    /// reached.
    fn refill(&mut self) {
        if self.pos >= self.order.len() {
            if self.buffer.instructions >= self.target_instructions {
                self.exhausted = true;
                return;
            }
            let mut idx: Vec<usize> = (0..self.kernels.len()).collect();
            for i in (1..idx.len()).rev() {
                idx.swap(i, self.rng.gen_range(0..=i));
            }
            self.order = idx;
            self.pos = 0;
        }
        let i = self.order[self.pos];
        self.pos += 1;
        let (kernel, weight) = &mut self.kernels[i];
        let budget = (PHASE_INSTRUCTIONS as f64 * *weight) as u64;
        kernel.run(&mut self.rng, &mut self.buffer, budget.max(500));
        if self.buffer.instructions >= self.target_instructions {
            self.exhausted = true;
        }
    }
}

impl BranchStream for BenchmarkStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_record(&mut self) -> Option<BranchRecord> {
        loop {
            if let Some(record) = self.buffer.records.pop_front() {
                return Some(record);
            }
            if self.exhausted {
                return None;
            }
            self.refill();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.buffer.records.len();
        if self.exhausted {
            (buffered, Some(buffered))
        } else {
            (buffered, None)
        }
    }
}

impl Iterator for BenchmarkStream {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        self.next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        BranchStream::size_hint(self)
    }
}

/// Opens a lazy record stream for `spec` (see [`BenchmarkStream`]).
pub fn stream_benchmark(spec: &BenchmarkSpec, instructions: u64) -> BenchmarkStream {
    BenchmarkStream::new(spec, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{KernelSpec, TripCount};
    use crate::spec::generate;

    fn sample_spec() -> BenchmarkSpec {
        BenchmarkSpec::new(
            "stream-sample",
            11,
            vec![
                (
                    KernelSpec::Biased {
                        probabilities: vec![0.9, 0.2],
                    },
                    1.0,
                ),
                (
                    KernelSpec::SameIteration {
                        trip: TripCount::Variable { min: 4, max: 24 },
                        drift: 0.2,
                        noise_branches: 1,
                    },
                    2.0,
                ),
            ],
        )
    }

    #[test]
    fn stream_matches_materialized_generation_exactly() {
        let spec = sample_spec();
        let materialized = generate(&spec, 150_000);
        let streamed: Vec<BranchRecord> = stream_benchmark(&spec, 150_000).collect();
        assert_eq!(materialized.records(), streamed.as_slice());
    }

    #[test]
    fn stream_is_deterministic() {
        let spec = sample_spec();
        let a: Vec<BranchRecord> = stream_benchmark(&spec, 60_000).collect();
        let b: Vec<BranchRecord> = stream_benchmark(&spec, 60_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_reaches_instruction_target() {
        let mut stream = stream_benchmark(&sample_spec(), 90_000);
        let mut instructions = 0u64;
        while let Some(r) = stream.next_record() {
            instructions += r.instructions();
        }
        assert!(instructions >= 90_000);
        // Does not wildly overshoot (one kernel phase at most).
        assert!(instructions < 120_000);
        assert_eq!(instructions, stream.instructions_generated());
    }

    #[test]
    fn buffer_stays_bounded_by_one_phase() {
        // The whole point: buffered records never approach the trace
        // length. The largest phase here is 2.0 * 4000 = 8000
        // instructions; with ~3 instructions per record that is < 4096
        // records, while the full trace holds hundreds of thousands.
        let mut stream = stream_benchmark(&sample_spec(), 1_000_000);
        let mut peak_buffered = 0usize;
        let mut total = 0usize;
        while stream.next_record().is_some() {
            peak_buffered = peak_buffered.max(stream.buffer.records.len());
            total += 1;
        }
        assert!(total > 100_000, "trace is long: {total}");
        assert!(
            peak_buffered < 8_000,
            "buffer bounded by one phase, got {peak_buffered}"
        );
    }

    #[test]
    fn zero_instruction_target_is_empty() {
        let mut stream = stream_benchmark(&sample_spec(), 0);
        assert!(stream.next_record().is_none());
        assert_eq!(BranchStream::size_hint(&stream), (0, Some(0)));
    }

    #[test]
    fn stream_name_matches_spec() {
        let stream = stream_benchmark(&sample_spec(), 1_000);
        assert_eq!(stream.name(), "stream-sample");
    }
}
