//! Caching generated benchmarks to disk in trace format v2.
//!
//! Generation is deterministic but not free; re-simulating the same
//! benchmark across many predictor configurations regenerates the same
//! records every time. [`TraceFileSink`] is a [`RecordSink`] whose
//! destination is a v2 [`BlockWriter`] instead of memory, and
//! [`cache_benchmark`] streams a whole benchmark through it — so a
//! trace of any length caches in O(one kernel phase) memory, and later
//! runs replay it through `bp_trace::TraceReader` instead of the kernel
//! scheduler.

use crate::sink::RecordSink;
use crate::spec::BenchmarkSpec;
use bp_trace::{BlockWriter, BranchRecord, BranchStream, TraceIoError};
use std::io::Write;

/// A [`RecordSink`] that serializes every record to a v2 trace stream
/// as it arrives.
///
/// Because [`RecordSink::push_record`] cannot surface I/O failures, a
/// mid-stream write error is stashed and later records are dropped;
/// [`TraceFileSink::finish`] reports the stashed error instead of
/// writing a terminator, so a partial file is never mistaken for a
/// complete one.
#[derive(Debug)]
pub struct TraceFileSink<W: Write> {
    writer: BlockWriter<W>,
    instructions: u64,
    records: u64,
    error: Option<TraceIoError>,
}

impl<W: Write> TraceFileSink<W> {
    /// Opens a sink writing a v2 trace named `name` to `writer`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] if writing the header fails.
    pub fn new(writer: W, name: &str) -> Result<Self, TraceIoError> {
        Ok(TraceFileSink {
            writer: BlockWriter::new(writer, name)?,
            instructions: 0,
            records: 0,
            error: None,
        })
    }

    /// Records accepted so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finalizes the trace (final block + terminator frame) and returns
    /// the record count.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered, whether stashed during
    /// [`RecordSink::push_record`] or hit while finalizing.
    pub fn finish(self) -> Result<u64, TraceIoError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.finish()
    }
}

impl<W: Write> RecordSink for TraceFileSink<W> {
    fn push_record(&mut self, record: BranchRecord) {
        if self.error.is_some() {
            return;
        }
        match self.writer.push(&record) {
            Ok(()) => {
                self.instructions += record.instructions();
                self.records += 1;
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn instructions_emitted(&self) -> u64 {
        self.instructions
    }
}

/// Generates `spec` at `instructions` retired instructions straight to
/// `writer` as a v2 trace, in O(one kernel phase) memory, returning the
/// record count.
///
/// The cached file replays record-for-record identically to
/// [`generate`](crate::generate) / [`BenchmarkSpec::stream`] via
/// `bp_trace::TraceReader` (generation is deterministic), so it can
/// substitute for regeneration in any simulation path.
///
/// # Errors
///
/// Returns a [`TraceIoError`] if writing fails.
pub fn cache_benchmark<W: Write>(
    spec: &BenchmarkSpec,
    instructions: u64,
    writer: W,
) -> Result<u64, TraceIoError> {
    let mut sink = TraceFileSink::new(writer, &spec.name)?;
    let mut stream = spec.stream(instructions);
    while let Some(record) = stream.next_record() {
        sink.push_record(record);
        if sink.error.is_some() {
            break;
        }
    }
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::generate;
    use crate::suites::cbp4_suite;
    use bp_trace::read_trace;
    use std::io;

    #[test]
    fn cached_file_replays_generation_exactly() {
        let spec = &cbp4_suite()[0];
        let mut buf = Vec::new();
        let records = cache_benchmark(spec, 60_000, &mut buf).expect("cache");
        let materialized = generate(spec, 60_000);
        assert_eq!(records as usize, materialized.len());
        let back = read_trace(buf.as_slice()).expect("read cached");
        assert_eq!(back, materialized);
        assert_eq!(back.name(), spec.name);
    }

    #[test]
    fn sink_tracks_instructions_for_the_scheduler() {
        let spec = &cbp4_suite()[1];
        let mut buf = Vec::new();
        let mut sink = TraceFileSink::new(&mut buf, "tracked").expect("open");
        let mut stream = spec.stream(20_000);
        let mut pushed = 0u64;
        while let Some(r) = stream.next_record() {
            pushed += r.instructions();
            sink.push_record(r);
        }
        assert_eq!(sink.instructions_emitted(), pushed);
        assert!(sink.records() > 0);
        sink.finish().expect("finish");
    }

    /// A writer that fails after a fixed number of bytes.
    struct FailingWriter {
        left: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.left < buf.len() {
                return Err(io::Error::other("disk full"));
            }
            self.left -= buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failure_is_reported_at_finish_not_swallowed() {
        let spec = &cbp4_suite()[0];
        // Enough for the header, not for the first block.
        let err = cache_benchmark(spec, 200_000, FailingWriter { left: 64 }).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }
}
