//! Synthetic CBP-like benchmark suites.
//!
//! The paper evaluates on the 40-trace CBP3 and 40-trace CBP4 sets, which
//! are championship artifacts we cannot redistribute. This crate
//! synthesizes two suites of the same cardinality and naming from
//! parameterized [`Kernel`]s that plant exactly the correlation
//! structures the paper analyzes (its Figure 1 taxonomy):
//!
//! * **same-iteration** branches (`Out[N][M] ≈ Out[N-1][M]`, drifting
//!   slowly) — the IMLI-SIC target, with variable-trip-count and
//!   nested-conditional variants that the wormhole predictor structurally
//!   cannot track;
//! * **diagonal** branches (`Out[N][M] = Out[N-1][M-1]`) — the WH /
//!   IMLI-OH target;
//! * **inverted** branches (`Out[N][M] = ¬Out[N-1][M]`) — the paper's
//!   MM-4 case;
//! * loop exits, biased branches, global-history-correlated branches,
//!   per-branch periodic (local-history-friendly) branches, and
//!   irregular near-random branches that set each benchmark's MPKI
//!   floor.
//!
//! The benchmarks named in the paper's per-benchmark analysis
//! (SPEC2K6-04, SPEC2K6-12, MM-4, CLIENT02, MM07, WS04, WS03) receive
//! dedicated kernel mixes so that *who benefits from which component*
//! reproduces the paper's shape. Everything is deterministic given the
//! per-benchmark seed.
//!
//! Benchmarks can be materialized ([`generate`] → `Trace`) or streamed
//! lazily in O(1) memory ([`stream_benchmark`] /
//! [`BenchmarkSpec::stream`] → [`BenchmarkStream`]); the two paths
//! share one kernel scheduler and produce identical record sequences.
//!
//! Shared-predictor scenarios are composed on top of any such stream by
//! the combinator layer: [`interleave`] mixes N tenant streams under a
//! deterministic schedule into disjoint PC regions, [`context_switch`]
//! injects periodic predictor flushes, and [`Genome`] replays
//! adversarial branch-pattern genomes ([`AdversarialStream`]) for the
//! worst-case search in `bp-sim`.
//!
//! ```
//! use bp_workloads::{cbp4_suite, generate};
//! let suite = cbp4_suite();
//! assert_eq!(suite.len(), 40);
//! let trace = generate(&suite[0], 50_000);
//! assert!(trace.instruction_count() >= 50_000);
//! ```

#![warn(missing_docs)]

mod cache;
mod combinators;
mod kernels;
mod sink;
mod spec;
mod stream;
mod suites;

pub use cache::{cache_benchmark, TraceFileSink};
pub use combinators::{
    context_switch, interleave, AdversarialStream, ContextSwitchStream, EventRecords, EventStream,
    FlushMode, Gene, Genome, InterleaveSchedule, InterleavedStream, ScenarioEvent, SingleTenant,
    ADVERSARIAL_PC_BASE, TENANT_PC_STRIDE,
};
pub use kernels::{Kernel, KernelSpec, TripCount};
pub use sink::RecordSink;
pub use spec::{generate, BenchmarkSpec};
pub use stream::{stream_benchmark, BenchmarkStream};
pub use suites::{
    cbp3_suite, cbp4_suite, find_benchmark, paper_suite, quick_benchmark, suite_by_name,
};
