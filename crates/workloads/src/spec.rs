//! Benchmark specifications: named, seeded kernel mixes.

use crate::kernels::KernelSpec;
use crate::stream::BenchmarkStream;
use bp_trace::Trace;

/// A named synthetic benchmark: a weighted mix of kernels plus a seed.
///
/// Generation interleaves the kernels in phases (as a real program
/// interleaves its loops), with per-phase budgets proportional to the
/// kernel weights, until the requested instruction count is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (mirrors the paper's CBP labels, e.g.
    /// `"SPEC2K6-12"`).
    pub name: String,
    /// The kernel mix: `(kernel, weight)`.
    pub kernels: Vec<(KernelSpec, f64)>,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or any weight is non-positive.
    pub fn new(name: impl Into<String>, seed: u64, kernels: Vec<(KernelSpec, f64)>) -> Self {
        assert!(!kernels.is_empty(), "benchmark needs at least one kernel");
        assert!(
            kernels.iter().all(|(_, w)| *w > 0.0),
            "kernel weights must be positive"
        );
        BenchmarkSpec {
            name: name.into(),
            kernels,
            seed,
        }
    }

    /// Opens a lazy record stream for this benchmark — the O(1)-memory
    /// path (see [`BenchmarkStream`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec was constructed manually with an empty kernel
    /// list.
    pub fn stream(&self, instructions: u64) -> BenchmarkStream {
        BenchmarkStream::new(self, instructions)
    }
}

/// Instructions emitted per generation phase (per unit weight).
pub(crate) const PHASE_INSTRUCTIONS: u64 = 4_000;

/// Generates the benchmark's trace with (at least) `instructions`
/// retired instructions, fully materialized in memory.
///
/// Deterministic: the same spec and instruction budget always produce
/// the identical trace. This is a thin collect wrapper over
/// [`BenchmarkSpec::stream`] — simulation paths that do not need random
/// access should consume the stream directly and skip the O(n)
/// allocation.
///
/// # Panics
///
/// Panics under the same conditions as [`BenchmarkSpec::new`] if the
/// spec was constructed manually with an empty kernel list.
pub fn generate(spec: &BenchmarkSpec, instructions: u64) -> Trace {
    let est = (instructions as usize / 5).min(1 << 26);
    let mut trace = Trace::with_capacity(spec.name.clone(), est);
    trace.extend(spec.stream(instructions));
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::TripCount;

    fn sample_spec() -> BenchmarkSpec {
        BenchmarkSpec::new(
            "sample",
            7,
            vec![
                (
                    KernelSpec::Biased {
                        probabilities: vec![0.9, 0.3],
                    },
                    1.0,
                ),
                (
                    KernelSpec::SameIteration {
                        trip: TripCount::Fixed(12),
                        drift: 0.1,
                        noise_branches: 1,
                    },
                    2.0,
                ),
            ],
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = sample_spec();
        let a = generate(&spec, 100_000);
        let b = generate(&spec, 100_000);
        assert_eq!(a, b);
        assert_eq!(a.name(), "sample");
    }

    #[test]
    fn generation_reaches_budget() {
        let t = generate(&sample_spec(), 250_000);
        assert!(t.instruction_count() >= 250_000);
        // And does not wildly overshoot (one kernel phase at most).
        assert!(t.instruction_count() < 300_000);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = sample_spec();
        let a = generate(&spec, 50_000);
        spec.seed = 8;
        let b = generate(&spec, 50_000);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_skew_the_mix() {
        let t = generate(&sample_spec(), 200_000);
        let stats = t.stats();
        // The nest kernel (weight 2) must dominate the record count:
        // its PCs live in the second kernel's region.
        let nest_records = t
            .iter()
            .filter(|r| r.pc >= 0x41_0000 && r.pc < 0x42_0000)
            .count();
        assert!(nest_records as f64 > t.len() as f64 * 0.5);
        assert!(stats.conditionals() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn rejects_empty_specs() {
        let _ = BenchmarkSpec::new("x", 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_weights() {
        let _ = BenchmarkSpec::new(
            "x",
            0,
            vec![(
                KernelSpec::Irregular {
                    branches: 1,
                    spread: 0.1,
                },
                0.0,
            )],
        );
    }
}
