//! Benchmark specifications: named, seeded kernel mixes.

use crate::kernels::{Kernel, KernelSpec};
use bp_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named synthetic benchmark: a weighted mix of kernels plus a seed.
///
/// Generation interleaves the kernels in phases (as a real program
/// interleaves its loops), with per-phase budgets proportional to the
/// kernel weights, until the requested instruction count is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (mirrors the paper's CBP labels, e.g.
    /// `"SPEC2K6-12"`).
    pub name: String,
    /// The kernel mix: `(kernel, weight)`.
    pub kernels: Vec<(KernelSpec, f64)>,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or any weight is non-positive.
    pub fn new(name: impl Into<String>, seed: u64, kernels: Vec<(KernelSpec, f64)>) -> Self {
        assert!(!kernels.is_empty(), "benchmark needs at least one kernel");
        assert!(
            kernels.iter().all(|(_, w)| *w > 0.0),
            "kernel weights must be positive"
        );
        BenchmarkSpec {
            name: name.into(),
            kernels,
            seed,
        }
    }
}

/// Instructions emitted per generation phase (per unit weight).
const PHASE_INSTRUCTIONS: u64 = 4_000;

/// Generates the benchmark's trace with (at least) `instructions`
/// retired instructions.
///
/// Deterministic: the same spec and instruction budget always produce
/// the identical trace.
///
/// # Panics
///
/// Panics under the same conditions as [`BenchmarkSpec::new`] if the
/// spec was constructed manually with an empty kernel list.
pub fn generate(spec: &BenchmarkSpec, instructions: u64) -> Trace {
    assert!(!spec.kernels.is_empty(), "benchmark needs kernels");
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xB5AD_4ECE_DA1C_E2A9);
    // Every kernel instance gets a disjoint PC region so cross-kernel
    // aliasing is structural (via table indexing), not accidental.
    let mut kernels: Vec<(Kernel, f64)> = spec
        .kernels
        .iter()
        .enumerate()
        .map(|(i, (k, w))| (k.instantiate(0x40_0000 + (i as u64) * 0x1_0000), *w))
        .collect();
    let est = (instructions as usize / 5).min(1 << 26);
    let mut trace = Trace::with_capacity(spec.name.clone(), est);
    while trace.instruction_count() < instructions {
        // Weighted phase schedule: kernels run in index order with
        // weight-scaled budgets; a shuffled visit order varies phase
        // boundaries between rounds.
        let order = {
            let mut idx: Vec<usize> = (0..kernels.len()).collect();
            for i in (1..idx.len()).rev() {
                idx.swap(i, rng.gen_range(0..=i));
            }
            idx
        };
        for i in order {
            let (kernel, weight) = &mut kernels[i];
            let budget = (PHASE_INSTRUCTIONS as f64 * *weight) as u64;
            kernel.run(&mut rng, &mut trace, budget.max(500));
            if trace.instruction_count() >= instructions {
                break;
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::TripCount;

    fn sample_spec() -> BenchmarkSpec {
        BenchmarkSpec::new(
            "sample",
            7,
            vec![
                (
                    KernelSpec::Biased {
                        probabilities: vec![0.9, 0.3],
                    },
                    1.0,
                ),
                (
                    KernelSpec::SameIteration {
                        trip: TripCount::Fixed(12),
                        drift: 0.1,
                        noise_branches: 1,
                    },
                    2.0,
                ),
            ],
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = sample_spec();
        let a = generate(&spec, 100_000);
        let b = generate(&spec, 100_000);
        assert_eq!(a, b);
        assert_eq!(a.name(), "sample");
    }

    #[test]
    fn generation_reaches_budget() {
        let t = generate(&sample_spec(), 250_000);
        assert!(t.instruction_count() >= 250_000);
        // And does not wildly overshoot (one kernel phase at most).
        assert!(t.instruction_count() < 300_000);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = sample_spec();
        let a = generate(&spec, 50_000);
        spec.seed = 8;
        let b = generate(&spec, 50_000);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_skew_the_mix() {
        let t = generate(&sample_spec(), 200_000);
        let stats = t.stats();
        // The nest kernel (weight 2) must dominate the record count:
        // its PCs live in the second kernel's region.
        let nest_records = t
            .iter()
            .filter(|r| r.pc >= 0x41_0000 && r.pc < 0x42_0000)
            .count();
        assert!(nest_records as f64 > t.len() as f64 * 0.5);
        assert!(stats.conditionals() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn rejects_empty_specs() {
        let _ = BenchmarkSpec::new("x", 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_weights() {
        let _ = BenchmarkSpec::new(
            "x",
            0,
            vec![(
                KernelSpec::Irregular {
                    branches: 1,
                    spread: 0.1,
                },
                0.0,
            )],
        );
    }
}
