//! The two 40-benchmark synthetic suites ("CBP4-like", "CBP3-like").
//!
//! Benchmarks the paper singles out get dedicated planted-correlation
//! mixes (see the crate docs); the rest are category-flavoured generic
//! mixes whose hardness spreads base MPKI over the realistic 0.5-20
//! range.

use crate::kernels::{KernelSpec, TripCount};
use crate::spec::{generate, BenchmarkSpec};
use bp_trace::Trace;

/// A generic benchmark: biased + loop-exit + global-correlated branches,
/// an irregular component scaled by `hardness` (0.0 = fully predictable,
/// 1.0 = very hard), and optionally a local-periodic component scaled by
/// `local` (local-history-friendly content).
fn generic(name: &str, seed: u64, hardness: f64, local: f64) -> BenchmarkSpec {
    let mut kernels: Vec<(KernelSpec, f64)> = vec![
        (
            KernelSpec::Biased {
                probabilities: vec![0.995, 0.99, 0.985, 0.97, 0.9, 0.998, 0.01, 0.03],
            },
            6.0,
        ),
        (
            KernelSpec::LoopExit {
                trips: vec![3, 9, 21],
            },
            2.0,
        ),
        (KernelSpec::GlobalCorrelated { lag: 4 }, 1.5),
        (
            KernelSpec::LongLoop {
                trip: 80 + (seed % 7) as u32 * 13,
                noise_branches: 1,
            },
            0.3,
        ),
    ];
    if hardness > 0.0 {
        kernels.push((
            KernelSpec::Irregular {
                branches: 6,
                spread: 0.15,
            },
            (hardness * 0.45).max(0.03),
        ));
    }
    if local > 0.0 {
        kernels.push((
            KernelSpec::LocalPeriodic {
                periods: vec![5, 9, 13, 23],
                duty: 3,
            },
            (local * 0.7).max(0.03),
        ));
    }
    BenchmarkSpec::new(name, seed, kernels)
}

/// The paper's WH/IMLI-OH showcase shape: a hard benchmark with a heavy
/// constant-trip diagonal nest (`Out[N][M] = Out[N-1][M-1]`).
fn diagonal_heavy(name: &str, seed: u64, trip: u32, hardness: f64) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        seed,
        vec![
            (
                KernelSpec::Diagonal {
                    trip,
                    noise_branches: 1,
                },
                1.1,
            ),
            (
                KernelSpec::Irregular {
                    branches: 6,
                    spread: 0.15,
                },
                hardness * 0.9,
            ),
            (
                KernelSpec::Biased {
                    probabilities: vec![0.995, 0.98, 0.02],
                },
                3.0,
            ),
        ],
    )
}

/// The IMLI-SIC showcase shape the wormhole predictor cannot track:
/// same-iteration correlation under a *variable* trip count.
fn sic_variable(name: &str, seed: u64, min: u32, max: u32, hardness: f64) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        seed,
        vec![
            (
                KernelSpec::SameIteration {
                    trip: TripCount::Variable { min, max },
                    drift: 0.25,
                    noise_branches: 1,
                },
                1.2,
            ),
            (
                KernelSpec::Irregular {
                    branches: 5,
                    spread: 0.15,
                },
                hardness * 0.7,
            ),
            (
                KernelSpec::Biased {
                    probabilities: vec![0.995, 0.04],
                },
                3.0,
            ),
        ],
    )
}

/// The CBP4-like suite: 40 benchmarks named after the paper's CBP4
/// labels, with SPEC2K6-04 (IMLI-SIC, variable trips), SPEC2K6-12
/// (diagonal: WH and IMLI-OH) and MM-4 (inverted prev-outer: IMLI-OH
/// only) carrying the planted correlations the paper analyzes.
pub fn cbp4_suite() -> Vec<BenchmarkSpec> {
    let mut suite = Vec::with_capacity(40);
    for i in 1..=20u64 {
        let name = format!("SPEC2K6-{i:02}");
        let spec = match i {
            // §4.2.2: big IMLI-SIC gain (-2.37 MPKI), untouched by WH.
            4 => sic_variable(&name, 0x4C00 + i, 6, 48, 0.6),
            // §3.3/§4.3: the WH / IMLI-OH benchmark (> 11 MPKI base,
            // > 1.5 MPKI gain).
            12 => diagonal_heavy(&name, 0x4C00 + i, 40, 1.0),
            _ => generic(
                &name,
                0x4C00 + i,
                ((i * 7) % 10) as f64 / 12.0,
                if i % 5 == 0 { 0.5 } else { 0.0 },
            ),
        };
        suite.push(spec);
    }
    for i in 1..=6u64 {
        let name = format!("MM-{i}");
        let spec = if i == 4 {
            // §4.3: Out[N][M] = 1 - Out[N-1][M]; low base MPKI (~1),
            // IMLI-OH (not SIC) recovers it.
            BenchmarkSpec::new(
                &name,
                0x3300 + i,
                vec![
                    (
                        KernelSpec::InvertedPrevOuter {
                            trip: 40,
                            noise_branches: 1,
                        },
                        0.35,
                    ),
                    (
                        KernelSpec::Biased {
                            probabilities: vec![0.995, 0.99, 0.98, 0.005],
                        },
                        6.0,
                    ),
                    (KernelSpec::LoopExit { trips: vec![4, 16] }, 2.0),
                ],
            )
        } else {
            generic(&name, 0x3300 + i, ((i * 3) % 7) as f64 / 10.0, 0.0)
        };
        suite.push(spec);
    }
    for i in 1..=8u64 {
        suite.push(generic(
            &format!("SERVER-{i}"),
            0x5E00 + i,
            ((i * 5) % 9) as f64 / 11.0,
            if i % 3 == 0 { 0.4 } else { 0.0 },
        ));
    }
    for i in 1..=6u64 {
        suite.push(generic(
            &format!("CLIENT-{i}"),
            0xC100 + i,
            ((i * 4) % 8) as f64 / 10.0,
            if i == 2 { 0.6 } else { 0.0 },
        ));
    }
    assert_eq!(suite.len(), 40);
    suite
}

/// The CBP3-like suite: 40 benchmarks named after the paper's CBP3
/// labels. CLIENT02 and MM07 carry the diagonal (WH/IMLI-OH)
/// correlation; WS04 carries nested-conditional + variable-trip
/// same-iteration correlation (the -3.20 MPKI IMLI-SIC case); WS03 a
/// milder same-iteration mix.
pub fn cbp3_suite() -> Vec<BenchmarkSpec> {
    let mut suite = Vec::with_capacity(40);
    for i in 1..=8u64 {
        suite.push(generic(
            &format!("INT{i:02}"),
            0x1700 + i,
            ((i * 6) % 9) as f64 / 11.0,
            if i % 4 == 1 { 0.5 } else { 0.0 },
        ));
    }
    for i in 1..=6u64 {
        suite.push(generic(
            &format!("FP{i:02}"),
            0xF000 + i,
            ((i * 2) % 5) as f64 / 14.0,
            0.0,
        ));
    }
    for i in 1..=8u64 {
        let name = format!("MM{i:02}");
        let spec = if i == 7 {
            // §3.3: > 20 MPKI base, improved by WH, IMLI-SIC *and*
            // IMLI-OH (both correlations present).
            BenchmarkSpec::new(
                &name,
                0x3370 + i,
                vec![
                    (
                        KernelSpec::Diagonal {
                            trip: 40,
                            noise_branches: 1,
                        },
                        1.0,
                    ),
                    (
                        KernelSpec::SameIteration {
                            trip: TripCount::Fixed(24),
                            drift: 0.3,
                            noise_branches: 1,
                        },
                        0.8,
                    ),
                    (
                        KernelSpec::Irregular {
                            branches: 8,
                            spread: 0.12,
                        },
                        1.6,
                    ),
                    (
                        KernelSpec::Biased {
                            probabilities: vec![0.995, 0.04],
                        },
                        2.0,
                    ),
                ],
            )
        } else {
            generic(&name, 0x3370 + i, ((i * 5) % 8) as f64 / 10.0, 0.0)
        };
        suite.push(spec);
    }
    for i in 1..=6u64 {
        let name = format!("CLIENT{i:02}");
        let spec = if i == 2 {
            // §3.3: > 15 MPKI base, > 1.5 MPKI from WH / IMLI-OH.
            diagonal_heavy(&name, 0xC200 + i, 40, 1.2)
        } else {
            generic(&name, 0xC200 + i, ((i * 3) % 7) as f64 / 9.0, 0.0)
        };
        suite.push(spec);
    }
    for i in 1..=6u64 {
        let name = format!("WS{i:02}");
        let spec = match i {
            // §4.2.2: the biggest IMLI-SIC gain (-3.20 MPKI), not
            // improved by WH: nested conditionals + variable trips.
            4 => BenchmarkSpec::new(
                &name,
                0x3504 + i,
                vec![
                    (
                        KernelSpec::NestedConditional {
                            trip: TripCount::Variable { min: 8, max: 40 },
                            guard_rate: 0.6,
                            drift: 0.2,
                        },
                        1.2,
                    ),
                    (
                        KernelSpec::SameIteration {
                            trip: TripCount::Variable { min: 6, max: 32 },
                            drift: 0.25,
                            noise_branches: 1,
                        },
                        0.9,
                    ),
                    (
                        KernelSpec::Irregular {
                            branches: 5,
                            spread: 0.15,
                        },
                        0.6,
                    ),
                    (
                        KernelSpec::Biased {
                            probabilities: vec![0.995, 0.02],
                        },
                        3.0,
                    ),
                ],
            ),
            // Marginal SIC benefit.
            3 => BenchmarkSpec::new(
                &name,
                0x3503 + i,
                vec![
                    (
                        KernelSpec::SameIteration {
                            trip: TripCount::Fixed(16),
                            drift: 0.15,
                            noise_branches: 0,
                        },
                        0.35,
                    ),
                    (
                        KernelSpec::Biased {
                            probabilities: vec![0.995, 0.99, 0.03],
                        },
                        5.0,
                    ),
                    (
                        KernelSpec::Irregular {
                            branches: 4,
                            spread: 0.15,
                        },
                        0.3,
                    ),
                ],
            ),
            _ => generic(&name, 0x3500 + i, ((i * 7) % 6) as f64 / 8.0, 0.0),
        };
        suite.push(spec);
    }
    for i in 1..=6u64 {
        suite.push(generic(
            &format!("SERVER{i:02}"),
            0x5E30 + i,
            ((i * 4) % 7) as f64 / 9.0,
            if i % 3 == 1 { 0.4 } else { 0.0 },
        ));
    }
    assert_eq!(suite.len(), 40);
    suite
}

/// The paper-analysis meta-suite: the eight benchmarks the paper
/// singles out for per-benchmark discussion, across both sets — the
/// planted-correlation showcases (SPEC2K6-04, SPEC2K6-12, MM-4,
/// CLIENT02, MM07, WS03, WS04) plus one generic control (SPEC2K6-01).
/// Small enough for a quick attributed report, expressive enough that
/// every IMLI/WH component shows its signature benchmark.
pub fn paper_suite() -> Vec<BenchmarkSpec> {
    let names = [
        "SPEC2K6-01",
        "SPEC2K6-04",
        "SPEC2K6-12",
        "MM-4",
        "CLIENT02",
        "MM07",
        "WS03",
        "WS04",
    ];
    names
        .iter()
        .map(|n| find_benchmark(n).expect("paper benchmark registered"))
        .collect()
}

/// Looks a suite up by name: `"cbp4"`, `"cbp3"`, or `"paper"` (the
/// [`paper_suite`] subset), case-insensitive.
pub fn suite_by_name(name: &str) -> Option<Vec<BenchmarkSpec>> {
    match name.to_ascii_lowercase().as_str() {
        "cbp4" => Some(cbp4_suite()),
        "cbp3" => Some(cbp3_suite()),
        "paper" => Some(paper_suite()),
        _ => None,
    }
}

/// Finds a benchmark spec by its name across both suites.
pub fn find_benchmark(name: &str) -> Option<BenchmarkSpec> {
    cbp4_suite()
        .into_iter()
        .chain(cbp3_suite())
        .find(|s| s.name == name)
}

/// A small self-contained benchmark for examples and doctests: a generic
/// mix with a mild same-iteration component.
pub fn quick_benchmark(name: &str, seed: u64, instructions: u64) -> Trace {
    let spec = BenchmarkSpec::new(
        name,
        seed,
        vec![
            (
                KernelSpec::Biased {
                    probabilities: vec![0.95, 0.7, 0.1],
                },
                1.0,
            ),
            (
                KernelSpec::SameIteration {
                    trip: TripCount::Fixed(12),
                    drift: 0.15,
                    noise_branches: 1,
                },
                2.0,
            ),
            (
                KernelSpec::Irregular {
                    branches: 3,
                    spread: 0.15,
                },
                0.2,
            ),
        ],
    );
    generate(&spec, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_forty_benchmarks_each() {
        assert_eq!(cbp4_suite().len(), 40);
        assert_eq!(cbp3_suite().len(), 40);
    }

    #[test]
    fn names_are_unique_within_and_across_suites() {
        let mut names: Vec<String> = cbp4_suite()
            .into_iter()
            .chain(cbp3_suite())
            .map(|s| s.name)
            .collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate benchmark names");
    }

    #[test]
    fn paper_benchmarks_exist() {
        for name in [
            "SPEC2K6-04",
            "SPEC2K6-12",
            "MM-4",
            "CLIENT02",
            "MM07",
            "WS04",
            "WS03",
        ] {
            assert!(find_benchmark(name).is_some(), "{name} missing");
        }
        assert!(find_benchmark("NOPE").is_none());
    }

    #[test]
    fn suite_lookup() {
        assert!(suite_by_name("CBP4").is_some());
        assert!(suite_by_name("cbp3").is_some());
        assert!(suite_by_name("cbp5").is_none());
        assert_eq!(suite_by_name("paper").unwrap().len(), paper_suite().len());
    }

    #[test]
    fn paper_suite_is_the_analysis_subset() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 8);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        for name in [
            "SPEC2K6-04",
            "SPEC2K6-12",
            "MM-4",
            "CLIENT02",
            "MM07",
            "WS04",
        ] {
            assert!(names.contains(&name), "{name} missing from paper suite");
        }
    }

    #[test]
    fn generation_smoke_all_benchmarks() {
        // Every benchmark must generate cleanly and look like a branch
        // trace (conditionals present, plausible taken rate).
        for spec in cbp4_suite().into_iter().chain(cbp3_suite()) {
            let t = generate(&spec, 30_000);
            let stats = t.stats();
            assert!(
                stats.conditionals() > 500,
                "{}: too few branches",
                spec.name
            );
            let rate = stats.taken_rate().expect("has conditionals");
            assert!(
                (0.05..=0.95).contains(&rate),
                "{}: degenerate taken rate {rate}",
                spec.name
            );
        }
    }

    #[test]
    fn quick_benchmark_is_deterministic() {
        let a = quick_benchmark("q", 1, 20_000);
        let b = quick_benchmark("q", 1, 20_000);
        assert_eq!(a, b);
        assert_eq!(a.name(), "q");
    }
}
