//! Parameterized branch-behaviour kernels.

use crate::sink::RecordSink;
use bp_trace::BranchRecord;
use rand::rngs::StdRng;
use rand::Rng;

/// Inner-loop trip count behaviour of a loop-nest kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCount {
    /// The same trip count on every outer iteration (the regime the
    /// wormhole predictor requires).
    Fixed(u32),
    /// Uniformly random trips in `[min, max]`, redrawn per outer
    /// iteration (defeats WH; IMLI-SIC is unaffected).
    Variable {
        /// Smallest trip count.
        min: u32,
        /// Largest trip count (inclusive).
        max: u32,
    },
}

impl TripCount {
    fn draw(&self, rng: &mut StdRng) -> u32 {
        match *self {
            TripCount::Fixed(t) => t.max(1),
            TripCount::Variable { min, max } => rng.gen_range(min.max(1)..=max.max(min.max(1))),
        }
    }

    /// Largest possible trip count (pattern array sizing).
    fn max(&self) -> u32 {
        match *self {
            TripCount::Fixed(t) => t.max(1),
            TripCount::Variable { max, .. } => max.max(1),
        }
    }
}

/// A branch-behaviour kernel: a small synthetic program fragment that
/// emits branch records with a chosen correlation structure.
///
/// Each variant documents which predictor component is expected to
/// capture it — this mapping *is* the experiment design.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelSpec {
    /// A two-dimensional loop nest with one body branch whose outcome is
    /// a per-inner-iteration pattern that drifts slowly across outer
    /// iterations (`Out[N][M] ≈ Out[N-1][M]`). Captured by IMLI-SIC;
    /// captured by WH only when `trip` is [`TripCount::Fixed`].
    SameIteration {
        /// Inner trip count behaviour.
        trip: TripCount,
        /// Per-outer-iteration probability of flipping one pattern slot.
        drift: f64,
        /// Number of history-polluting random branches per inner
        /// iteration (defeats plain global history).
        noise_branches: usize,
    },
    /// A two-dimensional loop nest whose body branch satisfies
    /// `Out[N][M] = Out[N-1][M-1]` (the pattern shifts by one each outer
    /// iteration). The WH and IMLI-OH target; IMLI-SIC cannot capture it
    /// (every slot changes every outer iteration).
    Diagonal {
        /// Inner trip count (constant: the WH-comparable regime).
        trip: u32,
        /// Noise branches per inner iteration.
        noise_branches: usize,
    },
    /// `Out[N][M] = ¬Out[N-1][M]`: the paper's MM-4 case. IMLI-OH learns
    /// the inversion through its outcome-indexed counters; IMLI-SIC sees
    /// a slot that flips every outer iteration and fails.
    InvertedPrevOuter {
        /// Inner trip count.
        trip: u32,
        /// Noise branches per inner iteration.
        noise_branches: usize,
    },
    /// A same-iteration branch nested under a data-dependent guard, so it
    /// does not execute on every inner iteration (the paper's B4).
    /// IMLI-SIC captures it; WH cannot (its local history misaligns).
    NestedConditional {
        /// Inner trip count behaviour.
        trip: TripCount,
        /// Probability that the guard lets the inner branch execute.
        guard_rate: f64,
        /// Pattern drift as in `SameIteration`.
        drift: f64,
    },
    /// Constant-trip loops exercising only the exit branch (loop
    /// predictor / IMLI-SIC territory).
    LoopExit {
        /// Trip counts of the emitted loops.
        trips: Vec<u32>,
    },
    /// A *long* constant-trip loop with noisy body branches: the exit
    /// context exceeds any global history's reach, so only counting
    /// predictors (the loop predictor, or IMLI-SIC via the iteration
    /// index) get the exit right. This is what gives the loop predictor
    /// its small-but-real benefit in the paper's §4.2.2 ablation.
    LongLoop {
        /// Trip count (typically 64-256).
        trip: u32,
        /// Noisy body branches per iteration.
        noise_branches: usize,
    },
    /// Statically biased branches: `branches[i]` is taken with the given
    /// probability. Any predictor captures the bias; the residual
    /// entropy sets a floor.
    Biased {
        /// Taken probabilities of the static branches.
        probabilities: Vec<f64>,
    },
    /// Branch `B` repeats the outcome of branch `A` from `lag` branches
    /// earlier — pure global-history correlation, captured by TAGE/GEHL.
    GlobalCorrelated {
        /// Distance (in branches) between correlator and correlated.
        lag: usize,
    },
    /// Per-branch periodic patterns with mutually prime periods,
    /// randomly interleaved so global history cannot track them:
    /// local-history component territory.
    LocalPeriodic {
        /// Periods of the static branches.
        periods: Vec<u32>,
        /// Taken slots per period.
        duty: u32,
    },
    /// Near-random data-dependent branches (taken probability per branch
    /// drawn from `[0.5 - spread, 0.5 + spread]`): the irreducible MPKI
    /// floor of hard benchmarks.
    Irregular {
        /// Number of static branches.
        branches: usize,
        /// Half-width of the bias spread around 0.5.
        spread: f64,
    },
}

impl KernelSpec {
    /// Instantiates the kernel with a dedicated PC region.
    pub fn instantiate(&self, pc_base: u64) -> Kernel {
        Kernel::new(self.clone(), pc_base)
    }
}

/// Pattern state of a loop-nest kernel.
#[derive(Debug, Clone)]
struct NestState {
    pattern: Vec<bool>,
    phase: usize,
}

/// A stateful instance of a [`KernelSpec`] bound to a PC region.
///
/// Kernels keep their pattern/period state across invocations of
/// [`Kernel::run`], so a benchmark can interleave kernels in phases (as a
/// real program interleaves its loops) without resetting their learned
/// structure.
#[derive(Debug, Clone)]
pub struct Kernel {
    spec: KernelSpec,
    pc_base: u64,
    nest: Option<NestState>,
    period_positions: Vec<u32>,
    irregular_bias: Vec<f64>,
    outcome_queue: Vec<bool>,
}

/// Instructions of non-branch work simulated inside a loop body.
const BODY_WORK: u32 = 7;

impl Kernel {
    fn new(spec: KernelSpec, pc_base: u64) -> Self {
        Kernel {
            spec,
            pc_base,
            nest: None,
            period_positions: Vec::new(),
            irregular_bias: Vec::new(),
            outcome_queue: Vec::new(),
        }
    }

    #[inline]
    fn pc(&self, slot: u64) -> u64 {
        self.pc_base + slot * 8
    }

    fn nest_state(&mut self, rng: &mut StdRng, len: usize) -> &mut NestState {
        if self.nest.is_none() {
            self.nest = Some(NestState {
                pattern: (0..len).map(|_| rng.gen_bool(0.5)).collect(),
                phase: 0,
            });
        }
        self.nest.as_mut().expect("just initialized")
    }

    /// Emits records into `sink` until roughly `instruction_budget`
    /// instructions have been produced by this call.
    pub fn run<S: RecordSink + ?Sized>(
        &mut self,
        rng: &mut StdRng,
        sink: &mut S,
        instruction_budget: u64,
    ) {
        let start = sink.instructions_emitted();
        while sink.instructions_emitted() - start < instruction_budget {
            self.run_once(rng, sink);
        }
    }

    /// Emits one "round" of the kernel (one outer iteration for nests,
    /// one sweep for flat kernels).
    fn run_once<S: RecordSink + ?Sized>(&mut self, rng: &mut StdRng, sink: &mut S) {
        match self.spec.clone() {
            KernelSpec::SameIteration {
                trip,
                drift,
                noise_branches,
            } => {
                let max = trip.max() as usize;
                let trips = trip.draw(rng);
                let state = self.nest_state(rng, max);
                let pattern = state.pattern.clone();
                self.emit_nest(rng, sink, trips, noise_branches, |m, _| pattern[m as usize]);
                if rng.gen_bool(drift) {
                    let state = self.nest.as_mut().expect("nest initialized");
                    let slot = rng.gen_range(0..state.pattern.len());
                    state.pattern[slot] = !state.pattern[slot];
                }
            }
            KernelSpec::Diagonal {
                trip,
                noise_branches,
            } => {
                // Out[N][M] = pattern[(phase + M) mod len] with the phase
                // *decreasing* each outer iteration, so that
                // Out[N][M] == Out[N-1][M-1].
                let len = (trip as usize) * 4 + 7;
                let state = self.nest_state(rng, len);
                let phase = state.phase;
                let pattern = state.pattern.clone();
                self.emit_nest(rng, sink, trip, noise_branches, |m, _| {
                    pattern[(phase + m as usize) % len]
                });
                let state = self.nest.as_mut().expect("nest initialized");
                state.phase = (state.phase + len - 1) % len;
                // Slow drift keeps the pattern from being one static
                // global-history-learnable sequence.
                if rng.gen_bool(0.05) {
                    let slot = rng.gen_range(0..len);
                    state.pattern[slot] = !state.pattern[slot];
                }
            }
            KernelSpec::InvertedPrevOuter {
                trip,
                noise_branches,
            } => {
                let state = self.nest_state(rng, trip as usize);
                let pattern = state.pattern.clone();
                self.emit_nest(rng, sink, trip, noise_branches, |m, _| !pattern[m as usize]);
                let state = self.nest.as_mut().expect("nest initialized");
                for slot in state.pattern.iter_mut() {
                    *slot = !*slot;
                }
            }
            KernelSpec::NestedConditional {
                trip,
                guard_rate,
                drift,
            } => {
                let max = trip.max() as usize;
                let trips = trip.draw(rng);
                let state = self.nest_state(rng, max);
                let pattern = state.pattern.clone();
                let body_pc = self.pc(0);
                let guard_pc = self.pc(1);
                let back_pc = self.pc(2);
                let guard_threshold = (guard_rate * 10.0) as u32;
                for m in 0..trips {
                    // Deterministic per-iteration guard (stable across
                    // outer iterations): the guard itself is an easy
                    // same-iteration branch, the nested branch is the
                    // hard one.
                    let guard = (m * 7 + 3) % 10 < guard_threshold;
                    sink.push_record(
                        BranchRecord::conditional(guard_pc, guard_pc + 0x40, guard)
                            .with_leading_instructions(BODY_WORK),
                    );
                    if guard {
                        // The nested branch: executes only some
                        // iterations, outcome keyed to m.
                        sink.push_record(
                            BranchRecord::conditional(body_pc, body_pc + 0x40, pattern[m as usize])
                                .with_leading_instructions(2),
                        );
                    }
                    sink.push_record(
                        BranchRecord::conditional(back_pc, self.pc_base, m + 1 < trips)
                            .with_leading_instructions(2),
                    );
                }
                if rng.gen_bool(drift) {
                    let state = self.nest.as_mut().expect("nest initialized");
                    let slot = rng.gen_range(0..state.pattern.len());
                    state.pattern[slot] = !state.pattern[slot];
                }
            }
            KernelSpec::LoopExit { trips } => {
                for (i, &t) in trips.iter().enumerate() {
                    let pc = self.pc(i as u64);
                    for m in 0..t {
                        sink.push_record(
                            BranchRecord::conditional(pc, self.pc_base, m + 1 < t)
                                .with_leading_instructions(BODY_WORK),
                        );
                    }
                }
            }
            KernelSpec::LongLoop {
                trip,
                noise_branches,
            } => {
                let back_pc = self.pc(1);
                for m in 0..trip {
                    for j in 0..noise_branches {
                        let pc = self.pc(40 + j as u64);
                        sink.push_record(
                            BranchRecord::conditional(pc, pc + 0x40, rng.gen_bool(0.85))
                                .with_leading_instructions(4),
                        );
                    }
                    sink.push_record(
                        BranchRecord::conditional(back_pc, self.pc_base, m + 1 < trip)
                            .with_leading_instructions(4),
                    );
                }
            }
            KernelSpec::Biased { probabilities } => {
                for (i, &p) in probabilities.iter().enumerate() {
                    let pc = self.pc(i as u64);
                    sink.push_record(
                        BranchRecord::conditional(pc, pc + 0x80, rng.gen_bool(p))
                            .with_leading_instructions(BODY_WORK),
                    );
                }
                // A sprinkle of non-conditional control flow for realism.
                let callee = self.pc(100);
                sink.push_record(
                    BranchRecord::call(self.pc(90), callee).with_leading_instructions(2),
                );
                sink.push_record(
                    BranchRecord::ret(callee + 8, self.pc(91)).with_leading_instructions(3),
                );
            }
            KernelSpec::GlobalCorrelated { lag } => {
                // Long-period source pattern: hard for short histories,
                // learnable by the geometric tables — and branch B below
                // is the pure global-correlation demo (it repeats the
                // source from a few rounds back).
                if self.period_positions.is_empty() {
                    self.period_positions = vec![0];
                }
                let pos = self.period_positions[0];
                self.period_positions[0] = (pos + 1) % 47;
                let source = pos < 21;
                self.outcome_queue.push(source);
                let a_pc = self.pc(0);
                let b_pc = self.pc(1);
                sink.push_record(
                    BranchRecord::conditional(a_pc, a_pc + 0x80, source)
                        .with_leading_instructions(BODY_WORK),
                );
                // Filler branches between correlator and correlated.
                for f in 0..lag.saturating_sub(1) {
                    let pc = self.pc(10 + f as u64);
                    sink.push_record(
                        BranchRecord::conditional(pc, pc + 0x80, f % 2 == 0)
                            .with_leading_instructions(1),
                    );
                }
                let delayed = if self.outcome_queue.len() > 4 {
                    self.outcome_queue.remove(0)
                } else {
                    source
                };
                sink.push_record(
                    BranchRecord::conditional(b_pc, b_pc + 0x80, delayed)
                        .with_leading_instructions(2),
                );
            }
            KernelSpec::LocalPeriodic { periods, duty } => {
                if self.period_positions.len() != periods.len() {
                    self.period_positions = vec![0; periods.len()];
                }
                // Randomly interleave the periodic branches so global
                // history sees no stable inter-branch pattern.
                for _ in 0..periods.len() {
                    let i = rng.gen_range(0..periods.len());
                    let pc = self.pc(i as u64);
                    let pos = self.period_positions[i];
                    let taken = pos < duty.min(periods[i] - 1);
                    self.period_positions[i] = (pos + 1) % periods[i];
                    sink.push_record(
                        BranchRecord::conditional(pc, pc + 0x80, taken)
                            .with_leading_instructions(BODY_WORK),
                    );
                }
            }
            KernelSpec::Irregular { branches, spread } => {
                if self.irregular_bias.len() != branches {
                    self.irregular_bias = (0..branches)
                        .map(|_| 0.5 + rng.gen_range(-spread..=spread))
                        .collect();
                }
                for i in 0..branches {
                    let pc = self.pc(i as u64);
                    let taken = rng.gen_bool(self.irregular_bias[i].clamp(0.01, 0.99));
                    sink.push_record(
                        BranchRecord::conditional(pc, pc + 0x80, taken)
                            .with_leading_instructions(BODY_WORK),
                    );
                }
            }
        }
    }

    /// Emits one outer iteration of a 2-D nest: per inner iteration, the
    /// body branch (outcome from `body`), `noise` random branches, and
    /// the loop-closing backward branch.
    fn emit_nest<S: RecordSink + ?Sized, F: Fn(u32, &mut StdRng) -> bool>(
        &mut self,
        rng: &mut StdRng,
        sink: &mut S,
        trips: u32,
        noise: usize,
        body: F,
    ) {
        let body_pc = self.pc(0);
        let back_pc = self.pc(1);
        for m in 0..trips {
            let taken = body(m, rng);
            sink.push_record(
                BranchRecord::conditional(body_pc, body_pc + 0x40, taken)
                    .with_leading_instructions(BODY_WORK),
            );
            for j in 0..noise {
                // Mostly-taken data-dependent branch: pollutes global
                // history without dominating the misprediction count.
                let pc = self.pc(40 + j as u64);
                sink.push_record(
                    BranchRecord::conditional(pc, pc + 0x40, rng.gen_bool(0.82))
                        .with_leading_instructions(3),
                );
            }
            sink.push_record(
                BranchRecord::conditional(back_pc, self.pc_base, m + 1 < trips)
                    .with_leading_instructions(3),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::Trace;
    use rand::SeedableRng;

    fn run_spec(spec: KernelSpec, budget: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(42);
        let mut kernel = spec.instantiate(0x10000);
        let mut trace = Trace::new("k");
        kernel.run(&mut rng, &mut trace, budget);
        trace
    }

    #[test]
    fn same_iteration_emits_nest_shape() {
        let t = run_spec(
            KernelSpec::SameIteration {
                trip: TripCount::Fixed(8),
                drift: 0.2,
                noise_branches: 1,
            },
            20_000,
        );
        let stats = t.stats();
        assert!(stats.conditional_backward > 0, "has loop-closing branches");
        assert!(stats.static_conditionals >= 3);
        assert!(t.instruction_count() >= 20_000);
    }

    #[test]
    fn diagonal_outcomes_shift_by_one() {
        // Verify the planted identity Out[N][M] == Out[N-1][M-1] on the
        // body branch (modulo the 5% drift).
        let mut rng = StdRng::seed_from_u64(7);
        let mut kernel = KernelSpec::Diagonal {
            trip: 16,
            noise_branches: 0,
        }
        .instantiate(0x10000);
        let mut trace = Trace::new("d");
        for _ in 0..60 {
            kernel.run_once(&mut rng, &mut trace);
        }
        let body: Vec<bool> = trace
            .iter()
            .filter(|r| r.pc == 0x10000)
            .map(|r| r.taken)
            .collect();
        let trips = 16usize;
        let outers = body.len() / trips;
        let mut matches = 0usize;
        let mut total = 0usize;
        for n in 1..outers {
            for m in 1..trips {
                total += 1;
                matches += usize::from(body[n * trips + m] == body[(n - 1) * trips + (m - 1)]);
            }
        }
        let rate = matches as f64 / total as f64;
        assert!(rate > 0.9, "diagonal identity holds {rate:.3}");
    }

    #[test]
    fn inverted_outcomes_flip_every_outer_iteration() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut kernel = KernelSpec::InvertedPrevOuter {
            trip: 12,
            noise_branches: 0,
        }
        .instantiate(0x20000);
        let mut trace = Trace::new("i");
        for _ in 0..20 {
            kernel.run_once(&mut rng, &mut trace);
        }
        let body: Vec<bool> = trace
            .iter()
            .filter(|r| r.pc == 0x20000)
            .map(|r| r.taken)
            .collect();
        for n in 1..body.len() / 12 {
            for m in 0..12 {
                assert_eq!(body[n * 12 + m], !body[(n - 1) * 12 + m]);
            }
        }
    }

    #[test]
    fn nested_conditional_body_does_not_run_every_iteration() {
        let t = run_spec(
            KernelSpec::NestedConditional {
                trip: TripCount::Fixed(16),
                guard_rate: 0.5,
                drift: 0.1,
            },
            30_000,
        );
        let guards = t.iter().filter(|r| r.pc == 0x10008).count();
        let bodies = t.iter().filter(|r| r.pc == 0x10000).count();
        assert!(
            bodies > 0 && bodies < guards,
            "body runs on a subset: {bodies}/{guards}"
        );
    }

    #[test]
    fn variable_trip_draws_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let trip = TripCount::Variable { min: 4, max: 32 };
        let draws: Vec<u32> = (0..64).map(|_| trip.draw(&mut rng)).collect();
        assert!(draws.iter().any(|&t| t != draws[0]), "trips vary");
        assert!(draws.iter().all(|&t| (4..=32).contains(&t)));
        assert_eq!(trip.max(), 32);
    }

    #[test]
    fn biased_kernel_has_noncond_records() {
        let t = run_spec(
            KernelSpec::Biased {
                probabilities: vec![0.95, 0.2, 0.7],
            },
            5_000,
        );
        assert!(t.iter().any(|r| !r.is_conditional()));
        let stats = t.stats();
        assert_eq!(stats.static_conditionals, 3);
    }

    #[test]
    fn local_periodic_positions_follow_periods() {
        let t = run_spec(
            KernelSpec::LocalPeriodic {
                periods: vec![5, 7],
                duty: 3,
            },
            10_000,
        );
        // Each static branch must follow its own duty cycle exactly.
        for (slot, period) in [(0u64, 5u32), (1, 7)] {
            let pc = 0x10000 + slot * 8;
            let outs: Vec<bool> = t.iter().filter(|r| r.pc == pc).map(|r| r.taken).collect();
            for (i, &o) in outs.iter().enumerate() {
                assert_eq!(o, (i as u32 % period) < 3, "branch {slot} at {i}");
            }
        }
    }

    #[test]
    fn irregular_is_roughly_balanced() {
        let t = run_spec(
            KernelSpec::Irregular {
                branches: 4,
                spread: 0.1,
            },
            50_000,
        );
        let rate = t.stats().taken_rate().unwrap();
        assert!((0.3..=0.7).contains(&rate), "taken rate {rate:.3}");
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = run_spec(
            KernelSpec::Diagonal {
                trip: 8,
                noise_branches: 1,
            },
            10_000,
        );
        let b = run_spec(
            KernelSpec::Diagonal {
                trip: 8,
                noise_branches: 1,
            },
            10_000,
        );
        assert_eq!(a, b);
    }
}
