//! Workload combinators: hostile traffic composed from quiet streams.
//!
//! The paper measures one benchmark at a time against a private
//! predictor; production predictors are *shared* — context switches
//! wipe fetch-engine state, co-scheduled tenants alias each other's PC
//! space, and a hostile tenant can steer its own branches. This module
//! composes existing [`BranchStream`]s into those scenarios:
//!
//! * [`interleave`] — N tenant streams mixed under a deterministic
//!   [`InterleaveSchedule`] (round-robin quanta or seeded bursts), each
//!   tenant's PCs rebased into a disjoint region
//!   ([`TENANT_PC_STRIDE`] apart) so cross-tenant aliasing happens
//!   structurally through table indexing, and every record tagged with
//!   its tenant id;
//! * [`context_switch`] — periodic [`FlushMode`] flush events injected
//!   into any event stream on instruction-count boundaries;
//! * [`Genome`] / [`AdversarialStream`] — branch-pattern genomes for
//!   the seeded adversarial-stream search in `bp-sim` (the genome is
//!   the searchable representation; the stream replays it exactly).
//!
//! Everything is a pure function of its inputs: no wall-clock, no
//! global state, no iteration-order dependence. The degenerate cases
//! collapse exactly — an interleave of one tenant replays the inner
//! stream record-for-record (tenant 0 has PC offset 0), and a
//! context-switch period longer than the stream never fires — which is
//! what lets the differential tests pin the combinator layer as a
//! no-op when degenerate.

use bp_trace::{BranchRecord, BranchStream};

/// PC-space distance between tenants under [`interleave`]: tenant `i`'s
/// records are rebased by `i * TENANT_PC_STRIDE`. Large enough (4 GiB)
/// that distinct tenants can never collide in raw addresses — any
/// cross-tenant interference goes through table index folding, the
/// destructive-aliasing channel the scenario axis exists to measure.
/// Tenant 0's offset is 0, which keeps the single-tenant interleave
/// bit-identical to its inner stream.
pub const TENANT_PC_STRIDE: u64 = 0x1_0000_0000;

/// Base of the PC region [`AdversarialStream`] emits branches in —
/// above every generated kernel region, below the first rebased tenant.
pub const ADVERSARIAL_PC_BASE: u64 = 0x6000_0000;

/// How a context switch wipes predictor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// Erase history state only (global/folded/path registers, local
    /// histories, IMLI counters) and keep the learned tables — the
    /// `ConditionalPredictor::flush_history` contract. Models an OS
    /// switch where SRAM contents survive.
    Partial,
    /// Rebuild the predictor cold from its configuration: tables,
    /// histories, thresholds. Models a full state wipe (or a different
    /// core's predictor).
    Full,
}

impl FlushMode {
    /// Stable lower-case label (`"partial"` / `"full"`).
    pub fn label(&self) -> &'static str {
        match self {
            FlushMode::Partial => "partial",
            FlushMode::Full => "full",
        }
    }
}

/// One event of a scenario stream: a tenant's branch record, or a
/// context-switch flush point between records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioEvent {
    /// A branch record attributed to tenant `tenant` (an index into the
    /// interleave's input order; 0 for single-tenant streams).
    Record {
        /// The (PC-rebased) branch record.
        record: BranchRecord,
        /// Which tenant emitted it.
        tenant: u32,
    },
    /// Flush the predictor before consuming the next record.
    Flush(FlushMode),
}

/// A deterministic stream of [`ScenarioEvent`]s — the scenario twin of
/// [`BranchStream`]. Implementations must be pure functions of their
/// construction inputs (same inputs, same event sequence, every run).
pub trait EventStream {
    /// Scenario stream label.
    fn name(&self) -> &str;

    /// Pulls the next event, or `None` when every tenant is exhausted.
    fn next_event(&mut self) -> Option<ScenarioEvent>;

    /// Number of tenants events may reference (tenant ids are
    /// `0..tenant_count`).
    fn tenant_count(&self) -> u32;
}

/// Deterministic tenant schedule of an [`interleave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveSchedule {
    /// Tenants take fixed turns of `quantum` records each, in input
    /// order, skipping exhausted tenants.
    RoundRobin {
        /// Records served per turn (>= 1).
        quantum: u32,
    },
    /// A seeded xorshift generator picks the next tenant uniformly among
    /// the live ones and a burst length in `min..=max` records —
    /// deterministic for a fixed seed, but bursty like real
    /// co-scheduling.
    SeededBursts {
        /// Generator seed; the same seed reproduces the same schedule.
        seed: u64,
        /// Shortest burst in records (>= 1).
        min: u32,
        /// Longest burst in records (>= `min`).
        max: u32,
    },
}

/// xorshift64* step — the schedule's only randomness source: seeded,
/// deterministic, and free of global state.
#[inline]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Non-zero xorshift state from an arbitrary seed.
#[inline]
fn seed_state(seed: u64) -> u64 {
    let mixed = seed ^ 0x9E37_79B9_7F4A_7C15;
    if mixed == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        mixed
    }
}

/// One tenant of an [`InterleavedStream`].
struct Tenant {
    stream: Box<dyn BranchStream + Send>,
    offset: u64,
    exhausted: bool,
}

/// N tenant streams mixed under a deterministic schedule — see
/// [`interleave`].
pub struct InterleavedStream {
    name: String,
    tenants: Vec<Tenant>,
    schedule: InterleaveSchedule,
    /// Tenant currently being served.
    current: usize,
    /// Records left in the current turn/burst.
    remaining: u32,
    /// Schedule RNG state (seeded-burst mode only).
    rng: u64,
    /// Non-exhausted tenants.
    live: usize,
}

/// Mixes `streams` into one multi-tenant scenario stream.
///
/// Tenant `i` (input order) has every record's `pc` and `target`
/// rebased by `i * `[`TENANT_PC_STRIDE`], and each emitted event is
/// tagged with the tenant id. Scheduling follows `schedule`; when a
/// tenant's stream ends, the schedule skips it and the remaining
/// tenants keep running until all are exhausted — so the combined
/// stream always carries every record of every tenant exactly once
/// (tenant-tally conservation, property-tested in bp-sim).
///
/// A single-tenant interleave is bit-identical to its inner stream:
/// tenant 0's offset is 0 and the schedule degenerates to pass-through.
///
/// # Panics
///
/// Panics if `streams` is empty, a round-robin quantum is 0, or a
/// seeded-burst range is empty/inverted.
// bp-lint: allow-item(hot-path-alloc, "scenario construction is cold; the per-event pull loop below is allocation-free (tests/hotpath_allocations.rs)")
pub fn interleave(
    streams: Vec<Box<dyn BranchStream + Send>>,
    schedule: InterleaveSchedule,
) -> InterleavedStream {
    assert!(!streams.is_empty(), "interleave needs at least one tenant");
    let rng = match schedule {
        InterleaveSchedule::RoundRobin { quantum } => {
            assert!(quantum >= 1, "round-robin quantum must be >= 1");
            0
        }
        InterleaveSchedule::SeededBursts { seed, min, max } => {
            assert!(
                min >= 1 && min <= max,
                "seeded-burst range must satisfy 1 <= min <= max"
            );
            seed_state(seed)
        }
    };
    let mut name = String::from("mix(");
    for (i, s) in streams.iter().enumerate() {
        if i > 0 {
            name.push('+');
        }
        name.push_str(s.name());
    }
    name.push(')');
    let live = streams.len();
    let tenants: Vec<Tenant> = streams
        .into_iter()
        .enumerate()
        .map(|(i, stream)| Tenant {
            stream,
            offset: i as u64 * TENANT_PC_STRIDE,
            exhausted: false,
        })
        .collect();
    let mut out = InterleavedStream {
        name,
        tenants,
        schedule,
        current: 0,
        remaining: 0,
        rng,
        live,
    };
    out.advance_schedule();
    out
}

impl InterleavedStream {
    /// Starts the next turn/burst on a live tenant. Caller guarantees
    /// `self.live > 0`.
    fn advance_schedule(&mut self) {
        debug_assert!(self.live > 0);
        match self.schedule {
            InterleaveSchedule::RoundRobin { quantum } => {
                // Next live tenant in input order, wrapping; `current`
                // itself is re-eligible only after a full cycle.
                let n = self.tenants.len();
                let mut next = (self.current + 1) % n;
                while self.tenants[next].exhausted {
                    next = (next + 1) % n;
                }
                self.current = next;
                self.remaining = quantum;
            }
            InterleaveSchedule::SeededBursts { min, max, .. } => {
                // Uniform pick among live tenants, then a burst length.
                let pick = (xorshift(&mut self.rng) % self.live as u64) as usize;
                let mut seen = 0usize;
                for (i, t) in self.tenants.iter().enumerate() {
                    if !t.exhausted {
                        if seen == pick {
                            self.current = i;
                            break;
                        }
                        seen += 1;
                    }
                }
                let span = u64::from(max - min) + 1;
                self.remaining = min + (xorshift(&mut self.rng) % span) as u32;
            }
        }
    }
}

impl EventStream for InterleavedStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> Option<ScenarioEvent> {
        loop {
            if self.live == 0 {
                return None;
            }
            if self.remaining == 0 || self.tenants[self.current].exhausted {
                self.advance_schedule();
                continue;
            }
            let tenant = self.current;
            let t = &mut self.tenants[tenant];
            match t.stream.next_record() {
                Some(mut record) => {
                    record.pc += t.offset;
                    record.target += t.offset;
                    self.remaining -= 1;
                    return Some(ScenarioEvent::Record {
                        record,
                        tenant: tenant as u32,
                    });
                }
                None => {
                    t.exhausted = true;
                    self.live -= 1;
                    self.remaining = 0;
                }
            }
        }
    }

    fn tenant_count(&self) -> u32 {
        self.tenants.len() as u32
    }
}

/// A plain [`BranchStream`] lifted to a single-tenant [`EventStream`]
/// (tenant id 0, no PC rebase, no flushes).
pub struct SingleTenant<S> {
    inner: S,
}

impl<S: BranchStream> SingleTenant<S> {
    /// Wraps `inner` as tenant 0.
    pub fn new(inner: S) -> Self {
        SingleTenant { inner }
    }
}

impl<S: BranchStream> EventStream for SingleTenant<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_event(&mut self) -> Option<ScenarioEvent> {
        self.inner
            .next_record()
            .map(|record| ScenarioEvent::Record { record, tenant: 0 })
    }

    fn tenant_count(&self) -> u32 {
        1
    }
}

/// Periodic context-switch flushes injected into an event stream — see
/// [`context_switch`].
pub struct ContextSwitchStream<S> {
    inner: S,
    period: u64,
    mode: FlushMode,
    /// Instructions retired so far.
    instructions: u64,
    /// Next flush boundary in retired instructions.
    next_boundary: u64,
    /// A record pulled from the inner stream while a flush had to be
    /// emitted first.
    pending: Option<ScenarioEvent>,
}

/// Injects a [`FlushMode`] flush every `period` retired instructions
/// into `stream`.
///
/// The flush fires *between* records: before the first record at or
/// beyond each multiple of `period` retired instructions. One flush
/// fires per crossing, however many boundaries a long record skips
/// (the boundary then advances past the current total). A period
/// longer than the whole stream therefore never fires — equal to
/// no-flush, the degenerate case the property tests pin. Flush events
/// already present in `stream` pass through unchanged, so context
/// switches compose.
///
/// # Panics
///
/// Panics if `period` is 0.
pub fn context_switch<S: EventStream>(
    stream: S,
    period: u64,
    mode: FlushMode,
) -> ContextSwitchStream<S> {
    assert!(period > 0, "context-switch period must be positive");
    ContextSwitchStream {
        inner: stream,
        period,
        mode,
        instructions: 0,
        next_boundary: period,
        pending: None,
    }
}

impl<S: EventStream> EventStream for ContextSwitchStream<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_event(&mut self) -> Option<ScenarioEvent> {
        if let Some(ev) = self.pending.take() {
            return Some(ev);
        }
        let ev = self.inner.next_event()?;
        if let ScenarioEvent::Record { record, .. } = &ev {
            if self.instructions >= self.next_boundary {
                while self.next_boundary <= self.instructions {
                    self.next_boundary += self.period;
                }
                self.instructions += record.instructions();
                self.pending = Some(ev);
                return Some(ScenarioEvent::Flush(self.mode));
            }
            self.instructions += record.instructions();
        }
        Some(ev)
    }

    fn tenant_count(&self) -> u32 {
        self.inner.tenant_count()
    }
}

/// An [`EventStream`] viewed as a plain [`BranchStream`]: flush events
/// are dropped and tenant tags ignored. This is the record sequence a
/// flush-free scenario feeds the predictor — the differential tests
/// compare `simulate_stream` over this view against the scenario
/// runner's per-tenant sums.
pub struct EventRecords<S> {
    inner: S,
}

impl<S: EventStream> EventRecords<S> {
    /// Wraps `inner`, exposing only its records.
    pub fn new(inner: S) -> Self {
        EventRecords { inner }
    }
}

impl<S: EventStream> BranchStream for EventRecords<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_record(&mut self) -> Option<BranchRecord> {
        loop {
            match self.inner.next_event()? {
                ScenarioEvent::Record { record, .. } => return Some(record),
                ScenarioEvent::Flush(_) => continue,
            }
        }
    }
}

/// One gene of an adversarial genome: a static branch (a `slot` in the
/// adversarial PC region) replaying a fixed direction `pattern` of
/// `period` bits, cyclically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gene {
    /// Branch slot: PC = [`ADVERSARIAL_PC_BASE`]` + slot * 16`.
    pub slot: u8,
    /// Direction pattern, bit `i` = outcome of visit `i mod period`.
    pub pattern: u64,
    /// Pattern length in bits, `1..=64`.
    pub period: u8,
}

/// A branch-pattern genome: the searchable representation of an
/// adversarial stream. The genome is plain data — replaying it
/// ([`Genome::stream`]) is exact and deterministic, so a search result
/// is reproducible from the genome alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Genome {
    /// The genes, visited round-robin by the stream.
    pub genes: Vec<Gene>,
}

impl Genome {
    /// A random genome of `genes` genes from `seed` (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `genes` is 0.
    // bp-lint: allow-item(hot-path-alloc, "genome construction/mutation is search-time setup, never on the predict/update path")
    pub fn seeded(seed: u64, genes: usize) -> Genome {
        assert!(genes > 0, "genome needs at least one gene");
        let mut state = seed_state(seed);
        let genes = (0..genes)
            .map(|_| Gene {
                slot: (xorshift(&mut state) % 64) as u8,
                pattern: xorshift(&mut state),
                period: (xorshift(&mut state) % 64 + 1) as u8,
            })
            .collect();
        Genome { genes }
    }

    /// One deterministic point mutation from `seed`: flip a pattern
    /// bit, re-draw a period, or move a gene to a different slot.
    // bp-lint: allow-item(hot-path-alloc, "genome construction/mutation is search-time setup, never on the predict/update path")
    pub fn mutated(&self, seed: u64) -> Genome {
        let mut state = seed_state(seed);
        let mut next = self.clone();
        let i = (xorshift(&mut state) % next.genes.len() as u64) as usize;
        let gene = &mut next.genes[i];
        match xorshift(&mut state) % 3 {
            0 => gene.pattern ^= 1u64 << (xorshift(&mut state) % 64),
            1 => gene.period = (xorshift(&mut state) % 64 + 1) as u8,
            _ => gene.slot = (xorshift(&mut state) % 64) as u8,
        }
        next
    }

    /// Replays this genome as a branch stream of (at least)
    /// `instructions` retired instructions.
    ///
    /// # Panics
    ///
    /// Panics if any gene's period is outside `1..=64`.
    // bp-lint: allow-item(hot-path-alloc, "stream construction is cold; next_record below is allocation-free")
    pub fn stream(&self, instructions: u64) -> AdversarialStream {
        for gene in &self.genes {
            assert!(
                (1..=64).contains(&gene.period),
                "gene period must be in 1..=64"
            );
        }
        AdversarialStream {
            genes: self.genes.clone(),
            counts: self.genes.iter().map(|_| 0).collect(),
            pos: 0,
            instructions: 0,
            target: instructions,
        }
    }
}

/// Deterministic replay of a [`Genome`]: genes emit their branches
/// round-robin, each following its own cyclic pattern, one instruction
/// per record (maximum branch density — the hostile end of the CBP
/// instruction mix).
pub struct AdversarialStream {
    genes: Vec<Gene>,
    counts: Vec<u32>,
    pos: usize,
    instructions: u64,
    target: u64,
}

impl BranchStream for AdversarialStream {
    fn name(&self) -> &str {
        "adversarial"
    }

    fn next_record(&mut self) -> Option<BranchRecord> {
        if self.instructions >= self.target {
            return None;
        }
        let gene = self.genes[self.pos];
        let visit = self.counts[self.pos];
        self.counts[self.pos] = visit.wrapping_add(1);
        self.pos = (self.pos + 1) % self.genes.len();
        let taken = (gene.pattern >> (visit % u32::from(gene.period))) & 1 == 1;
        let pc = ADVERSARIAL_PC_BASE + u64::from(gene.slot) * 16;
        let record = BranchRecord::conditional(pc, pc + 64, taken);
        self.instructions += record.instructions();
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::cbp4_suite;
    use bp_trace::BranchStream;

    fn tenant_streams(n: usize, instructions: u64) -> Vec<Box<dyn BranchStream + Send>> {
        cbp4_suite()
            .iter()
            .take(n)
            .map(|spec| Box::new(spec.stream(instructions)) as Box<dyn BranchStream + Send>)
            .collect()
    }

    fn drain<S: EventStream>(mut s: S) -> Vec<ScenarioEvent> {
        let mut out = Vec::new();
        while let Some(ev) = s.next_event() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn single_tenant_interleave_is_the_inner_stream() {
        let spec = &cbp4_suite()[0];
        let plain: Vec<BranchRecord> = spec.stream(20_000).collect();
        let events = drain(interleave(
            tenant_streams(1, 20_000),
            InterleaveSchedule::RoundRobin { quantum: 7 },
        ));
        assert_eq!(events.len(), plain.len());
        for (ev, rec) in events.iter().zip(&plain) {
            match ev {
                ScenarioEvent::Record { record, tenant } => {
                    assert_eq!(record, rec, "tenant 0 must not be rebased");
                    assert_eq!(*tenant, 0);
                }
                ScenarioEvent::Flush(_) => panic!("interleave emits no flushes"),
            }
        }
    }

    #[test]
    fn interleave_is_deterministic_and_conserves_records() {
        for schedule in [
            InterleaveSchedule::RoundRobin { quantum: 16 },
            InterleaveSchedule::SeededBursts {
                seed: 42,
                min: 4,
                max: 96,
            },
        ] {
            let a = drain(interleave(tenant_streams(3, 15_000), schedule));
            let b = drain(interleave(tenant_streams(3, 15_000), schedule));
            assert_eq!(a, b, "{schedule:?} must be deterministic");

            // Every tenant's record sequence, extracted back out, is the
            // inner stream rebased: conservation of records.
            for t in 0..3u32 {
                let got: Vec<BranchRecord> = a
                    .iter()
                    .filter_map(|ev| match ev {
                        ScenarioEvent::Record { record, tenant } if *tenant == t => Some(*record),
                        _ => None,
                    })
                    .collect();
                let expected: Vec<BranchRecord> = cbp4_suite()[t as usize]
                    .stream(15_000)
                    .map(|mut r| {
                        r.pc += u64::from(t) * TENANT_PC_STRIDE;
                        r.target += u64::from(t) * TENANT_PC_STRIDE;
                        r
                    })
                    .collect();
                assert_eq!(got, expected, "tenant {t} under {schedule:?}");
            }
        }
    }

    #[test]
    fn round_robin_serves_fixed_quanta() {
        let events = drain(interleave(
            tenant_streams(2, 5_000),
            InterleaveSchedule::RoundRobin { quantum: 5 },
        ));
        // While both tenants are live, tenant ids come in runs of 5.
        let tenants: Vec<u32> = events
            .iter()
            .map(|ev| match ev {
                ScenarioEvent::Record { tenant, .. } => *tenant,
                ScenarioEvent::Flush(_) => unreachable!(),
            })
            .collect();
        for chunk in tenants.chunks(10).take(20) {
            if chunk.len() == 10 {
                assert_eq!(&chunk[..5], &[chunk[0]; 5]);
                assert_eq!(&chunk[5..], &[chunk[5]; 5]);
                assert_ne!(chunk[0], chunk[5]);
            }
        }
    }

    #[test]
    fn tenant_pc_regions_are_disjoint() {
        let events = drain(interleave(
            tenant_streams(3, 10_000),
            InterleaveSchedule::SeededBursts {
                seed: 7,
                min: 1,
                max: 32,
            },
        ));
        for ev in &events {
            if let ScenarioEvent::Record { record, tenant } = ev {
                let lo = u64::from(*tenant) * TENANT_PC_STRIDE;
                assert!(
                    record.pc >= lo && record.pc < lo + TENANT_PC_STRIDE,
                    "tenant {tenant} pc {:#x} outside its region",
                    record.pc
                );
            }
        }
    }

    #[test]
    fn context_switch_fires_on_period_boundaries() {
        let spec = &cbp4_suite()[0];
        let inner = SingleTenant::new(spec.stream(20_000));
        let events = drain(context_switch(inner, 5_000, FlushMode::Partial));
        let mut instructions = 0u64;
        let mut flushes = 0u64;
        let mut since_flush_start = 0u64;
        for ev in &events {
            match ev {
                ScenarioEvent::Record { record, .. } => {
                    instructions += record.instructions();
                    since_flush_start += record.instructions();
                }
                ScenarioEvent::Flush(mode) => {
                    assert_eq!(*mode, FlushMode::Partial);
                    assert!(
                        instructions >= (flushes + 1) * 5_000,
                        "flush {flushes} fired early at {instructions}"
                    );
                    flushes += 1;
                    since_flush_start = 0;
                }
            }
            // A flush is never overdue by more than one record's
            // instructions past its boundary.
            let _ = since_flush_start;
        }
        assert!(
            (3..=4).contains(&flushes),
            "~20k instructions / 5k period, got {flushes} flushes"
        );
    }

    #[test]
    fn period_longer_than_stream_never_flushes() {
        let spec = &cbp4_suite()[0];
        let with = drain(context_switch(
            SingleTenant::new(spec.stream(8_000)),
            1_000_000,
            FlushMode::Full,
        ));
        let without = drain(SingleTenant::new(spec.stream(8_000)));
        assert_eq!(with, without);
    }

    #[test]
    fn context_switches_compose() {
        // Inner flushes pass through an outer context_switch unchanged.
        let spec = &cbp4_suite()[0];
        let inner = context_switch(
            SingleTenant::new(spec.stream(12_000)),
            4_000,
            FlushMode::Partial,
        );
        let events = drain(context_switch(inner, 6_000, FlushMode::Full));
        let partial = events
            .iter()
            .filter(|e| matches!(e, ScenarioEvent::Flush(FlushMode::Partial)))
            .count();
        let full = events
            .iter()
            .filter(|e| matches!(e, ScenarioEvent::Flush(FlushMode::Full)))
            .count();
        assert!(partial >= 2, "inner flushes survived: {partial}");
        assert!(full >= 1, "outer flushes injected: {full}");
    }

    #[test]
    fn event_records_view_drops_flushes_only() {
        let spec = &cbp4_suite()[0];
        let plain: Vec<BranchRecord> = spec.stream(10_000).collect();
        let viewed: Vec<BranchRecord> = {
            let mut view = EventRecords::new(context_switch(
                SingleTenant::new(spec.stream(10_000)),
                2_000,
                FlushMode::Partial,
            ));
            let mut out = Vec::new();
            while let Some(r) = view.next_record() {
                out.push(r);
            }
            out
        };
        assert_eq!(viewed, plain);
    }

    #[test]
    fn genome_replay_is_deterministic_and_seed_sensitive() {
        let g = Genome::seeded(1234, 8);
        assert_eq!(g, Genome::seeded(1234, 8));
        assert_ne!(g, Genome::seeded(1235, 8));
        let a: Vec<BranchRecord> = {
            let mut s = g.stream(5_000);
            std::iter::from_fn(move || s.next_record()).collect()
        };
        let b: Vec<BranchRecord> = {
            let mut s = g.stream(5_000);
            std::iter::from_fn(move || s.next_record()).collect()
        };
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000, "one instruction per record");
        assert!(a.iter().all(|r| r.is_conditional()));
        assert!(a.iter().all(|r| r.pc >= ADVERSARIAL_PC_BASE));
    }

    #[test]
    fn genome_mutation_is_deterministic_single_point() {
        let g = Genome::seeded(9, 6);
        let m1 = g.mutated(77);
        let m2 = g.mutated(77);
        assert_eq!(m1, m2, "mutation must be a pure function of the seed");
        assert_ne!(m1, g, "mutation changes the genome");
        let differing = g
            .genes
            .iter()
            .zip(&m1.genes)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 1, "exactly one gene mutates");
    }

    #[test]
    fn gene_pattern_cycles_exactly() {
        let g = Genome {
            genes: vec![Gene {
                slot: 3,
                pattern: 0b101,
                period: 3,
            }],
        };
        let mut s = g.stream(9);
        let taken: Vec<bool> = std::iter::from_fn(|| s.next_record())
            .map(|r| r.taken)
            .collect();
        assert_eq!(
            taken,
            vec![true, false, true, true, false, true, true, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_interleave_rejected() {
        let _ = interleave(Vec::new(), InterleaveSchedule::RoundRobin { quantum: 1 });
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let spec = &cbp4_suite()[0];
        let _ = context_switch(SingleTenant::new(spec.stream(100)), 0, FlushMode::Full);
    }
}
