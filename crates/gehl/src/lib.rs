//! GEHL-family predictors.
//!
//! The paper's second host family (§3.2.2): the GEHL predictor — a
//! GEometric History Length neural predictor summing 17 tables of 2K
//! 6-bit counters indexed with global history folds up to length 600
//! (204 Kbits, exactly the paper's budget) — plus the IMLI-augmented
//! variant (Figure 6) and the FTL configuration (§5: GEHL + a local
//! GEHL component + a loop predictor).

#![warn(missing_docs)]

mod gehl;

pub use gehl::{Gehl, GehlConfig};

/// Named configurations of Table 2.
#[allow(clippy::self_named_constructors)]
impl Gehl {
    /// The base GEHL predictor (paper: 204 Kbits, 2.864 MPKI on CBP4).
    pub fn gehl() -> Gehl {
        Gehl::new(GehlConfig::base())
    }

    /// GEHL + both IMLI components ("+I"; paper: 209 Kbits).
    pub fn gehl_imli() -> Gehl {
        Gehl::new(GehlConfig::imli())
    }

    /// GEHL + IMLI-SIC only (the intermediate bars of Figures 10-11).
    pub fn gehl_sic() -> Gehl {
        Gehl::new(GehlConfig::sic_only())
    }

    /// GEHL + IMLI-OH only (Figure 13).
    pub fn gehl_oh() -> Gehl {
        Gehl::new(GehlConfig::oh_only())
    }

    /// FTL: GEHL + local GEHL tables + loop predictor ("+L";
    /// paper: 256 Kbits).
    pub fn ftl() -> Gehl {
        Gehl::new(GehlConfig::ftl())
    }

    /// FTL + IMLI ("+I+L"; paper: 261 Kbits).
    pub fn ftl_imli() -> Gehl {
        Gehl::new(GehlConfig::ftl_imli())
    }
}
