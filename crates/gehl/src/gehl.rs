//! The GEHL predictor (Seznec 2005), with IMLI and FTL extensions.

use bp_components::{
    clamp_pipeline_depth, mix64, pc_bits, sum_centered_padded, AdaptiveThreshold,
    ConditionalPredictor, ConfidenceBucket, ConfigError, ConfigValue, CounterBank, LoopPredictor,
    LoopPredictorConfig, PredictionAttribution, PredictorConfig, PredictorStats, ProviderComponent,
    StorageBudget, StorageItem, SumCtx, DEFAULT_PIPELINE_DEPTH, MAX_PIPELINE_DEPTH,
};
use bp_history::{HistoryState, LocalHistoryTable};
use bp_trace::BranchRecord;
use imli::{ImliConfig, ImliState};

/// Configuration of a [`Gehl`] predictor.
#[derive(Debug, Clone)]
pub struct GehlConfig {
    /// log2 of each global table's entry count.
    pub log_entries: usize,
    /// Counter width.
    pub counter_bits: usize,
    /// Number of global-history tables (table 0 is PC-indexed).
    pub num_tables: usize,
    /// Shortest non-zero history length.
    pub min_history: usize,
    /// Longest history length.
    pub max_history: usize,
    /// Path history bits.
    pub path_bits: usize,
    /// IMLI components (paper Figure 6), if any.
    pub imli: Option<ImliConfig>,
    /// Local GEHL component (the FTL configuration of §5), if any:
    /// `(history_width, num_tables)` with 256 local histories and
    /// 2^log_entries counters per table.
    pub local: Option<(usize, usize)>,
    /// Loop predictor (FTL), if any.
    pub loop_predictor: Option<LoopPredictorConfig>,
    /// Initial / maximum adaptive threshold.
    pub threshold_init: i32,
    /// Threshold ceiling.
    pub threshold_max: i32,
    /// Display name.
    pub name: String,
}

impl GehlConfig {
    /// The paper's 204 Kbit GEHL: 17 tables × 2K × 6-bit counters,
    /// maximum history length 600.
    pub fn base() -> Self {
        GehlConfig {
            log_entries: 11,
            counter_bits: 6,
            num_tables: 17,
            min_history: 2,
            max_history: 600,
            path_bits: 16,
            imli: None,
            local: None,
            loop_predictor: None,
            threshold_init: 20,
            threshold_max: 511,
            // bp-lint: allow(hot-path-alloc, "config construction is cold, once per predictor")
            name: "GEHL".to_owned(),
        }
    }

    /// GEHL + both IMLI components.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold, once per predictor")
    pub fn imli() -> Self {
        GehlConfig {
            imli: Some(ImliConfig::default()),
            name: "GEHL+IMLI".to_owned(),
            ..Self::base()
        }
    }

    /// GEHL + IMLI-SIC only.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold, once per predictor")
    pub fn sic_only() -> Self {
        GehlConfig {
            imli: Some(ImliConfig::sic_only()),
            name: "GEHL+SIC".to_owned(),
            ..Self::base()
        }
    }

    /// GEHL + IMLI-OH only.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold, once per predictor")
    pub fn oh_only() -> Self {
        GehlConfig {
            imli: Some(ImliConfig::oh_only()),
            name: "GEHL+OH".to_owned(),
            ..Self::base()
        }
    }

    /// FTL (§5): GEHL + 4 local tables over 24-bit local histories + a
    /// 32-entry loop predictor.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold; never on the per-branch path")
    pub fn ftl() -> Self {
        GehlConfig {
            local: Some((24, 4)),
            loop_predictor: Some(LoopPredictorConfig {
                log_entries: 5,
                ..LoopPredictorConfig::default()
            }),
            name: "FTL".to_owned(),
            ..Self::base()
        }
    }

    /// FTL + IMLI.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold; never on the per-branch path")
    pub fn ftl_imli() -> Self {
        GehlConfig {
            imli: Some(ImliConfig::default()),
            name: "FTL+IMLI".to_owned(),
            ..Self::ftl()
        }
    }

    /// History length of table `i` (0 for the PC-indexed table, then the
    /// geometric series `min → max`).
    pub fn history_length(&self, i: usize) -> usize {
        if i == 0 {
            return 0;
        }
        let steps = self.num_tables - 1;
        if steps == 1 {
            return self.max_history;
        }
        let ratio = (self.max_history as f64 / self.min_history as f64)
            .powf((i - 1) as f64 / (steps as f64 - 1.0));
        ((self.min_history as f64 * ratio) + 0.5) as usize
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate table counts or history bounds. The
    /// non-panicking twin is [`GehlConfig::check`].
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // bp-lint: allow(panic-surface, "documented legacy panicking API; the validate-then-build path uses the non-panicking check()")
            panic!("{e}");
        }
    }

    /// Checks the geometry, returning the first violation instead of
    /// panicking.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(2..=64).contains(&self.num_tables) {
            return Err("table count must be in 2..=64".into());
        }
        if !(self.min_history >= 1 && self.max_history > self.min_history) {
            return Err("history bounds must be increasing".into());
        }
        if self.max_history > 65536 {
            return Err("max_history must be at most 65536".into());
        }
        if !(6..=16).contains(&self.log_entries) {
            return Err("log_entries out of range".into());
        }
        if !(1..=7).contains(&self.counter_bits) {
            return Err("counter width must be in 1..=7".into());
        }
        if !(0..=self.threshold_max).contains(&self.threshold_init) {
            return Err("threshold_init must be in 0..=threshold_max".into());
        }
        if let Some(imli) = &self.imli {
            imli.check()?;
        }
        if let Some((width, tables)) = self.local {
            if !(1..=32).contains(&width) {
                return Err("local width out of range".into());
            }
            if !(1..=64).contains(&tables) {
                return Err("local table count must be in 1..=64".into());
            }
        }
        if let Some(lp) = &self.loop_predictor {
            lp.check()?;
        }
        Ok(())
    }
}

impl PredictorConfig for GehlConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        self.check()
    }

    // bp-lint: allow-item(hot-path-alloc, "build() constructs a predictor once per run; never on the per-branch path")
    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        Box::new(Gehl::new(self.clone()))
    }

    fn storage_bits_estimate(&self) -> u64 {
        let entries = 1u64 << self.log_entries;
        let cb = self.counter_bits as u64;
        let mut bits = self.num_tables as u64 * entries * cb;
        if let Some((width, tables)) = self.local {
            // `Gehl::new` backs the local component with 256 histories.
            bits += tables as u64 * entries * cb + 256 * width as u64;
        }
        if let Some(lp) = &self.loop_predictor {
            bits += lp.storage_bits();
        }
        if let Some(imli) = &self.imli {
            bits += imli.state_storage_bits();
        }
        bits
    }

    fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("name", ConfigValue::str(&self.name))
            .set("log_entries", ConfigValue::int(self.log_entries))
            .set("counter_bits", ConfigValue::int(self.counter_bits))
            .set("num_tables", ConfigValue::int(self.num_tables))
            .set("min_history", ConfigValue::int(self.min_history))
            .set("max_history", ConfigValue::int(self.max_history))
            .set("path_bits", ConfigValue::int(self.path_bits))
            .set_opt("imli", self.imli.as_ref().map(ImliConfig::to_value))
            .set_opt(
                "local",
                self.local.map(|(width, tables)| {
                    ConfigValue::map()
                        .set("history_width", ConfigValue::int(width))
                        .set("num_tables", ConfigValue::int(tables))
                }),
            )
            .set_opt(
                "loop",
                self.loop_predictor
                    .as_ref()
                    .map(LoopPredictorConfig::to_value),
            )
            .set(
                "threshold_init",
                ConfigValue::Int(i64::from(self.threshold_init)),
            )
            .set(
                "threshold_max",
                ConfigValue::Int(i64::from(self.threshold_max)),
            )
    }

    // bp-lint: allow-item(hot-path-alloc, "config-file parsing is cold; never on the per-branch path")
    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "gehl config",
            &[
                "name",
                "log_entries",
                "counter_bits",
                "num_tables",
                "min_history",
                "max_history",
                "path_bits",
                "imli",
                "local",
                "loop",
                "threshold_init",
                "threshold_max",
            ],
        )?;
        let local = value
            .get("local")
            .map(|local| -> Result<(usize, usize), ConfigError> {
                local.expect_keys("gehl local config", &["history_width", "num_tables"])?;
                Ok((
                    local.req("history_width")?.as_usize("history_width")?,
                    local.req("num_tables")?.as_usize("num_tables")?,
                ))
            })
            .transpose()?;
        Ok(GehlConfig {
            name: value.req("name")?.as_str("name")?.to_owned(),
            log_entries: value.req("log_entries")?.as_usize("log_entries")?,
            counter_bits: value.req("counter_bits")?.as_usize("counter_bits")?,
            num_tables: value.req("num_tables")?.as_usize("num_tables")?,
            min_history: value.req("min_history")?.as_usize("min_history")?,
            max_history: value.req("max_history")?.as_usize("max_history")?,
            path_bits: value.req("path_bits")?.as_usize("path_bits")?,
            imli: value.get("imli").map(ImliConfig::from_value).transpose()?,
            local,
            loop_predictor: value
                .get("loop")
                .map(LoopPredictorConfig::from_value)
                .transpose()?,
            threshold_init: value.req("threshold_init")?.as_i32("threshold_init")?,
            threshold_max: value.req("threshold_max")?.as_i32("threshold_max")?,
        })
    }
}

/// Upper bound on GEHL addends: up to 64 global tables plus up to 64
/// local tables (both enforced by [`GehlConfig::check`]). Sized so the
/// per-prediction index and value buffers can live on the stack.
const GEHL_MAX_ADDENDS: usize = 64 + 64;

/// The GEHL predictor: a pure adder-tree of geometrically-indexed
/// tables; optionally extended with IMLI components (paper Figure 6)
/// and/or a local component + loop predictor (FTL).
pub struct Gehl {
    config: GehlConfig,
    tables: CounterBank,
    folds: Vec<Option<usize>>,
    /// Per-table `history_length(i)` hoisted out of the per-branch
    /// index loops: the geometric series involves a `powf`, and the
    /// original code recomputed it per table per prediction *and* per
    /// update — the single hottest constant on the GEHL profile.
    hist_lens: Vec<u64>,
    history: HistoryState,
    local_history: Option<LocalHistoryTable>,
    local_tables: Option<CounterBank>,
    imli: Option<ImliState>,
    loop_pred: Option<LoopPredictor>,
    threshold: AdaptiveThreshold,
    lookup: Option<(SumCtx, i32, bool)>,
    /// Table indices computed by the index phase of [`Gehl::predict_full`]
    /// (globals first, then locals). `update` reuses them instead of
    /// recomputing: history only advances at the *end* of `update`, so
    /// the paired predict/update pair sees identical indices.
    indices: [u64; GEHL_MAX_ADDENDS],
    last_pred: bool,
    /// Per-branch contexts captured by the pipelined front end
    /// ([`Gehl::plan_record`]), one row per in-flight branch. Every
    /// index input evolves as a pure function of `(pc, outcome)` from
    /// the trace, so the front end advances the *architectural* state
    /// itself — no duplicated fold work — and the commit loop replays
    /// the captured context instead of re-reading history that has
    /// already run ahead.
    plan_ctxs: Vec<SumCtx>,
    /// Planned table indices, `plan_stride` per in-flight branch
    /// (globals first, then locals), allocated once at construction.
    plans: Vec<u64>,
    plan_stride: usize,
    pipeline_depth: usize,
}

impl Gehl {
    /// Builds a GEHL predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GehlConfig::validate`].
    // bp-lint: allow-item(hot-path-alloc, "table construction is cold; steady-state predict/update is allocation-free (tests/hotpath_allocations.rs)")
    pub fn new(config: GehlConfig) -> Self {
        config.validate();
        let capacity = (config.max_history + 1).next_power_of_two().max(2048);
        let mut history = HistoryState::new(capacity, config.path_bits);
        let mut folds = Vec::with_capacity(config.num_tables);
        let mut hist_lens = Vec::with_capacity(config.num_tables);
        for i in 0..config.num_tables {
            let hlen = config.history_length(i);
            folds.push((hlen > 0).then(|| history.add_fold(hlen, config.log_entries)));
            hist_lens.push(hlen as u64);
        }
        let entries = 1usize << config.log_entries;
        let n_local = config.local.map_or(0, |(_, tables)| tables);
        let plan_stride = config.num_tables + n_local;
        Gehl {
            tables: CounterBank::new(config.num_tables, entries, config.counter_bits),
            folds,
            hist_lens,
            plan_ctxs: vec![SumCtx::default(); MAX_PIPELINE_DEPTH],
            plans: vec![0u64; MAX_PIPELINE_DEPTH * plan_stride],
            plan_stride,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            history,
            local_history: config
                .local
                .map(|(width, _)| LocalHistoryTable::new(256, width)),
            local_tables: config
                .local
                .map(|(_, tables)| CounterBank::new(tables, entries, config.counter_bits)),
            imli: config.imli.as_ref().map(ImliState::new),
            loop_pred: config.loop_predictor.map(LoopPredictor::new),
            threshold: AdaptiveThreshold::new(config.threshold_init, config.threshold_max),
            lookup: None,
            indices: [0; GEHL_MAX_ADDENDS],
            last_pred: false,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GehlConfig {
        &self.config
    }

    /// Read-only access to the embedded IMLI state, when configured.
    pub fn imli(&self) -> Option<&ImliState> {
        self.imli.as_ref()
    }

    /// Index of global table `i` against an explicit history view —
    /// always the architectural [`Gehl::history`]: the scalar path reads
    /// it at predict time, the pipelined front end at plan time (before
    /// the commit loop trains, which the purity invariant makes
    /// order-equivalent).
    #[inline]
    fn table_index(&self, hist: &HistoryState, i: usize, pc: u64, imli_count: u32) -> u64 {
        let mut v = pc_bits(pc) ^ ((i as u64) << 59);
        if let Some(fold) = self.folds[i] {
            let hlen = self.hist_lens[i];
            v ^= u64::from(hist.fold(fold)) ^ (hlen << 13);
            v ^= hist.path() & 0x3F;
        }
        // Paper §4.2: folding the IMLI counter into two of the global
        // table indices increases the SIC benefit.
        if self.imli.is_some() && (i == 2 || i == 3) {
            v ^= mix64(u64::from(imli_count)) >> 7;
        }
        v
    }

    #[inline]
    fn local_index(&self, i: usize, pc: u64, lhist: u32) -> u64 {
        let len = 6 * (i + 1); // local lengths 6, 12, 18, 24
        let hist = u64::from(lhist) & ((1u64 << len.min(32)) - 1);
        pc_bits(pc) ^ mix64(hist ^ ((i as u64 + 1) << 53))
    }

    /// Storage breakdown: (component, bits).
    // bp-lint: allow-item(hot-path-alloc, "storage accounting is reporting-time only, never on the predict/update path")
    pub fn budget_breakdown(&self) -> Vec<(String, u64)> {
        let mut parts = vec![("gehl-global".to_owned(), self.tables.storage_bits())];
        if let Some(local) = &self.local_tables {
            parts.push((
                "gehl-local".to_owned(),
                local.storage_bits()
                    + self
                        .local_history
                        .as_ref()
                        .map_or(0, LocalHistoryTable::storage_bits),
            ));
        }
        if let Some(lp) = &self.loop_pred {
            parts.push(("loop".to_owned(), lp.storage_bits()));
        }
        if let Some(imli) = &self.imli {
            parts.push(("imli".to_owned(), imli.storage_bits()));
        }
        parts
    }

    /// The shared prediction path behind both [`predict`] and
    /// [`predict_attributed`] — one flow, so they can never diverge.
    ///
    /// [`predict`]: ConditionalPredictor::predict
    /// [`predict_attributed`]: ConditionalPredictor::predict_attributed
    #[inline]
    fn make_ctx(&self, pc: u64) -> SumCtx {
        let mut ctx = SumCtx {
            pc,
            ghist: self.history.global().low_bits(64),
            path: self.history.path(),
            ..SumCtx::default()
        };
        if let Some(lh) = &self.local_history {
            ctx.local_history = lh.history(pc);
        }
        if let Some(imli) = &self.imli {
            imli.fill_ctx(&mut ctx);
        }
        ctx
    }

    #[inline]
    fn predict_full(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let ctx = self.make_ctx(pc);

        // Fused index+gather pass per bank: compute each table's index
        // (mixing and fold reads), stash it for verbatim reuse by
        // [`ConditionalPredictor::update`], and pull the raw counter
        // into a flat `i8` buffer in the same loop — at GEHL's table
        // counts, separate index/gather passes cost more in
        // store-to-load round trips through the stash than their extra
        // scheduling freedom recovers. Only the reduction is split out,
        // so it runs through the vector-friendly kernel.
        let n_global = self.tables.tables();
        let mut values = [0i8; GEHL_MAX_ADDENDS];
        for (i, value) in values[..n_global].iter_mut().enumerate() {
            let idx = self.table_index(&self.history, i, pc, ctx.imli_count);
            self.indices[i] = idx;
            *value = self.tables.value(i, idx);
        }
        let n_local = self.local_tables.as_ref().map_or(0, CounterBank::tables);
        if let Some(local) = &self.local_tables {
            for (i, value) in values[n_global..n_global + n_local].iter_mut().enumerate() {
                let idx = self.local_index(i, pc, ctx.local_history);
                self.indices[n_global + i] = idx;
                *value = local.value(i, idx);
            }
        }
        self.finish_predict(ctx, &values, n_global + n_local)
    }

    /// Back-end half of the pipelined drive: gathers counters through
    /// the indices planned by [`Gehl::plan_record`], under the context
    /// captured at plan time (the architectural history has run ahead
    /// by then), and finishes the prediction exactly like
    /// [`Gehl::predict_full`]. The planned indices are copied into
    /// [`Gehl::indices`] first, so the paired training step trains
    /// through them verbatim, same as the scalar path.
    fn predict_planned(&mut self, row: usize) -> (bool, PredictionAttribution) {
        let ctx = self.plan_ctxs[row];
        let n_global = self.tables.tables();
        let n_local = self.local_tables.as_ref().map_or(0, CounterBank::tables);
        let n = n_global + n_local;
        let base = row * self.plan_stride;
        self.indices[..n].copy_from_slice(&self.plans[base..base + n]);
        let mut values = [0i8; GEHL_MAX_ADDENDS];
        self.tables
            .gather(&self.indices[..n_global], &mut values[..n_global]);
        if let Some(local) = &self.local_tables {
            local.gather(&self.indices[n_global..n], &mut values[n_global..n]);
        }
        self.finish_predict(ctx, &values, n)
    }

    /// Shared prediction tail: reduce, IMLI addends, loop-predictor
    /// override, attribution, and the `lookup` stash for `update`.
    #[inline]
    fn finish_predict(
        &mut self,
        ctx: SumCtx,
        values: &[i8; GEHL_MAX_ADDENDS],
        n: usize,
    ) -> (bool, PredictionAttribution) {
        // Reduce: Σ (2c+1) over the gathered counters, exactly the sum
        // the per-table `read` loop used to accumulate.
        let mut sum = sum_centered_padded(values, n);
        if let Some(imli) = &self.imli {
            sum += imli.read(&ctx);
        }

        let mut pred = sum >= 0;
        let mut attribution = PredictionAttribution::new(
            ProviderComponent::Neural,
            None,
            ConfidenceBucket::from_sum(sum.abs(), self.threshold.theta()),
        );
        let mut loop_used = false;
        if let Some(lp) = &self.loop_pred {
            if let Some(loop_pred) = lp.predict(ctx.pc) {
                if loop_pred.high_confidence {
                    attribution = PredictionAttribution::new(
                        ProviderComponent::Loop,
                        Some(pred),
                        ConfidenceBucket::High,
                    );
                    pred = loop_pred.taken;
                    loop_used = true;
                }
            }
        }
        self.lookup = Some((ctx, sum, loop_used));
        self.last_pred = pred;
        (pred, attribution)
    }

    /// Front-end pass for one in-flight branch: captures the branch's
    /// sum context, computes every table index, stashes both in row
    /// `row` of the plan scratch, and advances the architectural index
    /// inputs past the record. Advancing the real state here (instead
    /// of replaying a shadow copy) is what the purity invariant buys:
    /// the fold work runs **once** per branch, same as the scalar
    /// drive, just earlier — the prediction-dependent training in
    /// [`Gehl::train_planned`] never touches an index input.
    ///
    /// Deliberately issues **no** prefetches: the counter banks are the
    /// same L1/L2-resident ~26 KB working set for which the one-branch
    /// lookahead hint ([`ConditionalPredictor::prefetch`]) already
    /// restricts itself to a single exact row — per-row plan prefetches
    /// were measured as pure front-end overhead here, unlike the
    /// L1-overflowing TAGE-SC banks.
    #[inline]
    fn plan_record(&mut self, row: usize, record: &BranchRecord) {
        if record.is_conditional() {
            let ctx = self.make_ctx(record.pc);
            let n_global = self.tables.tables();
            let base = row * self.plan_stride;
            for i in 0..n_global {
                self.plans[base + i] =
                    self.table_index(&self.history, i, record.pc, ctx.imli_count);
            }
            if let Some(local) = &self.local_tables {
                for i in 0..local.tables() {
                    self.plans[base + n_global + i] =
                        self.local_index(i, record.pc, ctx.local_history);
                }
            }
            self.plan_ctxs[row] = ctx;
            self.advance_conditional(record);
        } else {
            self.advance_nonconditional(record);
        }
    }

    /// Advances every index input past a conditional record: IMLI
    /// observation, local history, folded global/path history. Pure in
    /// `(pc, outcome)` — the scalar `update` tail and the pipelined
    /// front end share it, so the two drives walk identical state.
    #[inline]
    fn advance_conditional(&mut self, record: &BranchRecord) {
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        if let Some(lh) = &mut self.local_history {
            lh.update(record.pc, record.taken);
        }
        self.history.push(record.taken, record.pc);
    }

    /// Advances the index inputs past a non-conditional record.
    #[inline]
    fn advance_nonconditional(&mut self, record: &BranchRecord) {
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        self.history.push_path_only(record.pc);
    }

    /// The prediction-dependent half of [`ConditionalPredictor::update`]:
    /// loop-predictor training, threshold-gated counter training through
    /// the stashed indices, and threshold adaptation. Touches no index
    /// input, which is what lets the pipelined front end run the history
    /// ahead of it.
    #[inline]
    fn train_planned(&mut self, record: &BranchRecord) {
        // bp-lint: allow(panic-surface, "CBP protocol contract: update() without a pending predict() is caller error, not data-dependent")
        let (ctx, sum, _loop_used) = self.lookup.take().expect("update without pending predict");
        let taken = record.taken;
        let mispredicted = self.last_pred != taken;
        let neural_mispredicted = (sum >= 0) != taken;
        let sum_abs = sum.abs();

        if let Some(lp) = &mut self.loop_pred {
            // Backward-branch-gated allocation: see TageSc::update.
            lp.update(record.pc, taken, mispredicted && record.is_backward());
        }

        if self.threshold.should_update(sum_abs, neural_mispredicted) {
            // Train through the indices stashed by the paired predict:
            // they are the rows the prediction actually read.
            let n_global = self.tables.tables();
            self.tables.train_all(&self.indices[..n_global], taken);
            if let Some(local) = &mut self.local_tables {
                let n_local = local.tables();
                local.train_all(&self.indices[n_global..n_global + n_local], taken);
            }
            if let Some(imli) = &mut self.imli {
                imli.train(&ctx, taken);
            }
        }
        self.threshold.adapt(sum_abs, neural_mispredicted);
    }
}

impl ConditionalPredictor for Gehl {
    fn predict(&mut self, pc: u64) -> bool {
        self.predict_full(pc).0
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        self.predict_full(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        self.train_planned(record);
        self.advance_conditional(record);
    }

    fn flush_history(&mut self) {
        self.history.flush();
        if let Some(lh) = &mut self.local_history {
            lh.clear();
        }
        if let Some(imli) = &mut self.imli {
            imli.flush_history();
        }
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        self.advance_nonconditional(record);
    }

    fn run_block(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        for chunk in block.chunks(self.pipeline_depth) {
            // Front end: plan (and prefetch) every branch of the chunk,
            // advancing the architectural index inputs up to
            // `pipeline_depth` branches ahead of the commit loop.
            // Non-conditionals are fully handled here.
            for (row, record) in chunk.iter().enumerate() {
                self.plan_record(row, record);
            }
            // Back end: gather through the precomputed addresses and
            // apply the prediction-dependent training, in trace order.
            for (row, record) in chunk.iter().enumerate() {
                if record.is_conditional() {
                    let (pred, _) = self.predict_planned(row);
                    stats.record(pred == record.taken);
                    self.train_planned(record);
                }
            }
        }
    }

    fn run_block_frontend(&mut self, block: &[BranchRecord]) {
        for chunk in block.chunks(self.pipeline_depth) {
            for (row, record) in chunk.iter().enumerate() {
                self.plan_record(row, record);
            }
        }
    }

    fn set_pipeline_depth(&mut self, depth: usize) {
        self.pipeline_depth = clamp_pipeline_depth(depth);
    }

    fn prefetch(&self, pc: u64) {
        // Pure hint, issued one branch ahead by the simulator. Table 0
        // is PC-indexed so its row is exact; the history-indexed rows
        // all live in an L1/L2-resident ~26 KB bank where extra
        // prefetches were measured as pure overhead, so only the exact
        // row (and the loop predictor's) are requested.
        self.tables
            .prefetch(0, self.table_index(&self.history, 0, pc, 0));
        if let Some(lp) = &self.loop_pred {
            lp.prefetch(pc);
        }
    }

    fn name(&self) -> &str {
        &self.config.name
    }
}

impl StorageBudget for Gehl {
    // bp-lint: allow-item(hot-path-alloc, "storage accounting is reporting-time only, never on the predict/update path")
    fn storage_items(&self) -> Vec<StorageItem> {
        let mut items: Vec<StorageItem> = (0..self.tables.tables())
            .map(|i| {
                StorageItem::new(
                    format!("gehl/global[{i}]"),
                    self.tables.table_storage_bits(),
                )
            })
            .collect();
        if let Some(local) = &self.local_tables {
            for i in 0..local.tables() {
                items.push(StorageItem::new(
                    format!("gehl/local[{i}]"),
                    local.table_storage_bits(),
                ));
            }
        }
        if let Some(lh) = &self.local_history {
            items.push(StorageItem::new("gehl/local-history", lh.storage_bits()));
        }
        if let Some(lp) = &self.loop_pred {
            items.push(StorageItem::new("loop", lp.storage_bits()));
        }
        if let Some(imli) = &self.imli {
            items.extend(imli.storage_items());
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy<F: FnMut(u64) -> bool>(
        p: &mut Gehl,
        pc: u64,
        n: u64,
        warm: u64,
        mut outcome: F,
    ) -> f64 {
        let mut correct = 0u64;
        for i in 0..n {
            let taken = outcome(i);
            let pred = p.predict(pc);
            if i >= warm {
                correct += u64::from(pred == taken);
            }
            p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
        }
        correct as f64 / (n - warm) as f64
    }

    #[test]
    fn base_budget_is_exactly_204_kbit() {
        let p = Gehl::gehl();
        assert_eq!(p.storage_bits(), 17 * 2048 * 6);
        assert_eq!(p.storage_bits(), 204 * 1024);
    }

    #[test]
    fn history_series_is_geometric() {
        let c = GehlConfig::base();
        assert_eq!(c.history_length(0), 0);
        assert_eq!(c.history_length(1), 2);
        assert_eq!(c.history_length(16), 600);
        for i in 2..17 {
            assert!(c.history_length(i) > c.history_length(i - 1));
        }
    }

    #[test]
    fn learns_biased_and_periodic_branches() {
        let mut p = Gehl::gehl();
        assert!(accuracy(&mut p, 0x100, 2000, 1000, |_| true) > 0.99);
        let mut q = Gehl::gehl();
        let acc = accuracy(&mut q, 0x100, 8000, 4000, |i| i % 5 < 2);
        assert!(acc > 0.95, "period-5 accuracy {acc:.3}");
    }

    #[test]
    fn table_2_budget_ordering() {
        let base = Gehl::gehl().storage_bits();
        let imli = Gehl::gehl_imli().storage_bits();
        let ftl = Gehl::ftl().storage_bits();
        let both = Gehl::ftl_imli().storage_bits();
        assert!(base < imli && imli < ftl && ftl < both);
        // Paper Table 2: 204 → 209 ("+I"), → 256 ("+L"), → 261 Kbits.
        assert!((imli - base) < 8 * 1024);
        assert!((ftl - base) > 40 * 1024);
    }

    #[test]
    fn imli_variant_fixes_same_iteration_branch() {
        // Outcome depends only on the inner-loop iteration index with a
        // variable trip count: global history alone struggles, IMLI-SIC
        // nails it.
        let run = |p: &mut Gehl| -> f64 {
            let body = 0x4008u64;
            let noise_pc = 0x400cu64;
            let back_pc = 0x4010u64;
            let mut correct = 0u64;
            let mut total = 0u64;
            let mut rng = 0x1234_5678u64;
            let mut step = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            // Per-iteration pattern that drifts slowly: Out[N][M] equals
            // Out[N-1][M] except for one random flip per outer iteration.
            let mut pattern: Vec<bool> = (0..32).map(|_| step() & 1 == 1).collect();
            for n in 0..600u64 {
                let trips = 8 + (step() % 24) as u32; // variable trip count
                for m in 0..trips {
                    let taken = pattern[m as usize];
                    let pred = p.predict(body);
                    if n > 150 {
                        total += 1;
                        correct += u64::from(pred == taken);
                    }
                    p.update(&BranchRecord::conditional(body, body + 0x40, taken));
                    // History-polluting random branch in the loop body.
                    let noise = step() & 1 == 1;
                    let _ = p.predict(noise_pc);
                    p.update(&BranchRecord::conditional(noise_pc, noise_pc + 0x40, noise));
                    let back_taken = m + 1 < trips;
                    let _ = p.predict(back_pc);
                    p.update(&BranchRecord::conditional(back_pc, 0x4000, back_taken));
                }
                let flip = (step() % 32) as usize;
                pattern[flip] = !pattern[flip];
            }
            correct as f64 / total as f64
        };
        let base_acc = run(&mut Gehl::gehl());
        let imli_acc = run(&mut Gehl::gehl_imli());
        assert!(
            imli_acc > base_acc + 0.02,
            "IMLI should beat base on variable-trip SIC workload: {imli_acc:.3} vs {base_acc:.3}"
        );
        assert!(imli_acc > 0.9, "IMLI accuracy {imli_acc:.3}");
    }

    #[test]
    fn names_match_labels() {
        assert_eq!(Gehl::gehl().name(), "GEHL");
        assert_eq!(Gehl::gehl_imli().name(), "GEHL+IMLI");
        assert_eq!(Gehl::ftl().name(), "FTL");
        assert_eq!(Gehl::ftl_imli().name(), "FTL+IMLI");
    }

    #[test]
    #[should_panic(expected = "update without pending predict")]
    fn update_requires_predict() {
        let mut p = Gehl::gehl();
        p.update(&BranchRecord::conditional(0x40, 0x80, true));
    }

    #[test]
    fn nonconditional_notifications_are_safe() {
        let mut p = Gehl::gehl_imli();
        p.notify_nonconditional(&BranchRecord::unconditional(0x40, 0x80));
        let _ = p.predict(0x44);
        p.update(&BranchRecord::conditional(0x44, 0x20, true));
    }
}
