//! Behavioural tests of the GEHL family through the public API.

use bp_components::{ConditionalPredictor, StorageBudget};
use bp_gehl::{Gehl, GehlConfig};
use bp_trace::BranchRecord;

fn drive(p: &mut Gehl, pc: u64, taken: bool) -> bool {
    let pred = p.predict(pc);
    p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
    pred
}

/// GEHL's long geometric histories capture a long-distance correlation
/// that short-history predictors miss: branch B repeats branch A's
/// outcome from ~100 branches earlier.
#[test]
fn long_history_captures_distant_correlator() {
    let mut p = Gehl::gehl();
    let mut queue = std::collections::VecDeque::new();
    let mut correct = 0u32;
    let total = 6000u32;
    for i in 0..total {
        let a = (i % 13) < 6;
        drive(&mut p, 0x100, a);
        queue.push_back(a);
        // ~48 filler branches (alternating, predictable).
        for f in 0..48u64 {
            drive(&mut p, 0x200 + f * 8, f % 2 == 0);
        }
        let b = if queue.len() > 2 {
            queue.pop_front().expect("non-empty")
        } else {
            a
        };
        let pred = drive(&mut p, 0x1000, b);
        if i > total / 2 {
            correct += u32::from(pred == b);
        }
    }
    let acc = f64::from(correct) / f64::from(total / 2 - 1);
    assert!(acc > 0.9, "distant correlator accuracy {acc:.3}");
}

/// FTL's local component captures interleaved per-branch periodic
/// patterns that pollute each other's global history.
#[test]
fn ftl_local_component_beats_global_only_on_interleaved_periodics() {
    let run = |mut p: Gehl| -> f64 {
        let mut positions = [0u32; 3];
        let periods = [7u32, 11, 13];
        let mut state = 0x9E37u64;
        let mut correct = 0u32;
        let mut counted = 0u32;
        for i in 0..40_000u32 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % 3) as usize;
            let taken = positions[j] < 3;
            positions[j] = (positions[j] + 1) % periods[j];
            let pc = 0x4000 + j as u64 * 8;
            let pred = p.predict(pc);
            if i > 20_000 {
                counted += 1;
                correct += u32::from(pred == taken);
            }
            p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
        }
        f64::from(correct) / f64::from(counted)
    };
    let gehl_acc = run(Gehl::gehl());
    let ftl_acc = run(Gehl::ftl());
    assert!(
        ftl_acc > gehl_acc + 0.01,
        "FTL must beat GEHL on interleaved periodics: {ftl_acc:.3} vs {gehl_acc:.3}"
    );
    assert!(ftl_acc > 0.9, "FTL accuracy {ftl_acc:.3}");
}

/// The loop predictor in FTL nails very long constant-trip loops.
#[test]
fn ftl_loop_predictor_handles_long_loops() {
    let mut p = Gehl::ftl();
    let mut wrong_exits = 0u32;
    let trip = 200u32;
    for outer in 0..120u32 {
        for m in 0..trip {
            let taken = m + 1 < trip;
            let pred = drive(&mut p, 0x808, taken);
            if outer > 60 && !taken && pred {
                wrong_exits += 1;
            }
        }
    }
    assert!(
        wrong_exits <= 2,
        "loop exits must be predicted once trained: {wrong_exits} missed"
    );
}

/// Config introspection stays consistent.
#[test]
fn config_accessors() {
    let p = Gehl::gehl_imli();
    assert!(p.imli().is_some());
    assert_eq!(p.config().num_tables, 17);
    assert!(Gehl::gehl().imli().is_none());
    let ftl = GehlConfig::ftl();
    assert!(ftl.local.is_some() && ftl.loop_predictor.is_some());
}

/// Budget breakdown sums to the reported storage for every variant.
#[test]
fn budget_breakdown_sums_to_total() {
    for p in [
        Gehl::gehl(),
        Gehl::gehl_imli(),
        Gehl::ftl(),
        Gehl::ftl_imli(),
        Gehl::gehl_sic(),
        Gehl::gehl_oh(),
    ] {
        let parts: u64 = p.budget_breakdown().iter().map(|(_, b)| b).sum();
        assert_eq!(parts, p.storage_bits(), "{}", p.name());
    }
}
