//! The lint engine: per-file rule orchestration, the workspace walk,
//! and deterministic diagnostic/JSON rendering.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::annotations::{collect_allows, suppressed, Allow};
use crate::audit::{render_audit, unsafe_sites, UnsafeSite};
use crate::lexer::{LexedFile, SegmentKind};
use crate::rules::{
    find_banned, test_regions, Banned, Policy, Rule, TestRegion, DETERMINISM_BANNED,
    HOT_PATH_BANNED, PANIC_BANNED,
};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line; 0 for file-level findings (audit drift).
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations found (unsuppressed), in line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every `unsafe` site, justified or not.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Result of linting a workspace tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// All `unsafe` sites, sorted by (path, line).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Renders the deterministic `UNSAFE_AUDIT.md` content for this
    /// report's inventory.
    pub fn render_audit(&self) -> String {
        render_audit(&self.unsafe_sites)
    }

    /// Renders the report as deterministic JSON (the `bp lint --json`
    /// payload).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"bp-lint\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"unsafe_sites\": {},\n",
            self.unsafe_sites.len()
        ));
        out.push_str(&format!(
            "  \"violations\": {},\n  \"diagnostics\": [",
            self.diagnostics.len()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_string(&d.path),
                d.line,
                json_string(d.rule.name()),
                json_string(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaper (the crate is dependency-free by
/// design, so it cannot borrow `bp_components::json_string`).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a workspace-relative file path to the crate it belongs to.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some("core") => "imli".to_owned(),
            Some(dir) => format!("bp-{dir}"),
            None => "imli-repro".to_owned(),
        },
        _ => "imli-repro".to_owned(), // src/, tests/, examples/
    }
}

/// Lints one file's source text under the given policy. `rel_path`
/// decides which scoped rules apply.
pub fn lint_source(rel_path: &str, src: &str, policy: &Policy) -> FileOutcome {
    let lexed = LexedFile::lex(src);
    let regions = test_regions(&lexed);
    let (mut allows, annotation_errors) = collect_allows(&lexed);
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    for err in &annotation_errors {
        diagnostics.push(Diagnostic {
            path: rel_path.to_owned(),
            line: err.line,
            rule: Rule::LintAnnotation,
            message: err.message.clone(),
        });
    }

    // unsafe-audit: unconditional, not allowlistable, test code
    // included (test `unsafe` is still `unsafe`).
    let sites = unsafe_sites(rel_path, &crate_of(rel_path), &lexed);
    for site in &sites {
        if site.justification.is_none() {
            diagnostics.push(Diagnostic {
                path: rel_path.to_owned(),
                line: site.line,
                rule: Rule::UnsafeAudit,
                message: format!(
                    "`unsafe` {} without an immediately preceding `// SAFETY:` comment{}",
                    site.kind.label(),
                    if site.kind.label() == "block" {
                        ""
                    } else {
                        " (or a `# Safety` doc section)"
                    }
                ),
            });
        }
    }

    let scoped = |banned: &[Banned],
                  rule: Rule,
                  contract: &str,
                  diagnostics: &mut Vec<Diagnostic>,
                  allows: &mut Vec<Allow>| {
        for b in banned {
            for at in find_banned(&lexed.code, b.needle) {
                if in_test_region(&regions, at) {
                    continue;
                }
                let line = lexed.line_of(at);
                if suppressed(allows, rule, line) {
                    continue;
                }
                diagnostics.push(Diagnostic {
                    path: rel_path.to_owned(),
                    line,
                    rule,
                    message: format!("`{}` {} ({})", b.needle, b.why, contract),
                });
            }
        }
    };

    if policy.is_hot(rel_path) {
        scoped(
            HOT_PATH_BANNED,
            Rule::HotPathAlloc,
            "zero-steady-state-allocation contract",
            &mut diagnostics,
            &mut allows,
        );
    }
    if policy.is_deterministic(rel_path) {
        scoped(
            DETERMINISM_BANNED,
            Rule::Determinism,
            "byte-deterministic artifact contract",
            &mut diagnostics,
            &mut allows,
        );
        // Debug formatting of floats is shortest-round-trip, not
        // fixed-precision: ban `:?` format specs in these modules.
        for seg in &lexed.segments {
            if !matches!(seg.kind, SegmentKind::Str | SegmentKind::RawStr) {
                continue;
            }
            if in_test_region(&regions, seg.start) {
                continue;
            }
            if lexed.segment_text(seg).contains(":?") {
                let line = lexed.line_of(seg.start);
                if suppressed(&mut allows, Rule::Determinism, line) {
                    continue;
                }
                diagnostics.push(Diagnostic {
                    path: rel_path.to_owned(),
                    line,
                    rule: Rule::Determinism,
                    message: "`{:?}` formatting in an artifact module: Debug float output \
                              is shortest-round-trip, not fixed-precision (byte-deterministic \
                              artifact contract)"
                        .to_owned(),
                });
            }
        }
    }
    if policy.is_panic_free(rel_path) {
        scoped(
            PANIC_BANNED,
            Rule::PanicSurface,
            "validate-then-build-safely contract",
            &mut diagnostics,
            &mut allows,
        );
    }

    for allow in &allows {
        if !allow.used {
            diagnostics.push(Diagnostic {
                path: rel_path.to_owned(),
                line: allow.line,
                rule: Rule::LintAnnotation,
                message: format!(
                    "unused allow({}): it suppresses nothing; remove it or fix its scope",
                    allow.rule.name()
                ),
            });
        }
    }

    diagnostics.sort();
    FileOutcome {
        diagnostics,
        unsafe_sites: sites,
    }
}

fn in_test_region(regions: &[TestRegion], offset: usize) -> bool {
    regions.iter().any(|r| r.contains(offset))
}

/// Collects the workspace's lintable `.rs` files: everything under
/// `src/`, `crates/`, `tests/`, and `examples/`, excluding `target/`
/// and the vendored dependency shims. Paths come back sorted and
/// workspace-relative with forward slashes.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace file under `root` with the default policy.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    lint_workspace_with(root, &crate::rules::default_policy())
}

/// Lints every workspace file under `root` with an explicit policy.
pub fn lint_workspace_with(root: &Path, policy: &Policy) -> Result<LintReport, String> {
    let files = workspace_files(root)?;
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let outcome = lint_source(&rel, &src, policy);
        report.diagnostics.extend(outcome.diagnostics);
        report.unsafe_sites.extend(outcome.unsafe_sites);
    }
    report.diagnostics.sort();
    report
        .unsafe_sites
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — the root `bp lint` operates on.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
