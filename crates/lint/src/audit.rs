//! The unsafe-audit rule: every `unsafe` must carry an immediately
//! preceding justification, and the full inventory renders to a
//! deterministic `UNSAFE_AUDIT.md` that CI cmp-checks so new `unsafe`
//! cannot land silently.
//!
//! Accepted justification forms, matching Rust convention:
//!
//! * a `// SAFETY: ...` line comment directly above the `unsafe`
//!   (attribute lines and comment continuations may sit between);
//! * for `unsafe fn`/`unsafe trait`/`unsafe impl` declarations, a doc
//!   comment with a `# Safety` section.

use crate::lexer::LexedFile;
use crate::rules::find_banned;

/// What the `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { .. }` block.
    Block,
    /// An `unsafe fn` declaration.
    Fn,
    /// An `unsafe impl`.
    Impl,
    /// An `unsafe trait`.
    Trait,
    /// Anything else (`unsafe extern`, macro-position uses).
    Other,
}

impl UnsafeKind {
    /// Stable lowercase label used in the audit table.
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Other => "other",
        }
    }
}

/// One audited `unsafe` site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path of the file.
    pub path: String,
    /// Crate the file belongs to.
    pub krate: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Block / fn / impl / trait.
    pub kind: UnsafeKind,
    /// The justification text, when one was found.
    pub justification: Option<String>,
}

/// Scans a lexed file for `unsafe` sites and their justifications.
pub fn unsafe_sites(rel_path: &str, krate: &str, lexed: &LexedFile) -> Vec<UnsafeSite> {
    find_banned(&lexed.code, "unsafe")
        .into_iter()
        .map(|at| {
            let kind = classify(&lexed.code, at + "unsafe".len());
            UnsafeSite {
                path: rel_path.to_owned(),
                krate: krate.to_owned(),
                line: lexed.line_of(at),
                kind,
                justification: justification_for(lexed, at, kind),
            }
        })
        .collect()
}

/// Looks at the token after `unsafe` to classify the site.
fn classify(code: &str, after: usize) -> UnsafeKind {
    let rest = code[after..].trim_start();
    if rest.starts_with('{') {
        UnsafeKind::Block
    } else if rest.starts_with("fn") {
        UnsafeKind::Fn
    } else if rest.starts_with("impl") {
        UnsafeKind::Impl
    } else if rest.starts_with("trait") {
        UnsafeKind::Trait
    } else {
        UnsafeKind::Other
    }
}

/// Walks upward from the `unsafe` keyword's line over the contiguous
/// run of comment/attribute lines and extracts the justification.
fn justification_for(lexed: &LexedFile, at: usize, kind: UnsafeKind) -> Option<String> {
    let anchor_line = lexed.line_of(at);
    let mut comment_lines: Vec<&str> = Vec::new(); // top-down order
    let mut line = anchor_line;
    while line > 1 {
        line -= 1;
        match line_role(lexed, line) {
            LineRole::Comment(text) => comment_lines.insert(0, text),
            LineRole::Attribute => continue,
            LineRole::Code | LineRole::Blank => break,
        }
    }
    // Also accept a block comment or trailing `// SAFETY:` on the
    // anchor line itself, *before* the keyword (e.g. after `=`):
    // `let x = /* SAFETY: .. */ unsafe { .. }`.
    for seg in lexed.comments() {
        if seg.end <= at && lexed.line_of(seg.start) == anchor_line {
            comment_lines.push(lexed.segment_text(seg));
        }
    }

    extract_safety(&comment_lines, kind)
}

enum LineRole<'a> {
    Comment(&'a str),
    Attribute,
    Code,
    Blank,
}

/// Classifies source line `line` (1-based) for the upward walk.
fn line_role(lexed: &LexedFile, line: u32) -> LineRole<'_> {
    let (start, end) = lexed.line_span(line);
    let code_part = lexed.code[start..end].trim();
    let raw_part = lexed.src[start..end].trim();
    if code_part.is_empty() {
        if raw_part.is_empty() {
            return LineRole::Blank;
        }
        // Non-code text: part of a comment (or a stray literal
        // continuation, which cannot precede `unsafe` in valid Rust).
        return LineRole::Comment(raw_part);
    }
    if code_part.starts_with("#[") || code_part.starts_with("#!") {
        return LineRole::Attribute;
    }
    LineRole::Code
}

/// Pulls the justification out of a top-down run of comment lines:
/// text after `SAFETY:` plus its continuation lines, or the first
/// paragraph under a `# Safety` doc heading for declarations.
fn extract_safety(comment_lines: &[&str], kind: UnsafeKind) -> Option<String> {
    if let Some(idx) = comment_lines.iter().position(|l| l.contains("SAFETY:")) {
        let mut parts: Vec<String> = Vec::new();
        let first = comment_lines[idx];
        let tail = &first[first.find("SAFETY:").unwrap() + "SAFETY:".len()..];
        parts.push(tail.trim().to_owned());
        for cont in &comment_lines[idx + 1..] {
            let text = strip_comment_lead(cont);
            if text.is_empty() {
                break;
            }
            parts.push(text.to_owned());
        }
        let joined = parts.join(" ").trim().to_owned();
        return if joined.is_empty() {
            None
        } else {
            Some(joined)
        };
    }
    // `# Safety` doc section (declarations only: a block cannot carry
    // doc comments).
    if !matches!(kind, UnsafeKind::Block) {
        if let Some(idx) = comment_lines
            .iter()
            .position(|l| strip_comment_lead(l).starts_with("# Safety"))
        {
            let mut parts: Vec<String> = Vec::new();
            for cont in &comment_lines[idx + 1..] {
                let text = strip_comment_lead(cont);
                if text.is_empty() && !parts.is_empty() {
                    break;
                }
                if !text.is_empty() {
                    parts.push(text.to_owned());
                }
            }
            if !parts.is_empty() {
                return Some(parts.join(" "));
            }
        }
    }
    None
}

/// Removes `//`/`///`/`//!`/`/*`/`*` comment leaders and `*/` tails.
fn strip_comment_lead(line: &str) -> &str {
    let mut t = line.trim();
    for lead in ["//!", "///", "//", "/**", "/*!", "/*"] {
        if let Some(rest) = t.strip_prefix(lead) {
            t = rest;
            break;
        }
    }
    t = t.strip_prefix('*').unwrap_or(t);
    t = t.strip_suffix("*/").unwrap_or(t);
    t.trim()
}

/// Renders the deterministic `UNSAFE_AUDIT.md` inventory. Sites must
/// already be in workspace order (sorted path, then line).
pub fn render_audit(sites: &[UnsafeSite]) -> String {
    let mut out = String::new();
    out.push_str("# UNSAFE_AUDIT — audited `unsafe` inventory\n\n");
    out.push_str(
        "Machine-generated by `bp lint --fix-audit`; do not edit by hand.\n\
         CI regenerates this file and `cmp`s it against the committed copy,\n\
         so a new `unsafe` site (or an edited justification) cannot land\n\
         without showing up in review here.\n\n",
    );
    out.push_str(&format!("Audited sites: {}\n\n", sites.len()));
    out.push_str("| # | Crate | Site | Kind | Justification |\n");
    out.push_str("|---|-------|------|------|---------------|\n");
    for (i, site) in sites.iter().enumerate() {
        let justification = site
            .justification
            .as_deref()
            .unwrap_or("**MISSING `// SAFETY:` justification**");
        out.push_str(&format!(
            "| {} | {} | {}:{} | {} | {} |\n",
            i + 1,
            site.krate,
            site.path,
            site.line,
            site.kind.label(),
            cell(justification),
        ));
    }
    out
}

/// Escapes a justification for a one-line markdown table cell.
fn cell(text: &str) -> String {
    text.replace('|', "\\|").replace('\n', " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<UnsafeSite> {
        unsafe_sites("crates/x/src/lib.rs", "bp-x", &LexedFile::lex(src))
    }

    #[test]
    fn safety_comment_is_attached() {
        let src = "fn f() {\n    // SAFETY: index is masked to table len.\n    unsafe { g() }\n}";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, UnsafeKind::Block);
        assert_eq!(
            s[0].justification.as_deref(),
            Some("index is masked to table len.")
        );
    }

    #[test]
    fn multi_line_safety_comment_joins() {
        let src = "// SAFETY: the pointer is in bounds\n// and the lifetime outlives the call.\nunsafe fn f() {}";
        let s = sites(src);
        assert_eq!(
            s[0].justification.as_deref(),
            Some("the pointer is in bounds and the lifetime outlives the call.")
        );
    }

    #[test]
    fn attributes_between_comment_and_unsafe_are_skipped() {
        let src = "// SAFETY: avx2 verified at construction.\n#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}";
        assert!(sites(src)[0].justification.is_some());
    }

    #[test]
    fn doc_safety_section_counts_for_declarations() {
        let src =
            "/// Does things.\n///\n/// # Safety\n///\n/// Caller must uphold X.\nunsafe fn f() {}";
        let s = sites(src);
        assert_eq!(s[0].kind, UnsafeKind::Fn);
        assert_eq!(s[0].justification.as_deref(), Some("Caller must uphold X."));
    }

    #[test]
    fn missing_justification_is_detected() {
        let src = "fn f() {\n    let x = 1;\n    unsafe { g() }\n}";
        assert!(sites(src)[0].justification.is_none());
    }

    #[test]
    fn blank_line_breaks_attachment() {
        let src = "// SAFETY: stale, detached.\n\nunsafe fn f() {}";
        assert!(sites(src)[0].justification.is_none());
    }

    #[test]
    fn unsafe_in_comment_or_string_is_invisible() {
        let src = "// unsafe here\nlet s = \"unsafe there\";";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn impl_and_trait_kinds() {
        let src = "// SAFETY: no shared state.\nunsafe impl Send for X {}\n// SAFETY: contract Y.\nunsafe trait T {}";
        let s = sites(src);
        assert_eq!(s[0].kind, UnsafeKind::Impl);
        assert_eq!(s[1].kind, UnsafeKind::Trait);
    }

    #[test]
    fn audit_renders_deterministically() {
        let src = "// SAFETY: reason.\nunsafe fn f() {}";
        let a = render_audit(&sites(src));
        let b = render_audit(&sites(src));
        assert_eq!(a, b);
        assert!(a.contains("| 1 | bp-x | crates/x/src/lib.rs:2 | fn | reason. |"));
    }
}
