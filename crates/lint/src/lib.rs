//! # bp-lint — workspace invariant lint engine
//!
//! The repo carries three load-bearing contracts that are otherwise
//! only enforced at runtime, by spot tests and CI `cmp` smoke checks:
//!
//! 1. **artifact determinism** — `REPORT_*`/`SWEEP_*` files must be
//!    byte-identical across runs and worker counts (the
//!    content-addressable-cache story);
//! 2. **allocation-free hot paths** — predictor predict/update loops
//!    must not touch the heap in steady state (proven dynamically by
//!    the counting-allocator test, but only for the configs that test
//!    runs);
//! 3. **a small, audited `unsafe` surface** — every `unsafe` site must
//!    carry a written safety argument.
//!
//! `bp-lint` makes those contracts machine-checked *at the source
//! level*: a hand-rolled, dependency-free scanner (a real
//! [`lexer`] that skips comments, strings, raw strings, and char
//! literals — property-tested so lints never fire inside them) feeds a
//! rule engine with per-file/per-span allowlisting via
//! `// bp-lint: allow(<rule>, "<reason>")` annotations (see
//! [`annotations`]).
//!
//! Rule families (see [`rules::Rule`]):
//!
//! | Rule | Guards | Scope |
//! |------|--------|-------|
//! | `unsafe-audit` | every `unsafe` has a `// SAFETY:`/`# Safety` justification; inventory rendered to `UNSAFE_AUDIT.md` | whole workspace, not waivable |
//! | `determinism` | no `HashMap`/`HashSet`/`Instant`/`SystemTime`/`std::env`/`{:?}`-float formatting | artifact modules |
//! | `hot-path-alloc` | no `Vec::new`/`vec!`/`Box::new`/`.collect()`/`.clone()`/`format!`/… | declared-hot modules |
//! | `panic-surface` | no `unwrap`/`expect`/`panic!` outside tests | validate-then-build modules |
//!
//! The module lists live in [`rules::default_policy`]; the CLI entry
//! point is `bp lint [--json] [--fix-audit]`, gated in CI next to the
//! runtime determinism smokes it complements.

#![warn(missing_docs)]

pub mod annotations;
pub mod audit;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use annotations::{Allow, AllowScope};
pub use audit::{render_audit, unsafe_sites, UnsafeKind, UnsafeSite};
pub use engine::{
    crate_of, find_workspace_root, lint_source, lint_workspace, lint_workspace_with,
    workspace_files, Diagnostic, FileOutcome, LintReport,
};
pub use lexer::{LexedFile, Segment, SegmentKind};
pub use rules::{default_policy, Policy, Rule};
