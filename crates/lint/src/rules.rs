//! Rule identities, the workspace policy (which files each rule
//! guards), banned-pattern matching over the blanked code view, and
//! `#[cfg(test)]` region detection.

use crate::lexer::LexedFile;

/// The rule families `bp lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Every `unsafe` block/fn/impl must carry an immediately preceding
    /// `// SAFETY:` justification (or a `# Safety` doc section for
    /// `unsafe fn` declarations), and the sites are inventoried in
    /// `UNSAFE_AUDIT.md`. Not allowlistable: an annotation would be a
    /// justification-free `unsafe`, which is exactly what the rule
    /// exists to prevent.
    UnsafeAudit,
    /// Modules that feed byte-deterministic artifacts
    /// (`REPORT_*`/`SWEEP_*`/config text) must not use iteration-order
    /// or wall-clock dependent APIs.
    Determinism,
    /// Modules declared hot must not heap-allocate: the static twin of
    /// the counting-allocator test, which only covers configs the test
    /// happens to run.
    HotPathAlloc,
    /// Modules on the `PredictorConfig::validate`-then-`build` path
    /// must not `unwrap`/`expect`/`panic!` outside tests: invalid data
    /// must surface as `Err`, not a process abort.
    PanicSurface,
    /// Hygiene of the lint's own `// bp-lint:` annotations (malformed,
    /// unknown rule, missing reason, unused allow). Not allowlistable.
    LintAnnotation,
}

impl Rule {
    /// The rule's stable name, as used in annotations and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::Determinism => "determinism",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::PanicSurface => "panic-surface",
            Rule::LintAnnotation => "lint-annotation",
        }
    }

    /// Parses an annotation rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unsafe-audit" => Some(Rule::UnsafeAudit),
            "determinism" => Some(Rule::Determinism),
            "hot-path-alloc" => Some(Rule::HotPathAlloc),
            "panic-surface" => Some(Rule::PanicSurface),
            "lint-annotation" => Some(Rule::LintAnnotation),
            _ => None,
        }
    }

    /// Whether `// bp-lint: allow(...)` may suppress this rule.
    /// `unsafe-audit` and `lint-annotation` are contract-bearing and
    /// cannot be waived.
    pub fn allowlistable(self) -> bool {
        matches!(
            self,
            Rule::Determinism | Rule::HotPathAlloc | Rule::PanicSurface
        )
    }
}

/// One banned construct: the needle searched for in the blanked code
/// and the reason it is banned (quoted in the diagnostic).
#[derive(Debug, Clone, Copy)]
pub struct Banned {
    /// Substring to find (identifier-boundary-checked at both ends).
    pub needle: &'static str,
    /// Why the construct violates the contract.
    pub why: &'static str,
}

/// Allocation constructs banned in hot modules. Methods are matched by
/// `.name` with a trailing identifier boundary, so `.collect` catches
/// both `.collect()` and `.collect::<..>()` while `.clone` does not
/// catch `.cloned()`.
pub const HOT_PATH_BANNED: &[Banned] = &[
    Banned {
        needle: "Vec::new",
        why: "heap-allocates",
    },
    Banned {
        needle: "Vec::with_capacity",
        why: "heap-allocates",
    },
    Banned {
        needle: "Vec::from",
        why: "heap-allocates",
    },
    Banned {
        needle: "vec!",
        why: "heap-allocates",
    },
    Banned {
        needle: "Box::new",
        why: "heap-allocates",
    },
    Banned {
        needle: "String::new",
        why: "heap-allocates",
    },
    Banned {
        needle: "String::with_capacity",
        why: "heap-allocates",
    },
    Banned {
        needle: "String::from",
        why: "heap-allocates",
    },
    Banned {
        needle: ".to_vec",
        why: "clones into a fresh Vec",
    },
    Banned {
        needle: ".to_owned",
        why: "clones into an owned allocation",
    },
    Banned {
        needle: ".to_string",
        why: "formats into a fresh String",
    },
    Banned {
        needle: ".collect",
        why: "materializes an allocation",
    },
    Banned {
        needle: ".clone",
        why: "may deep-copy heap storage",
    },
    Banned {
        needle: "format!",
        why: "formats into a fresh String",
    },
];

/// Iteration-order- and wall-clock-dependent APIs banned in modules
/// that feed byte-deterministic artifacts.
pub const DETERMINISM_BANNED: &[Banned] = &[
    Banned {
        needle: "HashMap",
        why: "iteration order is randomized per process; use BTreeMap or a sorted Vec",
    },
    Banned {
        needle: "HashSet",
        why: "iteration order is randomized per process; use BTreeSet or a sorted Vec",
    },
    Banned {
        needle: "Instant",
        why: "wall-clock reads make artifact bytes run-dependent",
    },
    Banned {
        needle: "SystemTime",
        why: "wall-clock reads make artifact bytes run-dependent",
    },
    Banned {
        needle: "std::env",
        why: "environment reads make artifact bytes host-dependent",
    },
    Banned {
        needle: "env::var",
        why: "environment reads make artifact bytes host-dependent",
    },
    Banned {
        needle: "env::vars",
        why: "environment reads make artifact bytes host-dependent",
    },
    Banned {
        needle: "temp_dir",
        why: "host-dependent path reaches the artifact modules",
    },
];

/// Abort constructs banned on validate-then-build paths.
pub const PANIC_BANNED: &[Banned] = &[
    Banned {
        needle: ".unwrap",
        why: "aborts on Err/None; surface the error instead",
    },
    Banned {
        needle: ".expect",
        why: "aborts on Err/None; surface the error instead",
    },
    Banned {
        needle: "panic!",
        why: "aborts the process; surface the error instead",
    },
];

/// Which files each scoped rule guards. Paths are workspace-relative
/// with forward slashes. [`Rule::UnsafeAudit`] is unconditional and
/// has no list here.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Files under the zero-steady-state-allocation contract
    /// (ARCHITECTURE.md "Hot-path invariants"): the static complement
    /// of `tests/hotpath_allocations.rs`.
    pub hot_modules: &'static [&'static str],
    /// Files that compute the byte-deterministic `REPORT_*`/`SWEEP_*`
    /// artifacts, the config text format, or the committed `BENCH_*`
    /// JSON.
    pub deterministic_modules: &'static [&'static str],
    /// Files on the `PredictorConfig::validate`-then-`build` path.
    pub panic_free_modules: &'static [&'static str],
}

/// The workspace contract: the module lists the four rule families
/// guard. Kept in one place so README/ARCHITECTURE can point at it.
pub fn default_policy() -> Policy {
    Policy {
        hot_modules: &[
            "crates/tage/src/tage.rs",
            "crates/tage/src/composed.rs",
            "crates/gehl/src/gehl.rs",
            "crates/perceptron/src/lib.rs",
            "crates/components/src/sum.rs",
            "crates/components/src/kernel.rs",
            "crates/components/src/pipeline.rs",
            "crates/components/src/predictor.rs",
            "crates/history/src/state.rs",
            "crates/sim/src/run.rs",
            "crates/workloads/src/combinators.rs",
        ],
        deterministic_modules: &[
            "crates/cache/src/lib.rs",
            "crates/components/src/pipeline.rs",
            "crates/sim/src/cache.rs",
            "crates/sim/src/report.rs",
            "crates/sim/src/scenario.rs",
            "crates/sim/src/sweep.rs",
            "crates/components/src/config.rs",
            "crates/bench/src/sim_bench.rs",
            "crates/bench/src/trace_bench.rs",
        ],
        panic_free_modules: &[
            "crates/cache/src/lib.rs",
            "crates/sim/src/cache.rs",
            "crates/components/src/config.rs",
            "crates/sim/src/registry.rs",
            "crates/sim/src/sweep.rs",
            "crates/tage/src/tage.rs",
            "crates/tage/src/sc.rs",
            "crates/tage/src/composed.rs",
            "crates/gehl/src/gehl.rs",
            "crates/perceptron/src/lib.rs",
            "crates/core/src/config.rs",
            "crates/wormhole/src/wrapper.rs",
            "src/bin/bp.rs",
        ],
    }
}

impl Policy {
    fn hits(list: &[&str], rel_path: &str) -> bool {
        list.contains(&rel_path)
    }

    /// Does the hot-path-alloc rule apply to this file?
    pub fn is_hot(&self, rel_path: &str) -> bool {
        Self::hits(self.hot_modules, rel_path)
    }

    /// Does the determinism rule apply to this file?
    pub fn is_deterministic(&self, rel_path: &str) -> bool {
        Self::hits(self.deterministic_modules, rel_path)
    }

    /// Does the panic-surface rule apply to this file?
    pub fn is_panic_free(&self, rel_path: &str) -> bool {
        Self::hits(self.panic_free_modules, rel_path)
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds every occurrence of `needle` in `code` that is a whole token:
/// if the needle starts (ends) with an identifier character, the byte
/// before (after) the match must not be one. Returns byte offsets.
pub fn find_banned(code: &str, needle: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let nb = needle.as_bytes();
    let check_front = is_ident_byte(nb[0]);
    let check_back = is_ident_byte(nb[nb.len() - 1]);
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let front_ok = !check_front || at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + nb.len();
        let back_ok = !check_back || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if front_ok && back_ok {
            hits.push(at);
        }
        from = at + 1;
    }
    hits
}

/// A half-open byte range of the blanked code that belongs to
/// test-only compilation (`#[cfg(test)]` / `#[test]` items). Scoped
/// rules skip violations inside these ranges; `unsafe-audit` does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRegion {
    /// First byte of the `#[...]` attribute.
    pub start: usize,
    /// One past the end of the attributed item.
    pub end: usize,
}

impl TestRegion {
    /// Is `offset` inside the region?
    pub fn contains(&self, offset: usize) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// Detects test-only regions in the blanked code: an outer attribute
/// containing the word `test` (and not only inside `not(test)`)
/// followed by an item, which extends to the item's closing `}` or
/// terminating `;`.
pub fn test_regions(lexed: &LexedFile) -> Vec<TestRegion> {
    let code = lexed.code.as_bytes();
    let mut regions: Vec<TestRegion> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i] != b'#' {
            i += 1;
            continue;
        }
        if regions.last().is_some_and(|r| r.contains(i)) {
            i += 1;
            continue;
        }
        // `#!` inner attributes configure the enclosing item, not the
        // next one; a file-level `#![cfg(test)]` does not occur in this
        // workspace and is out of scope.
        let Some((attr_end, attr_text)) = attribute_span(&lexed.code, i) else {
            i += 1;
            continue;
        };
        if !attr_marks_test(attr_text) {
            i = attr_end;
            continue;
        }
        // Skip whitespace and any further attributes to the item, then
        // run to the item's end.
        let mut j = attr_end;
        loop {
            while j < code.len() && code[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < code.len() && code[j] == b'#' {
                match attribute_span(&lexed.code, j) {
                    Some((end, _)) => j = end,
                    None => break,
                }
            } else {
                break;
            }
        }
        let end = item_end(code, j);
        regions.push(TestRegion { start: i, end });
        i = attr_end;
    }
    regions
}

/// If a `#[...]` outer attribute starts at `i`, returns (end offset,
/// bracketed text). `#![...]` inner attributes return `None`.
fn attribute_span(code: &str, i: usize) -> Option<(usize, &str)> {
    let bytes = code.as_bytes();
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'!') {
        return None;
    }
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if bytes.get(j) != Some(&b'[') {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, &code[open + 1..j]));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Does the attribute text mark test-only compilation? True for any
/// whole-word `test` occurrence that is not itself inside `not(test`.
fn attr_marks_test(attr: &str) -> bool {
    for at in find_banned(attr, "test") {
        let prefix = &attr[..at];
        let negated = prefix.trim_end().ends_with("not(");
        if !negated {
            return true;
        }
    }
    false
}

/// End of the item starting at (or after) `from`: one past the `}`
/// closing its first top-level brace block, or one past the first `;`
/// while no brace/bracket/paren is open. Used for test-region extents.
fn item_end(code: &[u8], from: usize) -> usize {
    let mut brace = 0isize;
    let mut round = 0isize;
    let mut square = 0isize;
    let mut i = from;
    while i < code.len() {
        match code[i] {
            b'{' => brace += 1,
            b'}' => {
                brace -= 1;
                if brace == 0 {
                    return i + 1;
                }
            }
            b'(' => round += 1,
            b')' => round -= 1,
            b'[' => square += 1,
            b']' => square -= 1,
            b';' if brace == 0 && round == 0 && square == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Finds the byte offset one past the `}` that closes the first `{`
/// found at or after `from`; `None` if no block opens. Used for
/// `allow-item` annotation scopes.
pub fn following_block_end(code: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let open = bytes[from..].iter().position(|&b| b == b'{')? + from;
    let mut depth = 0isize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    Some(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_checked_matching() {
        assert_eq!(find_banned("Vec::new()", "Vec::new"), vec![0]);
        assert!(find_banned("MyVec::newer()", "Vec::new").is_empty());
        assert_eq!(find_banned("x.unwrap()", ".unwrap"), vec![1]);
        assert!(find_banned("x.unwrap_or(0)", ".unwrap").is_empty());
        assert_eq!(find_banned("it.collect::<Vec<_>>()", ".collect"), vec![2]);
        assert!(find_banned("it.cloned()", ".clone").is_empty());
        assert_eq!(find_banned("a\nformat!(\"x\")", "format!"), vec![2]);
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}";
        let lexed = LexedFile::lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find(".unwrap").unwrap();
        assert!(regions[0].contains(unwrap_at));
        assert!(!regions[0].contains(src.find("fn c").unwrap()));
    }

    #[test]
    fn test_fn_with_extra_attributes() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn ok() {}";
        let lexed = LexedFile::lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        assert!(regions[0].contains(src.find("panic!").unwrap()));
        assert!(!regions[0].contains(src.find("fn ok").unwrap()));
    }

    #[test]
    fn not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let lexed = LexedFile::lex(src);
        assert!(test_regions(&lexed).is_empty());
    }

    #[test]
    fn cfg_all_test_is_a_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\nfn live() {}";
        let lexed = LexedFile::lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        assert!(!regions[0].contains(src.find("fn live").unwrap()));
    }

    #[test]
    fn semicolon_item_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}";
        let lexed = LexedFile::lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        assert!(!regions[0].contains(src.find("fn live").unwrap()));
    }

    #[test]
    fn array_semicolon_does_not_end_item() {
        let src = "#[cfg(test)]\nfn t() -> [u8; 3] { [0u8; 3] }\nfn live() {}";
        let lexed = LexedFile::lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        assert!(regions[0].contains(src.find("[0u8").unwrap()));
        assert!(!regions[0].contains(src.find("fn live").unwrap()));
    }
}
