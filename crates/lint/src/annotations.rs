//! `// bp-lint:` allow-annotation parsing and scope resolution.
//!
//! Three forms, all requiring a written reason:
//!
//! * `// bp-lint: allow(<rule>, "<reason>")` — suppresses `<rule>` on
//!   the annotation's own line (trailing form) and the next line;
//! * `// bp-lint: allow-item(<rule>, "<reason>")` — suppresses
//!   `<rule>` from the annotation through the end of the next
//!   brace-balanced block (annotate a `fn`/`impl` once instead of
//!   every line of its body);
//! * `// bp-lint: allow-file(<rule>, "<reason>")` — suppresses
//!   `<rule>` for the whole file.
//!
//! Hygiene is itself linted: malformed annotations, unknown rules,
//! missing reasons, annotations for rules that cannot be waived
//! (`unsafe-audit`, `lint-annotation`), and allows that suppress
//! nothing all raise `lint-annotation` diagnostics, so the allowlist
//! cannot silently rot.

use crate::lexer::LexedFile;
use crate::rules::{following_block_end, Rule};

/// The three annotation scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// The annotation line and the line after it.
    Line,
    /// Through the end of the next brace-balanced block.
    Item,
    /// The entire file.
    File,
}

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being waived.
    pub rule: Rule,
    /// The mandatory human rationale.
    pub reason: String,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Inclusive 1-based line range the waiver covers.
    pub first_line: u32,
    /// Inclusive end of the covered range.
    pub last_line: u32,
    /// Set when the waiver suppressed at least one violation.
    pub used: bool,
}

/// A malformed/unwaivable annotation, reported as `lint-annotation`.
#[derive(Debug, Clone)]
pub struct AnnotationError {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Scans every comment for `bp-lint:` markers and parses them.
pub fn collect_allows(lexed: &LexedFile) -> (Vec<Allow>, Vec<AnnotationError>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for seg in lexed.comments() {
        let text = lexed.segment_text(seg);
        // Directives live in plain comments only and must lead the
        // comment: doc comments (and prose that merely *mentions* the
        // syntax, like this crate's own rustdoc) are not directives.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let body = text
            .trim_start_matches("//")
            .trim_start_matches("/*")
            .trim_start();
        let Some(rest) = body.strip_prefix("bp-lint:") else {
            continue;
        };
        let line = lexed.line_of(seg.start);
        let rest = rest.trim();
        match parse_allow(rest) {
            Ok((scope, rule, reason)) => {
                if !rule.allowlistable() {
                    errors.push(AnnotationError {
                        line,
                        message: format!(
                            "rule `{}` cannot be allowlisted; it is contract-bearing",
                            rule.name()
                        ),
                    });
                    continue;
                }
                let (first_line, last_line) = match scope {
                    AllowScope::Line => (line, line + 1),
                    AllowScope::Item => {
                        let end =
                            following_block_end(&lexed.code, seg.end).unwrap_or(lexed.code.len());
                        (line, lexed.line_of(end.saturating_sub(1).max(seg.end)))
                    }
                    AllowScope::File => (1, lexed.line_count()),
                };
                allows.push(Allow {
                    rule,
                    reason,
                    line,
                    first_line,
                    last_line,
                    used: false,
                });
            }
            Err(message) => errors.push(AnnotationError { line, message }),
        }
    }
    (allows, errors)
}

/// Parses `allow(<rule>, "<reason>")` (or the `-item`/`-file` forms)
/// from the text after the `bp-lint:` marker.
fn parse_allow(rest: &str) -> Result<(AllowScope, Rule, String), String> {
    let (scope, tail) = if let Some(t) = rest.strip_prefix("allow-item") {
        (AllowScope::Item, t)
    } else if let Some(t) = rest.strip_prefix("allow-file") {
        (AllowScope::File, t)
    } else if let Some(t) = rest.strip_prefix("allow") {
        (AllowScope::Line, t)
    } else {
        return Err(format!(
            "unknown bp-lint directive `{}`; expected allow/allow-item/allow-file",
            rest.split_whitespace().next().unwrap_or("")
        ));
    };
    let tail = tail.trim_start();
    let tail = tail
        .strip_prefix('(')
        .ok_or("expected `(` after allow directive".to_owned())?;
    let comma = tail
        .find(',')
        .ok_or("expected `allow(<rule>, \"<reason>\")`".to_owned())?;
    let rule_name = tail[..comma].trim();
    let rule = Rule::from_name(rule_name).ok_or_else(|| format!("unknown rule `{rule_name}`"))?;
    let after = tail[comma + 1..].trim_start();
    let body = after
        .strip_prefix('"')
        .ok_or("reason must be a quoted string".to_owned())?;
    let close = body
        .find('"')
        .ok_or("unterminated reason string".to_owned())?;
    let reason = body[..close].trim().to_owned();
    if reason.is_empty() {
        return Err("reason must not be empty: write down why the waiver is sound".to_owned());
    }
    let after_close = body[close + 1..].trim_start();
    if !after_close.starts_with(')') {
        return Err("expected `)` after the reason".to_owned());
    }
    Ok((scope, rule, reason))
}

/// Marks a matching in-scope allow used and reports whether the
/// violation at (`rule`, `line`) is suppressed.
pub fn suppressed(allows: &mut [Allow], rule: Rule, line: u32) -> bool {
    let mut hit = false;
    for allow in allows.iter_mut() {
        if allow.rule == rule && allow.first_line <= line && line <= allow.last_line {
            allow.used = true;
            hit = true;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allows_of(src: &str) -> (Vec<Allow>, Vec<AnnotationError>) {
        collect_allows(&LexedFile::lex(src))
    }

    #[test]
    fn line_allow_covers_self_and_next_line() {
        let src = "// bp-lint: allow(hot-path-alloc, \"cold constructor\")\nlet v = Vec::new();\nlet w = Vec::new();";
        let (allows, errors) = allows_of(src);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!((allows[0].first_line, allows[0].last_line), (1, 2));
        assert_eq!(allows[0].reason, "cold constructor");
    }

    #[test]
    fn item_allow_covers_following_block() {
        let src = "// bp-lint: allow-item(hot-path-alloc, \"ctor\")\nfn new() -> Self {\n  let v = Vec::new();\n  v\n}\nfn hot() {}";
        let (allows, errors) = allows_of(src);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!((allows[0].first_line, allows[0].last_line), (1, 5));
    }

    #[test]
    fn file_allow_covers_everything() {
        let src = "//! docs\n// bp-lint: allow-file(determinism, \"timing is the measurand\")\nfn f() {}\n";
        let (allows, _) = allows_of(src);
        assert_eq!(allows[0].first_line, 1);
        assert!(allows[0].last_line >= 3);
    }

    #[test]
    fn malformed_and_unwaivable_annotations_error() {
        let cases = [
            "// bp-lint: allow(hot-path-alloc)",
            "// bp-lint: allow(no-such-rule, \"x\")",
            "// bp-lint: allow(hot-path-alloc, \"\")",
            "// bp-lint: allow(unsafe-audit, \"nope\")",
            "// bp-lint: disallow(x, \"y\")",
            "// bp-lint: allow(hot-path-alloc, \"x\" extra",
        ];
        for src in cases {
            let (allows, errors) = allows_of(src);
            assert!(allows.is_empty(), "{src}");
            assert_eq!(errors.len(), 1, "{src}");
        }
    }

    #[test]
    fn suppression_marks_used() {
        let src = "// bp-lint: allow(panic-surface, \"infallible\")\nx.unwrap();";
        let (mut allows, _) = allows_of(src);
        assert!(suppressed(&mut allows, Rule::PanicSurface, 2));
        assert!(allows[0].used);
        assert!(!suppressed(&mut allows, Rule::PanicSurface, 3));
        assert!(!suppressed(&mut allows, Rule::Determinism, 2));
    }
}
