//! A minimal Rust lexer: just enough token classification to separate
//! *code* from *non-code* (comments, string/char literals) without
//! parsing.
//!
//! The whole lint engine rests on one guarantee: **a lint can never
//! fire inside a comment or a literal**. The lexer delivers it by
//! producing a *blanked* view of the source — a byte-for-byte copy in
//! which every byte of every comment, string, raw string, byte string,
//! and char literal is replaced by a space (newlines are preserved so
//! line numbers survive). Rules then scan the blanked view with plain
//! substring searches; anything the lexer blanked is invisible to them
//! by construction. The classification itself is property-tested in
//! `tests/lexer_properties.rs` over adversarial comment/raw-string/
//! char-literal content.
//!
//! Handled syntax:
//!
//! * line comments `//`, doc comments `///` and `//!`;
//! * block comments `/* .. */` **with nesting**, incl. `/** .. */`;
//! * string literals with escapes (`"a\"b"`), byte strings `b"..."`,
//!   C strings `c"..."`;
//! * raw strings `r"..."`, `r#"..."#` (any number of `#`s), and the
//!   `br`/`cr` prefixed forms;
//! * char literals `'a'`, `'\n'`, `'\u{1F600}'`, byte chars `b'x'`,
//!   disambiguated from lifetimes (`'a`, `'static`) and loop labels;
//! * raw identifiers `r#type` (kept as code, not mistaken for a raw
//!   string opener).

/// Classification of one contiguous region of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A `//`-to-end-of-line comment (incl. `///` and `//!` doc forms).
    LineComment,
    /// A (possibly nested) `/* .. */` comment.
    BlockComment,
    /// A `"…"`, `b"…"`, or `c"…"` literal with escape processing.
    Str,
    /// A raw `r"…"`/`r#"…"#`/`br#"…"#`/`cr#"…"#` literal.
    RawStr,
    /// A `'…'` or `b'…'` char literal.
    Char,
}

/// One non-code region: its classification and byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// What the region is.
    pub kind: SegmentKind,
    /// Byte offset of the region's first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the region's last byte (exclusive).
    pub end: usize,
}

/// A lexed source file: the original text, the blanked code view, and
/// the list of non-code segments.
#[derive(Debug)]
pub struct LexedFile {
    /// The original source text.
    pub src: String,
    /// The blanked view: same length as `src`, identical outside
    /// non-code segments; inside them every byte is a space except
    /// newlines, which are preserved.
    pub code: String,
    /// Every non-code region, in source order, non-overlapping.
    pub segments: Vec<Segment>,
    /// Byte offset of the start of each line (line 1 first).
    line_starts: Vec<usize>,
}

impl LexedFile {
    /// Lexes `src`. Never fails: unterminated literals or comments
    /// extend to end of input (the compiler rejects such files anyway;
    /// the lexer only has to stay sound and total).
    pub fn lex(src: &str) -> LexedFile {
        let bytes = src.as_bytes();
        let len = bytes.len();
        let mut segments: Vec<Segment> = Vec::new();
        let mut i = 0usize;
        while i < len {
            let b = bytes[i];
            match b {
                b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                    let end = line_comment_end(bytes, i);
                    segments.push(Segment {
                        kind: SegmentKind::LineComment,
                        start: i,
                        end,
                    });
                    i = end;
                }
                b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                    let end = block_comment_end(bytes, i);
                    segments.push(Segment {
                        kind: SegmentKind::BlockComment,
                        start: i,
                        end,
                    });
                    i = end;
                }
                b'"' => {
                    let end = quoted_end(bytes, i + 1, b'"');
                    segments.push(Segment {
                        kind: SegmentKind::Str,
                        start: i,
                        end,
                    });
                    i = end;
                }
                b'r' | b'b' | b'c' if !prev_is_ident(bytes, i) => {
                    if let Some((kind, end)) = literal_prefix(bytes, i) {
                        segments.push(Segment {
                            kind,
                            start: i,
                            end,
                        });
                        i = end;
                    } else {
                        i += 1; // plain identifier start
                    }
                }
                b'\'' => {
                    if let Some(end) = char_literal_end(src, bytes, i) {
                        segments.push(Segment {
                            kind: SegmentKind::Char,
                            start: i,
                            end,
                        });
                        i = end;
                    } else {
                        // Lifetime or loop label: skip the quote and
                        // the identifier after it as code.
                        i += 1;
                        while i < len && is_ident_byte(bytes[i]) {
                            i += 1;
                        }
                    }
                }
                _ => i += 1,
            }
        }

        let mut code = src.as_bytes().to_vec();
        for seg in &segments {
            for byte in &mut code[seg.start..seg.end] {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        }
        // Blanking replaces whole bytes with ASCII spaces, so the
        // buffer stays valid UTF-8 (multi-byte sequences are only ever
        // replaced in full: segments cover complete chars).
        let code = String::from_utf8(code).expect("blanking preserves UTF-8");

        let mut line_starts = vec![0usize];
        for (pos, &byte) in src.as_bytes().iter().enumerate() {
            if byte == b'\n' {
                line_starts.push(pos + 1);
            }
        }

        LexedFile {
            src: src.to_owned(),
            code,
            segments,
            line_starts,
        }
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx as u32 + 1,
            Err(idx) => idx as u32,
        }
    }

    /// Total number of lines (at least 1, even for an empty file).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// Byte span `[start, end)` of 1-based line `line`, including its
    /// trailing newline.
    pub fn line_span(&self, line: u32) -> (usize, usize) {
        let idx = (line as usize)
            .saturating_sub(1)
            .min(self.line_starts.len() - 1);
        let start = self.line_starts[idx];
        let end = self
            .line_starts
            .get(idx + 1)
            .copied()
            .unwrap_or(self.src.len());
        (start, end)
    }

    /// The source text of a segment.
    pub fn segment_text(&self, seg: &Segment) -> &str {
        &self.src[seg.start..seg.end]
    }

    /// The comments of the file, in source order.
    pub fn comments(&self) -> impl Iterator<Item = &Segment> {
        self.segments
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::LineComment | SegmentKind::BlockComment))
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(bytes[i - 1])
}

fn line_comment_end(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

/// End of a (nested) block comment opened at `start`; end of input if
/// unterminated.
fn block_comment_end(bytes: &[u8], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        if i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// End of a `quote`-delimited literal whose body starts at `from`,
/// honoring backslash escapes; end of input if unterminated.
fn quoted_end(bytes: &[u8], from: usize, quote: u8) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i = (i + 2).min(bytes.len()),
            b if b == quote => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// End of a raw literal: at `from` sit zero or more `#`s then `"`; the
/// literal closes at `"` followed by the same number of `#`s.
fn raw_literal_end(bytes: &[u8], from: usize) -> Option<usize> {
    let mut hashes = 0usize;
    let mut i = from;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None; // r#ident (raw identifier) or bare `r`
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].len() >= hashes
            && bytes[i + 1..i + 1 + hashes].iter().all(|&b| b == b'#')
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(bytes.len()) // unterminated: swallow the rest
}

/// Recognizes `r"…"`, `b"…"`, `c"…"`, `br"…"`, `cr"…"` (each with
/// optional `#`s for the raw forms) and `b'…'` starting at `i`, where
/// `bytes[i]` is `r`, `b`, or `c`. Returns `(kind, end)` or `None` if
/// this is an ordinary identifier.
fn literal_prefix(bytes: &[u8], i: usize) -> Option<(SegmentKind, usize)> {
    let b0 = bytes[i];
    let b1 = bytes.get(i + 1).copied();
    match (b0, b1) {
        (b'r', Some(b'"')) | (b'r', Some(b'#')) => {
            raw_literal_end(bytes, i + 1).map(|end| (SegmentKind::RawStr, end))
        }
        (b'b' | b'c', Some(b'"')) => Some((SegmentKind::Str, quoted_end(bytes, i + 2, b'"'))),
        (b'b', Some(b'\'')) => {
            // Byte char literal b'x' / b'\n'.
            Some((SegmentKind::Char, quoted_end(bytes, i + 2, b'\'')))
        }
        (b'b' | b'c', Some(b'r')) => match bytes.get(i + 2).copied() {
            Some(b'"') | Some(b'#') => {
                raw_literal_end(bytes, i + 2).map(|end| (SegmentKind::RawStr, end))
            }
            _ => None,
        },
        _ => None,
    }
}

/// If the `'` at `i` opens a char literal, returns its end; `None`
/// means lifetime/label. A char literal is `'` + (escape | one char)
/// + `'`; anything else after the quote is a lifetime.
fn char_literal_end(src: &str, bytes: &[u8], i: usize) -> Option<usize> {
    let next = bytes.get(i + 1).copied()?;
    if next == b'\\' {
        return Some(quoted_end(bytes, i + 1, b'\''));
    }
    if next == b'\'' {
        return None; // `''` is not valid; treat as stray quotes (code)
    }
    // Width of the single char after the quote (may be multi-byte).
    let ch = src[i + 1..].chars().next()?;
    let after = i + 1 + ch.len_utf8();
    if bytes.get(after).copied() == Some(b'\'') {
        Some(after + 1)
    } else {
        None // `'a>` / `'static` — a lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(src: &str) -> String {
        LexedFile::lex(src).code
    }

    #[test]
    fn line_and_block_comments_are_blanked() {
        let src = "let a = 1; // Vec::new\nlet b = /* unwrap() */ 2;";
        let code = blank(src);
        assert!(code.contains("let a = 1;"));
        assert!(code.contains("let b ="));
        assert!(!code.contains("Vec::new"));
        assert!(!code.contains("unwrap"));
        assert_eq!(code.len(), src.len());
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let code = blank(src);
        assert!(code.starts_with('a'));
        assert!(code.ends_with('b'));
        assert!(!code.contains("inner"));
        assert!(!code.contains("still"));
    }

    #[test]
    fn strings_and_escapes_are_blanked() {
        let src = r#"let s = "a\"b // not a comment"; after();"#;
        let code = blank(src);
        assert!(code.contains("after()"));
        assert!(!code.contains("not a comment"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and unwrap()"#; tail();"###;
        let code = blank(src);
        assert!(code.contains("tail()"));
        assert!(!code.contains("unwrap"));
    }

    #[test]
    fn raw_identifier_is_code() {
        let src = "let r#type = 1; use_it(r#type);";
        let code = blank(src);
        assert_eq!(code, src);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; if c == '\"' {} }";
        let lexed = LexedFile::lex(src);
        assert!(lexed.code.contains("fn f<'a>(x: &'a str)"));
        let chars: Vec<_> = lexed
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Char)
            .collect();
        assert_eq!(chars.len(), 3, "{:?}", lexed.segments);
    }

    #[test]
    fn byte_and_c_literals() {
        let src = "let a = b'x'; let s = b\"bytes\"; let c = c\"cstr\"; let r = br#\"raw\"#;";
        let code = blank(src);
        assert!(!code.contains("bytes"));
        assert!(!code.contains("cstr"));
        assert!(!code.contains("raw"));
        assert!(code.contains("let a ="));
    }

    #[test]
    fn multibyte_char_literal_and_comment() {
        let src = "let c = 'é'; // caffé ☕\nnext();";
        let code = blank(src);
        assert!(code.contains("next()"));
        assert!(!code.contains("caffé"));
        assert_eq!(code.len(), src.len());
    }

    #[test]
    fn line_numbers() {
        let lexed = LexedFile::lex("a\nb\nc");
        assert_eq!(lexed.line_of(0), 1);
        assert_eq!(lexed.line_of(2), 2);
        assert_eq!(lexed.line_of(4), 3);
        assert_eq!(lexed.line_count(), 3);
    }

    #[test]
    fn unterminated_forms_extend_to_eof() {
        for src in ["// open", "/* open", "\"open", "r#\"open", "'\\", "b\"open"] {
            let lexed = LexedFile::lex(src);
            assert_eq!(lexed.code.len(), src.len(), "{src:?}");
        }
    }
}
