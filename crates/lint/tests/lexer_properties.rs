//! Property tests for the lint lexer: the blanked-code invariant that
//! makes every rule sound (nothing inside a comment, string, raw
//! string, or char literal ever surfaces in the code view), plus
//! totality and determinism on adversarial input.

use bp_lint::{LexedFile, SegmentKind};
use proptest::prelude::*;

/// Code fillers with no banned substrings of their own.
const CODE: &[&str] = &[
    "fn f() { let x = 1; }",
    "mod m {}",
    "let y = x + 1;",
    "struct S;",
    "impl S { fn g(&self) -> u8 { 0 } }",
];

/// Banned-token text that must never leak out of a non-code segment.
const HIDDEN: &[&str] = &[
    "Vec::new()",
    ".unwrap()",
    "HashMap",
    "unsafe",
    ".collect()",
    "Instant::now()",
];

/// Wraps `hidden` in the non-code construct selected by `wrap`.
fn piece(wrap: u64, hidden: &str, code: &str) -> String {
    match wrap {
        0 => code.to_owned(),
        1 => format!("// {hidden}\n"),
        2 => format!("/* {hidden} */"),
        3 => format!("/* outer /* {hidden} */ inner */"),
        4 => format!("let s = \"{hidden}\";"),
        5 => format!("let r = r#\"{hidden}\"#;"),
        6 => format!("let r = r##\"quote \"# then {hidden}\"##;"),
        _ => format!("let c = 'V'; // {hidden}\n"),
    }
}

fn assert_lex_invariants(lexed: &LexedFile) {
    assert_eq!(lexed.code.len(), lexed.src.len(), "blanking changed length");
    for (i, (s, c)) in lexed.src.bytes().zip(lexed.code.bytes()).enumerate() {
        assert_eq!(
            s == b'\n',
            c == b'\n',
            "newline mismatch at byte {i}: src {s:#x} vs code {c:#x}"
        );
    }
    let mut prev_end = 0usize;
    for seg in &lexed.segments {
        assert!(seg.start >= prev_end, "segments overlap or are unsorted");
        assert!(seg.end <= lexed.src.len(), "segment out of bounds");
        assert!(seg.start < seg.end, "empty segment");
        prev_end = seg.end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Banned tokens buried in comments (line, block, nested), strings,
    /// and raw strings never surface in the blanked code view, and
    /// blanking preserves byte length and every newline position.
    #[test]
    fn hidden_tokens_never_surface(
        picks in proptest::collection::vec((0u64..8, 0u64..6, 0u64..5), 0..24),
    ) {
        let src: String = picks
            .iter()
            .map(|&(wrap, h, c)| piece(wrap, HIDDEN[h as usize], CODE[c as usize]))
            .collect::<Vec<_>>()
            .join("\n");
        let lexed = LexedFile::lex(&src);
        assert_lex_invariants(&lexed);
        for needle in HIDDEN {
            prop_assert!(
                !lexed.code.contains(needle),
                "{needle} leaked into the code view of {src:?}"
            );
        }
    }

    /// The lexer is total and deterministic on arbitrary byte salad
    /// built from its trickiest characters (quote kinds, slashes,
    /// stars, hashes, raw prefixes, newlines, escapes).
    #[test]
    fn lexer_is_total_and_deterministic_on_noise(
        noise in "[abr#\"'/\\*{}()= \n0-9]{0,80}",
    ) {
        let a = LexedFile::lex(&noise);
        assert_lex_invariants(&a);
        let b = LexedFile::lex(&noise);
        prop_assert_eq!(format!("{:?}", a.segments), format!("{:?}", b.segments));
        prop_assert_eq!(&a.code, &b.code);
    }

    /// Lifetimes are never mistaken for char literals; real char
    /// literals (including escaped and multibyte) always are.
    #[test]
    fn char_literals_vs_lifetimes(name in "[a-z]{1,6}") {
        let lifetimes = format!("fn f<'{name}>(x: &'{name} u8) -> &'{name} u8 {{ x }}");
        let lexed = LexedFile::lex(&lifetimes);
        prop_assert!(
            lexed.segments.iter().all(|s| s.kind != SegmentKind::Char),
            "lifetime parsed as char literal in {lifetimes:?}"
        );

        for lit in ["'V'", "'\\n'", "'\\u{1F600}'", "'\u{00e9}'"] {
            let src = format!("let {name} = {lit};");
            let lexed = LexedFile::lex(&src);
            let chars: Vec<_> = lexed
                .segments
                .iter()
                .filter(|s| s.kind == SegmentKind::Char)
                .collect();
            prop_assert_eq!(chars.len(), 1, "{}", &src);
        }
    }

    /// Raw strings with any hash depth are one segment covering the
    /// whole literal, and their content (including embedded quotes and
    /// shallower hash runs) is fully blanked.
    #[test]
    fn raw_strings_blank_at_every_hash_depth(
        hashes in 0u64..4,
        filler in "[a-z ]{0,20}",
    ) {
        let fence = "#".repeat(hashes as usize);
        // Embed a quote+shallower fence so the closer is ambiguous to
        // a naive scanner.
        let inner = if hashes > 0 {
            format!("{filler}\"{}unsafe {filler}", "#".repeat(hashes as usize - 1))
        } else {
            format!("{filler}unsafe{filler}")
        };
        let src = format!("let r = r{fence}\"{inner}\"{fence}; fn g() {{}}");
        let lexed = LexedFile::lex(&src);
        assert_lex_invariants(&lexed);
        let raws: Vec<_> = lexed
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::RawStr)
            .collect();
        prop_assert_eq!(raws.len(), 1, "{}", &src);
        prop_assert!(!lexed.code.contains("unsafe"), "{}", &src);
        prop_assert!(lexed.code.contains("fn g()"), "{}", &src);
    }
}
