//! Fixture-snippet tests: one firing and one clean case per rule
//! family, driven through [`bp_lint::lint_source`] with virtual paths
//! that land in (or miss) the default policy's module lists.

use bp_lint::{default_policy, lint_source, Rule};

const HOT_PATH: &str = "crates/tage/src/tage.rs";
const DET_PATH: &str = "crates/sim/src/report.rs";
const PANIC_PATH: &str = "crates/components/src/config.rs";
const NEUTRAL_PATH: &str = "crates/trace/src/lib.rs";

fn rules_fired(path: &str, src: &str) -> Vec<(Rule, u32)> {
    let policy = default_policy();
    lint_source(path, src, &policy)
        .diagnostics
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn hot_path_alloc_fires_in_hot_module() {
    let src = "fn f() -> Vec<u8> {\n    let v = Vec::new();\n    v\n}\n";
    assert_eq!(rules_fired(HOT_PATH, src), vec![(Rule::HotPathAlloc, 2)]);
}

#[test]
fn hot_path_alloc_silent_outside_hot_modules_and_on_clean_code() {
    let src = "fn f() -> Vec<u8> {\n    let v = Vec::new();\n    v\n}\n";
    assert!(rules_fired(NEUTRAL_PATH, src).is_empty());
    let clean = "fn f(xs: &[u8]) -> u8 {\n    xs[0]\n}\n";
    assert!(rules_fired(HOT_PATH, clean).is_empty());
}

#[test]
fn hot_path_alloc_catches_macro_and_method_forms() {
    for snippet in [
        "fn f() { let v = vec![1, 2]; }",
        "fn f(s: &str) -> String { s.to_owned() }",
        "fn f(xs: &[u8]) -> Vec<u8> { xs.to_vec() }",
        "fn f(xs: &[u8]) -> Vec<u8> { xs.iter().copied().collect() }",
        "fn f(s: &String) -> String { s.clone() }",
        "fn f(n: u8) -> String { format!(\"{n}\") }",
    ] {
        let fired = rules_fired(HOT_PATH, snippet);
        assert_eq!(fired.len(), 1, "{snippet}: {fired:?}");
        assert_eq!(fired[0].0, Rule::HotPathAlloc, "{snippet}");
    }
}

#[test]
fn hot_path_alloc_respects_identifier_boundaries() {
    // `.cloned()` and `.unwrap_or` style lookalikes must not match.
    let src = "fn f(xs: &[u8]) -> u8 { xs.iter().cloned().next().unwrap_or(0) }";
    assert!(rules_fired(HOT_PATH, src).is_empty());
}

#[test]
fn determinism_fires_on_hash_collections_and_clocks() {
    for (snippet, line) in [
        ("use std::collections::HashMap;\n", 1),
        (
            "fn f() {\n    let s: std::collections::HashSet<u8> = Default::default();\n}",
            2,
        ),
        (
            "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}",
            1,
        ),
        ("fn f() {\n    let _ = std::env::var(\"HOME\");\n}", 2),
    ] {
        let fired = rules_fired(DET_PATH, snippet);
        assert!(
            fired
                .iter()
                .any(|&(r, l)| r == Rule::Determinism && l == line),
            "{snippet}: {fired:?}"
        );
    }
}

#[test]
fn determinism_fires_on_float_debug_formatting() {
    let src = "fn f(x: f64) -> String {\n    format!(\"{x:?}\")\n}";
    let fired = rules_fired(DET_PATH, src);
    assert!(
        fired.iter().any(|&(r, l)| r == Rule::Determinism && l == 2),
        "{fired:?}"
    );
}

#[test]
fn determinism_silent_outside_artifact_modules_and_on_btreemap() {
    let src = "use std::collections::HashMap;\n";
    assert!(rules_fired(NEUTRAL_PATH, src).is_empty());
    let clean =
        "use std::collections::BTreeMap;\nfn f(x: f64) -> String {\n    format!(\"{x:.6}\")\n}";
    assert!(rules_fired(DET_PATH, clean).is_empty());
}

#[test]
fn panic_surface_fires_on_unwrap_expect_panic() {
    for snippet in [
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }",
        "fn f() { panic!(\"boom\"); }",
    ] {
        let fired = rules_fired(PANIC_PATH, snippet);
        assert_eq!(fired.len(), 1, "{snippet}: {fired:?}");
        assert_eq!(fired[0].0, Rule::PanicSurface, "{snippet}");
    }
}

#[test]
fn panic_surface_skips_test_code_and_boundary_lookalikes() {
    let in_test = "#[test]\nfn t() {\n    Some(1).unwrap();\n}";
    assert!(rules_fired(PANIC_PATH, in_test).is_empty());
    let in_mod = "#[cfg(test)]\nmod tests {\n    fn helper(x: Option<u8>) -> u8 {\n        x.unwrap()\n    }\n}";
    assert!(rules_fired(PANIC_PATH, in_mod).is_empty());
    // `expect_keys` and `unwrap_or_else` share a prefix with banned
    // names but are fine.
    let lookalike = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }";
    assert!(rules_fired(PANIC_PATH, lookalike).is_empty());
}

#[test]
fn unsafe_audit_fires_without_safety_comment_everywhere() {
    let src = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}";
    // Unsafe hygiene applies to every module, not just policy lists.
    let fired = rules_fired(NEUTRAL_PATH, src);
    assert_eq!(fired.len(), 1, "{fired:?}");
    assert_eq!(fired[0], (Rule::UnsafeAudit, 2));
}

#[test]
fn unsafe_audit_clean_with_safety_comment_and_inventories_site() {
    let src = "fn f() {\n    // SAFETY: provably unreachable by the match above.\n    unsafe { core::hint::unreachable_unchecked() }\n}";
    let outcome = lint_source(NEUTRAL_PATH, src, &default_policy());
    assert!(outcome.diagnostics.is_empty(), "{:?}", outcome.diagnostics);
    assert_eq!(outcome.unsafe_sites.len(), 1);
    assert_eq!(
        outcome.unsafe_sites[0].justification.as_deref(),
        Some("provably unreachable by the match above.")
    );
}

#[test]
fn allow_annotation_suppresses_and_unused_allow_fires() {
    let suppressed =
        "// bp-lint: allow(hot-path-alloc, \"cold constructor\")\nfn f() -> Vec<u8> { Vec::new() }";
    assert!(rules_fired(HOT_PATH, suppressed).is_empty());

    let unused = "// bp-lint: allow(hot-path-alloc, \"suppresses nothing\")\nfn f() {}\n";
    let fired = rules_fired(HOT_PATH, unused);
    assert_eq!(fired.len(), 1, "{fired:?}");
    assert_eq!(fired[0].0, Rule::LintAnnotation);
}

#[test]
fn allow_item_covers_whole_function() {
    let src = "// bp-lint: allow-item(hot-path-alloc, \"ctor\")\nfn new() -> Vec<u8> {\n    let mut v = Vec::new();\n    v.push(1);\n    v.clone()\n}\n";
    assert!(rules_fired(HOT_PATH, src).is_empty());
}

#[test]
fn malformed_and_unwaivable_annotations_are_diagnostics() {
    for snippet in [
        "// bp-lint: allow(hot-path-alloc)\n",
        "// bp-lint: allow(no-such-rule, \"x\")\n",
        "// bp-lint: allow(hot-path-alloc, \"\")\n",
        "// bp-lint: allow(unsafe-audit, \"nope\")\n",
    ] {
        let fired = rules_fired(NEUTRAL_PATH, snippet);
        assert_eq!(fired.len(), 1, "{snippet}: {fired:?}");
        assert_eq!(fired[0].0, Rule::LintAnnotation, "{snippet}");
    }
}

#[test]
fn rules_never_fire_inside_comments_or_strings() {
    let src = "// Vec::new() and .unwrap() and HashMap in a comment\nfn f() -> &'static str {\n    \"Vec::new() .unwrap() HashMap unsafe\"\n}\n";
    assert!(rules_fired(HOT_PATH, src).is_empty());
    assert!(rules_fired(PANIC_PATH, src).is_empty());
    // The `:?` scan only considers string literals in *format-macro*
    // positions conservatively; a HashMap mention in a string is not a
    // determinism violation.
    let det = "fn f() -> &'static str {\n    \"HashMap Instant std::env\"\n}\n";
    assert!(rules_fired(DET_PATH, det).is_empty());
}
