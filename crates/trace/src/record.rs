//! Single dynamic branch records.

use std::fmt;

/// Classification of a dynamic branch instance.
///
/// The taxonomy mirrors the CBP trace format the paper evaluates on. Only
/// [`BranchKind::Conditional`] branches are predicted taken/not-taken; the
/// other kinds still matter to a predictor because they shift path history
/// and (for the IMLI mechanism) delimit loop bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A conditional direct branch: the only kind whose direction is
    /// predicted.
    Conditional,
    /// An unconditional direct jump.
    Unconditional,
    /// A direct function call.
    Call,
    /// A function return.
    Return,
    /// An indirect jump or indirect call.
    Indirect,
}

impl BranchKind {
    /// All kinds, in a stable order (used by statistics and serialization).
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Unconditional,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Indirect,
    ];

    /// Returns `true` for the kinds whose direction a conditional branch
    /// predictor must predict.
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Stable small integer code for compact serialization.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Unconditional => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
            BranchKind::Indirect => 4,
        }
    }

    /// Inverse of [`BranchKind::code`].
    #[inline]
    pub fn from_code(code: u8) -> Option<BranchKind> {
        BranchKind::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::Unconditional => "jmp",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::Indirect => "ind",
        };
        f.write_str(s)
    }
}

/// One dynamic branch instance in a trace.
///
/// `leading_instructions` counts the non-branch instructions retired since
/// the previous record; it is what makes MPKI (mispredictions per kilo
/// *instruction*) meaningful on a branch-only trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Program counter of the branch instruction.
    pub pc: u64,
    /// Branch target address (fall-through for not-taken conditionals is
    /// implicitly `pc + 4`; the field always holds the *taken* target).
    pub target: u64,
    /// Classification of the branch.
    pub kind: BranchKind,
    /// Outcome: `true` when taken. Always `true` for non-conditional kinds.
    pub taken: bool,
    /// Number of non-branch instructions retired since the previous record.
    pub leading_instructions: u32,
}

impl BranchRecord {
    /// Creates a conditional branch record.
    ///
    /// ```
    /// use bp_trace::BranchRecord;
    /// let r = BranchRecord::conditional(0x100, 0x80, true);
    /// assert!(r.is_backward());
    /// ```
    #[inline]
    pub fn conditional(pc: u64, target: u64, taken: bool) -> Self {
        BranchRecord {
            pc,
            target,
            kind: BranchKind::Conditional,
            taken,
            leading_instructions: 0,
        }
    }

    /// Creates an unconditional direct jump record.
    #[inline]
    pub fn unconditional(pc: u64, target: u64) -> Self {
        BranchRecord {
            pc,
            target,
            kind: BranchKind::Unconditional,
            taken: true,
            leading_instructions: 0,
        }
    }

    /// Creates a direct call record.
    #[inline]
    pub fn call(pc: u64, target: u64) -> Self {
        BranchRecord {
            pc,
            target,
            kind: BranchKind::Call,
            taken: true,
            leading_instructions: 0,
        }
    }

    /// Creates a return record.
    #[inline]
    pub fn ret(pc: u64, target: u64) -> Self {
        BranchRecord {
            pc,
            target,
            kind: BranchKind::Return,
            taken: true,
            leading_instructions: 0,
        }
    }

    /// Creates an indirect jump/call record.
    #[inline]
    pub fn indirect(pc: u64, target: u64) -> Self {
        BranchRecord {
            pc,
            target,
            kind: BranchKind::Indirect,
            taken: true,
            leading_instructions: 0,
        }
    }

    /// Sets the number of non-branch instructions preceding this branch.
    #[inline]
    #[must_use]
    pub fn with_leading_instructions(mut self, n: u32) -> Self {
        self.leading_instructions = n;
        self
    }

    /// Returns `true` when the *taken* target lies at a lower address than
    /// the branch itself.
    ///
    /// The paper's IMLI heuristic (§4.1) treats every backward conditional
    /// branch as a loop-exit branch of the loop it closes.
    #[inline]
    pub fn is_backward(&self) -> bool {
        self.target < self.pc
    }

    /// Returns `true` for conditional records.
    #[inline]
    pub fn is_conditional(&self) -> bool {
        self.kind.is_conditional()
    }

    /// Total instructions this record accounts for (its leading
    /// instructions plus the branch itself).
    #[inline]
    pub fn instructions(&self) -> u64 {
        u64::from(self.leading_instructions) + 1
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#x} {} -> {:#x} {} (+{} insn)",
            self.pc,
            self.kind,
            self.target,
            if self.taken { "T" } else { "N" },
            self.leading_instructions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(BranchKind::from_code(5), None);
        assert_eq!(BranchKind::from_code(255), None);
    }

    #[test]
    fn backwardness_follows_target_comparison() {
        assert!(BranchRecord::conditional(0x100, 0xff, true).is_backward());
        assert!(!BranchRecord::conditional(0x100, 0x100, true).is_backward());
        assert!(!BranchRecord::conditional(0x100, 0x104, true).is_backward());
    }

    #[test]
    fn constructors_set_kind_and_taken() {
        assert_eq!(
            BranchRecord::conditional(1, 2, false).kind,
            BranchKind::Conditional
        );
        assert!(!BranchRecord::conditional(1, 2, false).taken);
        assert!(BranchRecord::unconditional(1, 2).taken);
        assert_eq!(BranchRecord::call(1, 2).kind, BranchKind::Call);
        assert_eq!(BranchRecord::ret(1, 2).kind, BranchKind::Return);
        assert_eq!(BranchRecord::indirect(1, 2).kind, BranchKind::Indirect);
    }

    #[test]
    fn instruction_accounting_includes_branch() {
        let r = BranchRecord::conditional(1, 2, true).with_leading_instructions(9);
        assert_eq!(r.instructions(), 10);
        let r0 = BranchRecord::conditional(1, 2, true);
        assert_eq!(r0.instructions(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let r = BranchRecord::conditional(0x40, 0x20, true);
        assert!(!format!("{r}").is_empty());
        assert!(!format!("{:?}", BranchKind::Conditional).is_empty());
    }
}
